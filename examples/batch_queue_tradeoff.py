#!/usr/bin/env python
"""Why venus was written the way it was: the batch-queue tradeoff.

Section 2.2 explains that UNICOS batch queues are sized by memory, each
with a fixed memory slab, and that "turnaround time is shortest for the
application which requires the least main memory.  Programmers take
advantage of this by structuring their program to use smaller in-memory
data structures while staging data to/from SSD or disk" -- which is
exactly what the venus implementor did, creating the I/O-intensive
behaviour the rest of the paper studies.

This example submits the same computation both ways into a loaded
machine and prints the turnarounds.

Run:  python examples/batch_queue_tradeoff.py
"""

from repro.batch import venus_design_tradeoff


def main() -> None:
    print("=== loaded machine (six large background jobs) ===")
    loaded = venus_design_tradeoff()
    print(loaded)

    print("\n=== empty machine ===")
    empty = venus_design_tradeoff(background_large_jobs=0)
    print(empty)

    print(
        "\nUnder load, the small-memory staged variant wins decisively --\n"
        "the incentive that produced venus's 44 MB/s of staging I/O.  On an\n"
        "empty machine the in-memory variant wins: staging is pure overhead."
    )


if __name__ == "__main__":
    main()
