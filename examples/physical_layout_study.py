#!/usr/bin/env python
"""What the logical traces hide: physical layout and fragmentation.

The paper collected logical traces and *approximated* seeks from logical
closeness, noting the format's "provisions ... to include physical I/Os
as well".  This example exercises those provisions: it lays a venus
trace out on disk twice (contiguous and fragmented), expands it into
physical records, and shows what each layout does to the disk model's
service time.

Run:  python examples/physical_layout_study.py [scale]
"""

import sys

from repro.fslayout import analyze_physical, translate_trace
from repro.sim.config import DiskConfig
from repro.sim.devices import DiskModel
from repro.workloads import generate_workload


def disk_time(physical_trace) -> float:
    """Total device-seconds to serve a physical trace in order."""
    disk = DiskModel(DiskConfig(), seed=0)
    order = physical_trace.start_time.argsort(kind="stable")
    total = 0.0
    for i in order:
        total += disk.service_time(
            int(physical_trace.file_id[i]),
            int(physical_trace.offset[i]),
            int(physical_trace.length[i]),
        )
    return total


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    venus = generate_workload("venus", scale=scale)
    print(f"venus at scale {scale}: {len(venus.trace)} logical records")

    for label, kwargs in (
        ("contiguous", {}),
        ("fragmented (<=128-block extents)", {"max_extent_blocks": 128}),
    ):
        translation = translate_trace(venus.trace, **kwargs)
        report = analyze_physical(translation)
        seconds = disk_time(translation.physical)
        print(f"\n{label}:")
        print(f"  {report}")
        print(f"  disk service time to replay: {seconds:.1f} device-seconds")

    print(
        "\nFragmentation multiplies the record count and turns sequential\n"
        "streams into seeks -- the physical reality the paper's logical-\n"
        "closeness approximation stood in for."
    )


if __name__ == "__main__":
    main()
