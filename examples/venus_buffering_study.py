#!/usr/bin/env python
"""The venus buffering study: Figures 6, 7 and 8 in one script.

Generates the venus workload, replays two non-sharing copies on one CPU,
and reproduces:

* Figure 6 -- disk traffic over wall time with a 32 MB main-memory cache
  (the bursts are *not* smoothed out, for the reasons section 6.2 gives);
* Figure 7 -- the same with a 128 MB SSD-class cache (reads absorbed,
  writes still bursty);
* Figure 8 -- idle time versus cache size for 4 KB and 8 KB blocks.

The Figure 8 sweep fans out over a process pool: pass a worker count as
the second argument (or set ``REPRO_JOBS``); the numbers are identical
at any worker count.

Run:  python examples/venus_buffering_study.py [scale] [jobs]
"""

import sys

from repro.sim import (
    cache_size_sweep,
    no_idle_execution_seconds,
    run_two_venus,
)
from repro.util.asciiplot import ascii_bar_plot, ascii_line_plot


def show_traffic(title: str, run) -> None:
    rate = run.result.disk_rate
    print(
        ascii_line_plot(
            rate.times,
            rate.rates,
            width=76,
            height=12,
            title=title,
            x_label="wall time (s)",
            y_label="MB/s to disk",
        )
    )
    r = run.result
    print(
        f"idle {r.idle_seconds:.2f} s | utilization {r.utilization:.1%} | "
        f"cache hits {r.cache.hit_fraction:.0%} | disk: "
        f"read {r.disk_read_rate.total:.0f} MB, write {r.disk_write_rate.total:.0f} MB\n"
    )


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else None

    fig6 = run_two_venus(cache_mb=32, scale=scale)
    show_traffic("Figure 6: 2 x venus, 32 MB main-memory cache", fig6)

    fig7 = run_two_venus(cache_mb=128, ssd=True, scale=scale)
    show_traffic("Figure 7: 2 x venus, 128 MB SSD cache", fig7)

    print("Figure 8: idle time vs cache size")
    base = no_idle_execution_seconds(scale)
    print(f"(execution time would be {base:.0f} s if there were no idle time)\n")
    points = cache_size_sweep(scale=scale, jobs=jobs)
    for block_kb in (4, 8):
        sub = [p for p in points if p.block_kb == block_kb]
        print(
            ascii_bar_plot(
                [f"{p.cache_mb:g}MB" for p in sub],
                [p.idle_seconds for p in sub],
                title=f"idle seconds, {block_kb}K cache blocks",
            )
        )
        print()


if __name__ == "__main__":
    main()
