#!/usr/bin/env python
"""Section 6's I/O-system configuration question: SSD vs main-memory cache.

"The best configuration for an I/O system, according to our simulations,
is to provide as much SSD storage as possible, and maintain a smaller
main memory cache."

This example runs every traced application alone against (a) a
main-memory-sized cache (4 MW of a processor's 16 MW allotment = 32 MB)
and (b) a 32 MW (256 MB) SSD cache, and prints the per-application CPU
utilizations side by side.  The fourteen runs are independent, so they
go through the sweep runner: set ``REPRO_JOBS`` to fan them over a
process pool (the numbers are identical at any worker count).

Run:  python examples/ssd_vs_main_memory.py
"""

from repro.core.study import DEFAULT_SCALES
from repro.exec.runner import AppWorkloadSpec, SweepPointSpec, SweepRunner
from repro.sim import CacheConfig, SimConfig, ssd_cache
from repro.util.tables import TextTable
from repro.util.units import MB
from repro.workloads import APP_NAMES


def main() -> None:
    points = []
    for name in APP_NAMES:
        workload = AppWorkloadSpec(app=name, scale=DEFAULT_SCALES[name])
        points.append(
            SweepPointSpec(
                workload=workload,
                config=SimConfig(cache=CacheConfig(size_bytes=32 * MB)),
                label=f"{name} mem 32MB",
            )
        )
        points.append(
            SweepPointSpec(
                workload=workload,
                config=SimConfig(cache=ssd_cache(256 * MB)),
                label=f"{name} ssd 256MB",
            )
        )
    runner = SweepRunner(jobs=None)  # $REPRO_JOBS, else one worker per CPU
    results = {r.label: r.result for r in runner.run(points)}

    table = TextTable(
        ["app", "32MB mem util", "256MB SSD util", "SSD idle (s)", "SSD hit%"],
        title="One application per run, single CPU",
    )
    worst = None
    for name in APP_NAMES:
        mem = results[f"{name} mem 32MB"]
        ssd = results[f"{name} ssd 256MB"]
        table.add_row(
            [
                name,
                f"{mem.utilization:.1%}",
                f"{ssd.utilization:.1%}",
                round(ssd.idle_seconds, 2),
                f"{ssd.cache.hit_fraction:.0%}",
            ]
        )
        if worst is None or ssd.utilization < worst[1]:
            worst = (name, ssd.utilization)
    print(table.render())
    assert worst is not None
    print(
        f"\nWith the SSD, every application runs nearly idle-free; the lowest "
        f"is {worst[0]} at {worst[1]:.1%}\n"
        '(the paper: "all but one of the applications nearly completely '
        'utilized a Cray Y-MP CPU by itself").'
    )


if __name__ == "__main__":
    main()
