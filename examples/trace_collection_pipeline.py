#!/usr/bin/env python
"""The full trace-collection pipeline, end to end.

Reproduces section 4's data path on a synthetic application:

  instrumented library hooks -> procstat packets -> packet log on disk ->
  reconstruction into a single time-ordered stream -> compressed ASCII
  trace file -> decode and verify.

Also reports the appendix's two size claims: compression effectiveness on
sequential traces, and ASCII-beats-binary.

Run:  python examples/trace_collection_pipeline.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

from repro.trace import (
    ProcstatCollector,
    dump_packets,
    load_packets,
    measure_trace_sizes,
    packet_overhead_ratio,
    read_io_records,
    reconstruct_records,
    validate_records,
    write_trace,
)
from repro.trace.procstat import collect_to_list
from repro.workloads import model_for


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    workdir.mkdir(parents=True, exist_ok=True)

    # 1. Run an instrumented application; its library hooks feed procstat.
    print("=== running ccm under the tracing hooks ===")
    packets = []
    collector = ProcstatCollector(
        packets.append, max_events_per_packet=256, flush_interval=100_000
    )
    model = model_for("ccm", scale=0.2)
    workload = model.generate(collector=collector)
    n_events = sum(len(p) for p in packets)
    print(
        f"{n_events} I/O events batched into {len(packets)} packets "
        f"(header overhead {packet_overhead_ratio(packets):.2%})"
    )

    # 2. Persist and reload the packet log.
    packet_log = workdir / "ccm.packets"
    dump_packets(packet_log, packets)
    reloaded = list(load_packets(packet_log))
    print(f"packet log: {packet_log} ({packet_log.stat().st_size} bytes)")

    # 3. Reconstruct the single time-ordered stream (requires buffering
    #    between flushes, exactly as the paper notes).
    records = reconstruct_records(reloaded)
    report = validate_records(records)
    print(f"reconstructed {report.n_records} records; valid: {report.ok}")

    # 4. Write the standard compressed ASCII trace.
    trace_path = workdir / "ccm.trace"
    header = [f"trace of {workload.name} (synthetic), scale={workload.scale}"]
    header += [c.text for c in workload.comments]
    stats = write_trace(trace_path, records, header_comments=header,
                        omit_operation_ids=True)
    print(
        f"trace file: {trace_path} ({stats.bytes_written} bytes, "
        f"{stats.bytes_written / max(1, stats.records):.1f} B/record; "
        f"{stats.omission_rate():.1f} of 5 optional fields omitted on average)"
    )

    # 5. Decode it back and check it round-trips.
    decoded = list(read_io_records(trace_path))
    assert decoded == [
        r.replaced(operation_id=d.operation_id)
        for r, d in zip(records, decoded)
    ], "round trip failed"
    print("decode round-trip: OK")

    # 6. The appendix's size claims.
    sizes = measure_trace_sizes(records)
    print(
        f"\nsize report: compressed ASCII {sizes.ascii_compressed_bytes} B vs "
        f"uncompressed ASCII {sizes.ascii_uncompressed_bytes} B "
        f"(x{sizes.compression_ratio:.2f}) vs fixed binary "
        f"{sizes.binary_bytes} B (ASCII is {sizes.ascii_vs_binary_ratio:.2f}x "
        f"smaller -- 'Surprisingly, text traces were shorter than binary')"
    )


if __name__ == "__main__":
    main()
