#!/usr/bin/env python
"""Quickstart: generate a venus trace, analyze it, and buffer-simulate it.

This walks the full pipeline of the paper in about a minute:

1. generate a calibrated synthetic trace for the `venus` climate model;
2. report its Table 1 / Table 2 characteristics;
3. show its bursty, cyclic demand curve (Figure 3);
4. replay two copies through the buffering simulator at two cache sizes
   and watch read-ahead + write-behind erase the idle time.

Run:  python examples/quickstart.py [scale]
"""

import sys

from repro.analysis import analyze_cycles, analyze_sequentiality, data_rate_series
from repro.analysis.summary import summarize_table1, summarize_table2
from repro.sim import run_two_venus
from repro.util.asciiplot import sparkline
from repro.workloads import generate_workload


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1

    print(f"=== generating venus at scale {scale} ===")
    venus = generate_workload("venus", scale=scale)
    t1 = summarize_table1(venus)
    t2 = summarize_table2(venus)
    print(
        f"CPU time {t1.running_seconds:.1f} s | {t1.n_ios} I/Os | "
        f"{t1.total_io_mb:.0f} MB total | avg {t1.avg_io_mb * 1024:.0f} KB"
    )
    print(
        f"rates: {t1.mb_per_sec:.1f} MB/s, {t1.ios_per_sec:.0f} I/Os/s "
        f"(paper: 44.1 MB/s, 92 I/Os/s) | R/W ratio {t2.rw_data_ratio:.2f} "
        f"(paper 1.80)"
    )

    print("\n=== demand pattern (MB per CPU second, 1 s bins) ===")
    series = data_rate_series(venus.trace, clock="cpu")
    print(sparkline(series.rates, width=76))
    print(f"peak {series.peak:.0f} MB/s | mean {series.mean:.0f} MB/s")
    cyc = analyze_cycles(series)
    if cyc.is_cyclic:
        print(
            f"cyclic with period {cyc.period_seconds:.1f} s, "
            f"cycle similarity {cyc.cycle_similarity:.2f}"
        )
    seq = analyze_sequentiality(venus.trace)
    print(
        f"sequential accesses: {seq.sequential_fraction:.0%}; "
        f"dominant request size {seq.dominant_size // 1024} KB "
        f"({seq.dominant_size_fraction:.0%} of requests)"
    )

    print("\n=== buffering simulation: 2 x venus on one CPU ===")
    for cache_mb in (8, 128):
        run = run_two_venus(cache_mb=cache_mb, scale=scale)
        print(
            f"{cache_mb:4d} MB cache: idle {run.idle_seconds:7.2f} s, "
            f"CPU utilization {run.utilization:6.1%}, "
            f"cache hits {run.result.cache.hit_fraction:.0%}"
        )
    print(
        "\nWith a large cache doing read-ahead and write-behind, one or two\n"
        "I/O-intensive applications fully utilize the CPU -- the paper's\n"
        "headline result."
    )


if __name__ == "__main__":
    main()
