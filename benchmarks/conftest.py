"""Shared fixtures for the benchmark harness.

Workload generation is the expensive part and is identical across
benches, so the seven traces are generated once per session.  Scales are
chosen so every application runs at least four cycles (rates, access
sizes and cyclic structure are scale-invariant; totals get extrapolated).

The sweep-shaped benches run through one shared :class:`SweepRunner`:

* ``REPRO_JOBS=8`` fans their points over a process pool (the numbers
  are identical at any worker count, so assertions never change);
* ``REPRO_RESULT_CACHE=/some/dir`` memoizes results on disk so a rerun
  of the benchmark suite skips every already-simulated point.
"""

import os

import pytest

from repro.exec.cache import ResultCache
from repro.exec.runner import SweepRunner
from repro.sim.procmodel import relabel_copies
from repro.workloads import APP_NAMES, generate_workload

BENCH_SCALES = {
    "bvi": 0.04,
    "forma": 0.08,
    "ccm": 0.15,
    "gcm": 0.15,
    "les": 0.25,
    "venus": 0.15,
    "upw": 0.15,
}


@pytest.fixture(scope="session")
def workloads():
    """All seven generated workloads, keyed by name."""
    return {
        name: generate_workload(name, scale=BENCH_SCALES[name])
        for name in APP_NAMES
    }


@pytest.fixture(scope="session")
def venus(workloads):
    return workloads["venus"]


@pytest.fixture(scope="session")
def two_venus_traces(venus):
    """Two non-sharing venus instances (the section 6 workhorse)."""
    return relabel_copies(venus.trace, 2)


@pytest.fixture(scope="session")
def sweep_runner():
    """One SweepRunner shared by every sweep-shaped bench.

    Serial by default so timings stay meaningful; ``REPRO_JOBS`` opts
    into a pool and ``REPRO_RESULT_CACHE`` memoizes results on disk.
    """
    env = os.environ.get("REPRO_JOBS", "").strip()
    jobs = int(env) if env else 1
    cache_dir = os.environ.get("REPRO_RESULT_CACHE", "").strip()
    cache = ResultCache(cache_dir) if cache_dir else None
    return SweepRunner(jobs=jobs, cache=cache)


def once(benchmark, fn):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
