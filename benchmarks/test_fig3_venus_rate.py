"""Figure 3: data rate over process CPU time for venus.

The paper's curve: bursts approaching 95 MB per CPU second, near-zero
between bursts, repeating every ~9.5 s over the run, mean 44.1 MB/s.
"""

from conftest import once

from repro.analysis.bursts import analyze_bursts
from repro.analysis.cycles import analyze_cycles, peak_spacing_regularity
from repro.analysis.rates import data_rate_series, rate_series_csv
from repro.util.asciiplot import ascii_line_plot


def test_fig3_venus_rate(benchmark, venus):
    series = once(
        benchmark, lambda: data_rate_series(venus.trace, clock="cpu")
    )
    print()
    print(
        ascii_line_plot(
            series.times,
            series.rates,
            title="Figure 3: data rate over time for venus",
            x_label="process CPU time (s)",
            y_label="MB per CPU second",
        )
    )
    print(rate_series_csv(series).splitlines()[0] + " ... (CSV available)")

    # Peak near the paper's ~95 MB/s, mean near 44.1 MB/s.
    assert 75 <= series.peak <= 115
    assert 33 <= series.mean <= 55
    # Bursty: peak roughly twice the mean, with quiet bins between bursts.
    assert series.burstiness() > 1.6
    assert series.active_fraction(threshold=5.0) < 0.75

    # Cyclic with ~9.5 s period and near-identical cycles ("the demand
    # patterns for all of the cycles ... were remarkably similar").
    report = analyze_cycles(series)
    assert report.is_cyclic
    assert 7.0 <= report.period_seconds <= 12.0
    assert report.cycle_similarity > 0.8
    # "request rate peaks were generally evenly spaced"
    assert peak_spacing_regularity(series) < 0.4

    # Burst structure: one burst per cycle, evenly spaced, carrying
    # essentially all the bytes within well under half the time.
    bursts = analyze_bursts(series)
    print(
        f"bursts: {bursts.n_bursts}, spacing {bursts.mean_spacing_s:.1f} s "
        f"(cv {bursts.spacing_cv:.2f}), duty {bursts.duty_fraction:.0%}, "
        f"{bursts.burst_weight_fraction:.0%} of bytes in bursts"
    )
    assert bursts.evenly_spaced
    assert bursts.burst_weight_fraction > 0.9
    assert bursts.duty_fraction < 0.6
    assert abs(bursts.mean_spacing_s - report.period_seconds) < 2.0
