"""Figure 4: data rate over process CPU time for les.

The paper's curve: dense bursts across the 146 s run, mean 53.4 MB per
CPU second -- les is busier than venus (shorter cycles, higher duty) but
still visibly cyclic.
"""

from conftest import once

from repro.analysis.cycles import analyze_cycles
from repro.analysis.rates import data_rate_series
from repro.util.asciiplot import ascii_line_plot


def test_fig4_les_rate(benchmark, workloads):
    les = workloads["les"]
    series = once(benchmark, lambda: data_rate_series(les.trace, clock="cpu"))
    print()
    print(
        ascii_line_plot(
            series.times,
            series.rates,
            title="Figure 4: data rate over time for les",
            x_label="process CPU time (s)",
            y_label="MB per CPU second",
        )
    )

    # Mean near the paper's 53.4 MB/s; peaks under ~110.
    assert 40 <= series.mean <= 65
    assert 70 <= series.peak <= 120
    # les has a higher duty cycle than venus (io_phase 0.6 vs 0.47).
    venus_series = data_rate_series(workloads["venus"].trace, clock="cpu")
    assert series.active_fraction(5.0) > venus_series.active_fraction(5.0)
    # Still cyclic, with the ~8 s cycle of the model.
    report = analyze_cycles(series)
    assert report.is_cyclic
    assert 6.0 <= report.period_seconds <= 11.0
