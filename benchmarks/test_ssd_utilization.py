"""Section 6.3's headline: per-application utilization with a 32 MW SSD.

"In a 32 MW SSD, all of our programs except one utilized the CPU over
99%" and "even in an 8 MB cache, gcm had only 1 second of idle time."
"""

from conftest import once

from repro.exec.runner import AppWorkloadSpec, SweepPointSpec
from repro.sim import SimConfig, ssd_utilization_per_app
from repro.sim.config import CacheConfig
from repro.util.tables import TextTable
from repro.util.units import MB


def test_ssd_utilization(benchmark, sweep_runner):
    runs = once(benchmark, lambda: ssd_utilization_per_app(runner=sweep_runner))
    table = TextTable(
        ["app", "utilization", "warm util", "idle(s)", "hit%"],
        title="Per-application runs with a 256 MB SSD cache",
    )
    for r in runs:
        table.add_row(
            [
                r.name,
                f"{r.utilization:.2%}",
                f"{r.warm_utilization:.2%}",
                round(r.idle_seconds, 2),
                f"{r.hit_fraction:.1%}",
            ]
        )
    print()
    print(table.render())

    utils = {r.name: r.utilization for r in runs}
    # "all but one ... over 99%": at least six of seven clear 98% in the
    # scaled runs, everyone clears 95%.
    assert sum(1 for u in utils.values() if u > 0.98) >= 6
    assert min(utils.values()) > 0.95
    # The laggard ("all but one") is one of the heavy staging codes.
    assert min(utils, key=utils.get) in {"forma", "venus", "bvi"}
    # The compulsory-only programs sit at the top.
    assert utils["gcm"] > 0.99 and utils["upw"] > 0.99


def test_gcm_tiny_cache_low_idle(benchmark, sweep_runner):
    # "even in an 8 MB cache, gcm had only 1 second of idle time."
    point = SweepPointSpec(
        workload=AppWorkloadSpec(app="gcm", scale=0.25),
        config=SimConfig(cache=CacheConfig(size_bytes=8 * MB)),
        label="gcm mem 8MB",
    )
    result = once(benchmark, lambda: sweep_runner.run_point(point).result)
    print(
        f"\ngcm, 8 MB cache: idle {result.idle_seconds:.2f} s over "
        f"{result.completion_seconds:.0f} s (paper: ~1 s over 1897 s)"
    )
    # proportionally: 1 s of idle per 1897 s of run
    assert result.idle_seconds < 2.0 * (
        result.completion_seconds / 1897.0
    ) + 0.5
