"""The appendix's trace-format claims.

* Compression works *because* supercomputer traces are sequential and
  file-concentrated: most optional fields are omitted.
* "Surprisingly, text traces were shorter than binary traces."
* Batching amortizes packet headers ("one header served for hundreds of
  I/O calls").
"""

from conftest import once

from repro.trace.packets import packet_overhead_ratio
from repro.trace.procstat import collect_to_list
from repro.trace.reconstruct import events_to_records
from repro.trace.stats import measure_trace_sizes
from repro.util.tables import TextTable


def test_trace_compression(benchmark, workloads):
    venus = workloads["venus"]

    def run():
        records = list(events_to_records(e for e in _as_events(venus)))
        return measure_trace_sizes(records)

    report = once(benchmark, run)
    table = TextTable(["encoding", "bytes", "bytes/record"], title="venus trace size")
    table.add_row(
        ["compressed ASCII", report.ascii_compressed_bytes, round(report.bytes_per_record, 1)]
    )
    table.add_row(
        [
            "uncompressed ASCII",
            report.ascii_uncompressed_bytes,
            round(report.ascii_uncompressed_bytes / report.n_records, 1),
        ]
    )
    table.add_row(
        ["fixed binary", report.binary_bytes, round(report.binary_bytes / report.n_records, 1)]
    )
    print()
    print(table.render())
    print(
        f"optional fields omitted per record: "
        f"{report.encoder_stats.omission_rate():.2f} of 5"
    )

    # Sequential, few-files trace: most optional fields vanish.
    assert report.encoder_stats.omission_rate() > 3.0
    assert report.compression_ratio > 1.5
    # ASCII beats fixed binary.
    assert report.ascii_vs_binary_ratio > 1.0
    assert report.bytes_per_record < 30


def test_packet_header_amortization(benchmark, workloads):
    ccm = workloads["ccm"]
    events = list(_as_events(ccm))

    def run():
        batched = collect_to_list(iter(events), max_events_per_packet=512)
        single = collect_to_list(iter(events[:2000]), max_events_per_packet=1)
        return packet_overhead_ratio(batched), packet_overhead_ratio(single)

    batched_ratio, single_ratio = once(benchmark, run)
    print(
        f"\npacket header overhead: batched {batched_ratio:.2%}, "
        f"one-record-per-packet {single_ratio:.2%}"
    )
    # "far too much data" without batching; negligible with it.
    assert batched_ratio < 0.02
    assert single_ratio > 0.5


def _as_events(workload):
    """Rebuild IOEvents from a generated trace (columnar -> events)."""
    from repro.trace.packets import IOEvent

    t = workload.trace
    for i in range(len(t)):
        yield IOEvent(
            record_type=int(t.record_type[i]),
            file_id=int(t.file_id[i]),
            process_id=int(t.process_id[i]),
            operation_id=int(t.operation_id[i]),
            offset=int(t.offset[i]),
            length=int(t.length[i]),
            start_time=int(t.start_time[i]),
            duration=int(t.duration[i]),
            process_clock=int(t.process_clock[i]),
        )
