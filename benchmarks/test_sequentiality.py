"""Section 5.2's structural claims: sequential, regular, concentrated.

"File accesses were highly sequential, and a very large majority of the
accesses went to only a small number of files" -- the properties that
make both the trace compression and read-ahead work.
"""

from conftest import once

from repro.analysis.perfile import large_file_io_fraction, unique_sizes_per_file
from repro.analysis.sequentiality import (
    analyze_file_concentration,
    analyze_sequentiality,
)
from repro.util.tables import TextTable
from repro.workloads import APP_NAMES


def test_sequentiality(benchmark, workloads):
    reports = once(
        benchmark,
        lambda: {
            name: analyze_sequentiality(w.trace) for name, w in workloads.items()
        },
    )
    table = TextTable(
        ["app", "sequential", "same-size", "dominant size", "of requests"],
        title="Sequentiality and request-size regularity",
    )
    for name in APP_NAMES:
        r = reports[name]
        table.add_row(
            [
                name,
                f"{r.sequential_fraction:.1%}",
                f"{r.same_size_fraction:.1%}",
                f"{r.dominant_size // 1024} KB",
                f"{r.dominant_size_fraction:.1%}",
            ]
        )
    print()
    print(table.render())

    # The staging applications are highly sequential with regular request
    # sizes (les legitimately uses two: one read size, one write size;
    # forma's sparse skipping makes it the least sequential of the big
    # ones, but its sizes stay regular).
    for name in ("venus", "les", "bvi", "ccm"):
        assert reports[name].sequential_fraction > 0.85, name
        assert reports[name].same_size_fraction > 0.9, name
    for name in ("venus", "ccm"):
        assert reports[name].dominant_size_fraction > 0.9, name
    # les and bvi legitimately use one read size and one write size; a
    # handful of tail pieces (checkpoint/config/results) also appear.
    assert reports["les"].n_distinct_sizes <= 8
    assert reports["bvi"].n_distinct_sizes <= 8
    assert reports["bvi"].dominant_size_fraction > 0.75
    assert reports["forma"].same_size_fraction > 0.7
    # Access sizes fall in the 5.2 range: 32 KB to 512 KB on large files
    # (16 KB for SSD-resident bvi).
    for name in ("venus", "les", "ccm", "forma"):
        assert 30 * 1024 <= reports[name].dominant_size <= 520 * 1024, name
    assert reports["bvi"].dominant_size == 14 * 1024  # its read size


def test_file_concentration(benchmark, workloads):
    venus = workloads["venus"]
    conc = once(benchmark, lambda: analyze_file_concentration(venus.trace))
    print(
        f"\nvenus: {conc.n_files} files opened; "
        f"{conc.files_for_90_percent} cover 90% of accesses"
    )
    # "a very large majority of the accesses went to only a small number
    # of files": six data files carry everything.
    assert conc.files_for_90_percent <= 6
    assert large_file_io_fraction(venus.trace) > 0.99
    # Each large file keeps a single request size throughout.
    sizes = unique_sizes_per_file(venus.trace)
    dominant = [n for n in sizes.values() if n == 1]
    assert len(dominant) >= 6
