"""Design-choice ablations DESIGN.md calls out.

* read-ahead on/off at a main-memory cache size;
* the per-process buffer-ownership cap ("did not relieve the problem,
  and actually worsened CPU utilization in several cases");
* block size 4 KB vs 8 KB (Figure 8's two curves);
* scheduler quantum sensitivity (the simulator parameter 6.1 exposes).

The parameter grids run through the shared session SweepRunner, so
``REPRO_JOBS`` parallelizes them and ``REPRO_RESULT_CACHE`` lets a rerun
skip every already-simulated point.
"""

from conftest import BENCH_SCALES, once

from repro.exec.runner import AppWorkloadSpec, SweepPointSpec
from repro.sim import SimConfig, buffer_cap_ablation, readahead_ablation
from repro.sim.config import CacheConfig
from repro.util.units import KB, MB

SCALE = BENCH_SCALES["venus"]

TWO_VENUS = AppWorkloadSpec(app="venus", scale=SCALE, n_copies=2)


def _grid(runner, configs):
    """Run one SimConfig per key and return {key: SimulationResult}."""
    points = [
        SweepPointSpec(workload=TWO_VENUS, config=config, label=str(key))
        for key, config in configs.items()
    ]
    results = runner.run(points)
    return {key: r.result for key, r in zip(configs, results)}


def test_ablation_readahead(benchmark, sweep_runner):
    without, with_ra = once(
        benchmark,
        lambda: readahead_ablation(cache_mb=32, scale=SCALE, runner=sweep_runner),
    )
    print(
        f"\nread-ahead ablation (32 MB): idle {without.idle_seconds:.1f} s -> "
        f"{with_ra.idle_seconds:.1f} s"
    )
    # Prefetching the "amount just read" hides a large share of the
    # sequential read latency.
    assert with_ra.idle_seconds < 0.6 * without.idle_seconds
    assert with_ra.result.cache.readahead_hits > 0


def test_ablation_buffer_cap(benchmark, sweep_runner):
    uncapped, capped = once(
        benchmark,
        lambda: buffer_cap_ablation(cache_mb=32, scale=SCALE, runner=sweep_runner),
    )
    print(
        f"\nbuffer-cap ablation (32 MB): utilization "
        f"{uncapped.utilization:.1%} uncapped vs {capped.utilization:.1%} capped"
    )
    # The paper's negative result: capping ownership *hurts*.
    assert capped.utilization < uncapped.utilization
    assert capped.idle_seconds > uncapped.idle_seconds


def test_ablation_block_size(benchmark, sweep_runner):
    configs = {
        kb: SimConfig(cache=CacheConfig(size_bytes=32 * MB, block_bytes=kb * KB))
        for kb in (4, 8, 64)
    }
    results = once(benchmark, lambda: _grid(sweep_runner, configs))
    print()
    for kb, r in results.items():
        print(
            f"block {kb:3d}K: idle {r.idle_seconds:7.2f} s, "
            f"utilization {r.utilization:.1%}"
        )
    # venus's block-aligned 456 KB requests behave near-identically at
    # 4 KB and 8 KB (Figure 8's two curves nearly coincide).
    r4, r8 = results[4], results[8]
    assert abs(r4.idle_seconds - r8.idle_seconds) < 0.15 * max(
        r4.idle_seconds, 1.0
    )


def test_ablation_disk_count(benchmark, sweep_runner):
    # "the seeks required by interleaving accesses to six different data
    # files inserted extra delays" -- with all files on one spindle the
    # interleaving costs a seek per request; spread over many disks the
    # streams stay sequential.
    configs = {
        n_disks: SimConfig(cache=CacheConfig(size_bytes=32 * MB)).with_disk(
            n_disks=n_disks
        )
        for n_disks in (1, 4, 0)  # 0 = one disk per file
    }
    results = once(benchmark, lambda: _grid(sweep_runner, configs))
    print()
    for n, r in results.items():
        label = "per-file" if n == 0 else f"{n} shared"
        print(
            f"disks {label:9s}: idle {r.idle_seconds:7.2f} s, "
            f"sequential {r.disk_sequential_fraction:.1%}, "
            f"disk busy {r.disk_busy_seconds:7.1f} s"
        )
    # Fewer spindles -> less physical sequentiality -> more device time
    # spent positioning for the same bytes.
    assert (
        results[1].disk_sequential_fraction
        < results[4].disk_sequential_fraction
        <= results[0].disk_sequential_fraction + 1e-9
    )
    assert results[1].disk_busy_seconds > results[0].disk_busy_seconds
    # CPU idle does NOT simply track the extra seeks: randomized service
    # times *desynchronize* the two processes, countering the bunching
    # effect section 6.2 describes ("both programs would wait for I/O at
    # the same time ... both requests would finish at approximately the
    # same time, and the process would repeat"), so we only report it.


def test_ablation_quantum(benchmark, sweep_runner):
    configs = {
        quantum: SimConfig(cache=CacheConfig(size_bytes=128 * MB)).with_scheduler(
            quantum_s=quantum
        )
        for quantum in (0.005, 0.05, 0.5)
    }
    results = once(benchmark, lambda: _grid(sweep_runner, configs))
    print()
    for q, r in results.items():
        print(
            f"quantum {q * 1e3:6.1f} ms: idle {r.idle_seconds:6.2f} s, "
            f"utilization {r.utilization:.1%}"
        )
    # With a large cache, I/O waits are rare and the quantum barely
    # matters: utilization stays high across two orders of magnitude.
    for r in results.values():
        assert r.utilization > 0.95
