"""Figure 7: disk traffic for two venus copies with a 128 MB SSD cache.

"Almost all of the read requests were satisfied by the SSD, so there
were very few disk read requests.  However ... the writes from cache to
disk still did not come evenly; instead, they were bursty in the same
way that the requests to cache were bursty."
"""

from conftest import once

from repro.sim import SimConfig, simulate, ssd_cache
from repro.util.asciiplot import ascii_line_plot
from repro.util.units import MB


def test_fig7_two_venus_128mb(benchmark, two_venus_traces, venus):
    config = SimConfig(cache=ssd_cache(128 * MB))
    result = once(benchmark, lambda: simulate(two_venus_traces, config))

    rate = result.disk_rate
    print()
    print(
        ascii_line_plot(
            rate.times,
            rate.rates,
            title="Figure 7: disk traffic, 2 x venus, 128 MB SSD cache",
            x_label="wall time (s)",
            y_label="MB/s to disk",
        )
    )
    print(result.summary())

    # Both 55 MB data sets fit: after the compulsory first sweep, reads
    # are SSD hits and disk reads nearly vanish.
    data_mb = 2 * venus.data_size_bytes / MB
    assert result.disk_read_rate.total < 1.3 * data_mb  # ~one cold sweep
    assert result.disk_read_rate.total < 0.15 * result.disk_write_rate.total
    assert result.cache.hit_fraction > 0.9
    # Writes still reach the disk in bursts (write-behind flushes track
    # the bursty dirty production).
    assert result.disk_write_rate.burstiness() > 1.5
    # And the CPU is now nearly fully utilized.
    assert result.utilization > 0.95
