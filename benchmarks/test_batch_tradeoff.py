"""Section 2.2: memory-sized batch queues and the turnaround incentive.

"for a given amount of CPU time required by an application, turnaround
time is shortest for the application which requires the least main
memory."
"""

from conftest import once

from repro.batch import venus_design_tradeoff


def test_batch_tradeoff(benchmark):
    loaded, empty = once(
        benchmark,
        lambda: (
            venus_design_tradeoff(),
            venus_design_tradeoff(background_large_jobs=0),
        ),
    )
    print()
    print("loaded machine:")
    print(loaded)
    print("empty machine:")
    print(empty)

    # Under load: the small-memory, I/O-staging variant starts first and
    # wins on turnaround despite a longer residency.
    assert loaded.small.queue_wait < loaded.big.queue_wait
    assert loaded.small.residency > loaded.big.residency
    assert loaded.small_wins
    assert loaded.speedup > 2.0
    # On an empty machine the incentive disappears: staging is overhead.
    assert not empty.small_wins
