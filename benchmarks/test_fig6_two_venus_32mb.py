"""Figure 6: disk traffic for two venus copies with a 32 MB cache.

The paper's point is a *negative* one: even with read-ahead and
write-behind, the request rate to disk "was not smoothed out" -- the
bursts survive, both because the no-queueing disk model never pushes
back and because the two programs' I/O phases bunch together.
"""

from conftest import once

from repro.sim import SimConfig, simulate
from repro.sim.config import CacheConfig
from repro.util.asciiplot import ascii_line_plot
from repro.util.units import MB


def test_fig6_two_venus_32mb(benchmark, two_venus_traces, venus):
    config = SimConfig(cache=CacheConfig(size_bytes=32 * MB))
    result = once(benchmark, lambda: simulate(two_venus_traces, config))

    rate = result.disk_rate
    print()
    print(
        ascii_line_plot(
            rate.times,
            rate.rates,
            title="Figure 6: disk traffic, 2 x venus, 32 MB main-memory cache",
            x_label="wall time (s)",
            y_label="MB/s to disk",
        )
    )
    print(result.summary())

    # The cache is far smaller than the two 55 MB data sets: most demand
    # still reaches the disk.
    demand_mb = 2 * venus.trace.total_bytes / MB
    disk_mb = rate.total
    assert disk_mb > 0.5 * demand_mb
    # The traffic stays bursty -- peaks far above the mean rate (the
    # non-smoothing result; the paper's curve swings between ~5 and
    # ~70 MB/s).
    assert rate.burstiness() > 1.5
    assert rate.peak > 2.0 * rate.mean
    # And the CPU is far from fully utilized at this size.
    assert result.utilization < 0.9
