"""Section 5.1: program-controlled staging beats demand paging.

"These I/Os are the equivalent of paging under a paging virtual memory
operating system, but they are generally done under program control
because many supercomputers lack paging.  Even when paging exists, the
program is better able than the operating system to predict which data
it will need."
"""

from conftest import once

from repro.sim import paging_vs_staging


def test_paging_vs_staging(benchmark):
    comparison = once(benchmark, paging_vs_staging)
    print()
    print(
        f"staged (456 KB program requests): completes in "
        f"{comparison.staged_completion_s:7.1f} s "
        f"({comparison.staged_ios_per_sec:.0f} I/Os per CPU-s)"
    )
    print(
        f"paged  (16 KB demand faults):     completes in "
        f"{comparison.paged_completion_s:7.1f} s "
        f"({comparison.paged_ios_per_sec:.0f} I/Os per CPU-s)"
    )
    print(f"staging speedup: x{comparison.slowdown:.2f}")

    # The program-controlled version finishes several times sooner: the
    # fault path can neither predict (no read-ahead) nor amortize the
    # per-request system cost over a large transfer.
    assert comparison.staging_wins
    assert comparison.slowdown > 2.0
    # The paged variant multiplies the request rate by the page ratio.
    assert comparison.paged_ios_per_sec > 10 * comparison.staged_ios_per_sec
