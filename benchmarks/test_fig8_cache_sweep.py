"""Figure 8: idle time while running two venus instances vs cache size.

The paper sweeps 4-256 MB at 4 KB and 8 KB blocks: idle time falls
monotonically with cache size, collapsing to near zero once both data
sets are resident (128 MB and up).  "Execution time would be 761 seconds
if there were no idle time."
"""

from conftest import BENCH_SCALES, once

from repro.sim import FIG8_CACHE_SIZES_MB, cache_size_sweep, no_idle_execution_seconds
from repro.util.asciiplot import ascii_bar_plot
from repro.util.tables import TextTable


def test_fig8_cache_sweep(benchmark, sweep_runner):
    scale = BENCH_SCALES["venus"]
    points = once(benchmark, lambda: cache_size_sweep(scale=scale, runner=sweep_runner))
    base = no_idle_execution_seconds(scale)

    table = TextTable(
        ["block", "cache(MB)", "idle(s)", "utilization", "hit%"],
        title=f"Figure 8 (no-idle execution time at this scale: {base:.0f} s)",
    )
    for p in points:
        table.add_row(
            [
                f"{p.block_kb:g}K",
                p.cache_mb,
                round(p.idle_seconds, 2),
                f"{p.utilization:.1%}",
                f"{p.hit_fraction:.1%}",
            ]
        )
    print()
    print(table.render())
    for block_kb in (4, 8):
        sub = [p for p in points if p.block_kb == block_kb]
        print(
            ascii_bar_plot(
                [f"{p.cache_mb:g}MB" for p in sub],
                [p.idle_seconds for p in sub],
                title=f"idle seconds, {block_kb}K blocks",
            )
        )

    for block_kb in (4, 8):
        sub = {p.cache_mb: p for p in points if p.block_kb == block_kb}
        assert set(sub) == set(FIG8_CACHE_SIZES_MB)
        idles = [sub[mb].idle_seconds for mb in FIG8_CACHE_SIZES_MB]
        # Never increasing (within 10% wiggle), with a large overall drop.
        for a, b in zip(idles, idles[1:]):
            assert b <= a * 1.1
        # Substantial idle at 4 MB ...
        assert idles[0] > 0.5 * base
        # ... collapsing once both data sets fit (128 MB and 256 MB).
        assert idles[-2] < 0.05 * base
        assert idles[-1] < 0.05 * base
        assert sub[128].utilization > 0.97
