"""Section 6.2's write-behind claim.

"For example, writebehind reduced idle time from 211 seconds to 1 second
for a simulation of two identical copies of venus running with a 128 MB
cache."  We assert the shape: more than an order of magnitude of idle
time disappears when the writer stops waiting for the disk.
"""

from conftest import BENCH_SCALES, once

from repro.sim import writebehind_ablation


def test_writebehind_ablation(benchmark, sweep_runner):
    scale = BENCH_SCALES["venus"]
    without, with_wb = once(
        benchmark,
        lambda: writebehind_ablation(cache_mb=128, scale=scale, runner=sweep_runner),
    )
    print()
    print("write-behind ablation, 2 x venus, 128 MB cache:")
    print(
        f"  without: idle {without.idle_seconds:8.2f} s, "
        f"utilization {without.utilization:.1%}"
    )
    print(
        f"  with:    idle {with_wb.idle_seconds:8.2f} s, "
        f"utilization {with_wb.utilization:.1%}"
    )
    print('  paper: "from 211 seconds to 1 second"')

    assert without.idle_seconds > 10 * max(with_wb.idle_seconds, 0.05)
    assert with_wb.utilization > 0.95
    assert without.utilization < 0.85
