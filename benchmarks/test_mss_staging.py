"""Section 2.2's storage pyramid: staging data sets from the MSS.

Not a paper table -- the paper describes the MSS but evaluates above it.
This bench quantifies the start-up latency the disk-level simulations
begin after, and the benefit of multiple tape drives for multi-file
data sets.
"""

from conftest import once

from repro.mss.staging import stage_workload
from repro.util.tables import TextTable


def test_mss_staging(benchmark, workloads):
    def run():
        out = {}
        for name in ("venus", "les", "ccm"):
            out[name] = {
                drives: stage_workload(workloads[name], n_drives=drives)
                for drives in (1, 4)
            }
        return out

    results = once(benchmark, run)
    table = TextTable(
        ["app", "files", "MB", "1 drive (s)", "4 drives (s)", "speedup"],
        title="Time until the data set is online (nearline tape at 3 MB/s)",
    )
    for name, by_drives in results.items():
        one, four = by_drives[1], by_drives[4]
        table.add_row(
            [
                name,
                one.n_files,
                round(one.total_bytes / 2**20),
                round(one.ready_at_s, 1),
                round(four.ready_at_s, 1),
                f"x{one.ready_at_s / four.ready_at_s:.2f}",
            ]
        )
    print()
    print(table.render())

    venus1, venus4 = results["venus"][1], results["venus"][4]
    # venus's six-file data set parallelizes across four drives...
    assert venus4.ready_at_s < 0.45 * venus1.ready_at_s
    # ...while total drive work is conserved.
    assert venus4.drive_busy_s == venus1.drive_busy_s
    # Staging is minutes-scale: far longer than any single disk access,
    # which is why jobs stage once and then sweep at disk speed.
    assert venus1.ready_at_s > 10.0
    # Tape bandwidth bounds effective staging throughput per drive.
    assert venus1.effective_bandwidth_mb_s <= 3.0 + 1e-9
