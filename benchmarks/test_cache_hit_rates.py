"""Sections 2.1 + 6.2: a supercomputer cache is a speed-matching buffer.

The BSD study the paper contrasts with ([5]) saw >80% of requests
satisfied by a small cache, thanks to locality.  Supercomputer staging
I/O has no re-reference locality at main-memory cache sizes: "Very few
of the applications traced had I/O that fit into such a small cache ...
most logical I/Os resulted in disk accesses" -- until the cache covers
the whole data set.
"""

from conftest import once

from repro.sim import SimConfig, simulate
from repro.sim.config import CacheConfig
from repro.util.tables import TextTable
from repro.util.units import MB


def test_cache_hit_rates(benchmark, two_venus_traces):
    def run():
        out = {}
        for mb in (2, 8, 32, 256):
            config = SimConfig(
                cache=CacheConfig(size_bytes=mb * MB, read_ahead=False)
            )
            out[mb] = simulate(two_venus_traces, config)
        return out

    results = once(benchmark, run)
    table = TextTable(
        ["cache", "resident hit%", "utilization"],
        title="2 x venus, no read-ahead: residency hits by cache size",
    )
    for mb, r in results.items():
        table.add_row(
            [f"{mb}MB", f"{r.cache.resident_hit_fraction:.1%}", f"{r.utilization:.1%}"]
        )
    print()
    print(table.render())

    # BSD-class caches (a few MB) see almost no reuse here: the cyclic
    # sweeps defeat LRU entirely. Nothing like the 80%+ of [5].
    assert results[2].cache.resident_hit_fraction < 0.2
    assert results[8].cache.resident_hit_fraction < 0.4
    # Only a data-set-sized cache flips the behaviour.
    assert results[256].cache.resident_hit_fraction > 0.9
