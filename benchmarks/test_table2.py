"""Table 2: I/O request rates and data rates, split by direction."""

from conftest import once

from repro.analysis.report import render_table2, table2_rows
from repro.workloads import APP_NAMES


def test_table2(benchmark, workloads):
    rows = once(benchmark, lambda: table2_rows(workloads.values()))
    print()
    print(render_table2(workloads.values()))

    by_name = {row.name: row for row in rows}
    assert set(by_name) == set(APP_NAMES)
    for name, row in by_name.items():
        paper = workloads[name].paper
        # read/write data ratio within 25% of the paper's
        assert (
            abs(row.rw_data_ratio - paper.rw_data_ratio)
            <= 0.25 * paper.rw_data_ratio
        ), name
        # average request size within 20%
        assert abs(row.avg_io_kb - paper.avg_io_kb) <= 0.2 * paper.avg_io_kb, name

    # Narrative orderings: only gcm and upw are write-dominated (ratio
    # well under one); forma is by far the most read-dominated; les is
    # nearly balanced.
    assert by_name["gcm"].rw_data_ratio < 0.2
    assert by_name["upw"].rw_data_ratio < 0.2
    assert by_name["forma"].rw_data_ratio == max(r.rw_data_ratio for r in rows)
    assert 0.8 < by_name["les"].rw_data_ratio < 1.2
    # bvi/les request-size extremes
    assert by_name["bvi"].avg_io_kb == min(r.avg_io_kb for r in rows)
    sizes = sorted(r.avg_io_kb for r in rows)
    assert by_name["les"].avg_io_kb in sizes[-2:]
