"""Extension benches: the n+1 rule (2.2) and physical-trace translation.

Both exercise machinery the paper describes but did not evaluate
directly: multiprogramming across CPUs, and the trace format's physical
records ("we included provisions for our trace format to include
physical I/Os as well").
"""

from conftest import once

from repro.fslayout import analyze_physical, translate_trace
from repro.sim.experiments import n_plus_one_rule
from repro.util.tables import TextTable


def test_n_plus_one_rule(benchmark):
    def run():
        return (
            n_plus_one_rule(app="upw", n_cpus=2, max_extra_jobs=1, scale=0.25),
            n_plus_one_rule(app="venus", n_cpus=2, max_extra_jobs=2, scale=0.1),
        )

    compute, io_bound = once(benchmark, run)
    table = TextTable(["workload", "jobs", "utilization"], title="n+1 rule, 2 CPUs")
    for p in compute:
        table.add_row(["upw", p.n_jobs, f"{p.utilization:.1%}"])
    for p in io_bound:
        table.add_row(["venus", p.n_jobs, f"{p.utilization:.1%}"])
    print()
    print(table.render())

    # Compute-bound jobs: n jobs already keep n CPUs essentially busy.
    assert compute[0].utilization > 0.95
    # I/O-intensive jobs at a modest cache: even n+2 jobs cannot -- "more
    # than one will be awaiting I/O all the time".
    assert all(p.utilization < 0.85 for p in io_bound)
    # More jobs monotonically help, a bit (rule of thumb direction).
    assert io_bound[1].utilization > io_bound[0].utilization


def test_physical_translation(benchmark, venus):
    def run():
        contiguous = analyze_physical(translate_trace(venus.trace))
        fragmented = analyze_physical(
            translate_trace(venus.trace, max_extent_blocks=128)
        )
        return contiguous, fragmented

    contiguous, fragmented = once(benchmark, run)
    print()
    print(f"contiguous layout: {contiguous}")
    print(f"fragmented layout: {fragmented}")

    # Contiguous layout: one physical record per logical one, no
    # amplification (venus requests are block-aligned), physical stream
    # as sequential as the logical one.
    assert contiguous.fan_out == 1.0
    assert abs(contiguous.amplification - 1.0) < 1e-9
    # Fragmentation fans logical requests out across extents and destroys
    # physical sequentiality -- what the paper's seek-closeness disk
    # model would feel.
    assert fragmented.fan_out > 2.0
    assert fragmented.max_extents > 10 * contiguous.max_extents
    assert fragmented.sequential_fraction < contiguous.sequential_fraction
