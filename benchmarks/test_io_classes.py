"""Section 5.1: the three I/O classes and their characteristic rates.

Required I/O is sub-MB/s-class; checkpoints are a few MB/s-class; data
swapping runs at tens of MB/s -- and the swapping class dominates the
I/O-intensive programs while gcm and upw are compulsory-only.
"""

from conftest import once

from repro.analysis.classify import (
    PAPER_CHECKPOINT_EXAMPLE_MB_PER_SEC,
    PAPER_REQUIRED_EXAMPLE_MB_PER_SEC,
    PAPER_SWAP_EXAMPLE_MB_PER_SEC,
    IOClass,
    classify_trace,
)
from repro.util.tables import TextTable
from repro.workloads import APP_NAMES


def test_io_classes(benchmark, workloads):
    reports = once(
        benchmark,
        lambda: {
            name: classify_trace(w.trace, w.cpu_seconds)
            for name, w in workloads.items()
        },
    )
    table = TextTable(
        ["app", "required MB/s", "checkpoint MB/s", "swap MB/s", "dominant"],
        title="I/O classes per application (structural classification)",
    )
    for name in APP_NAMES:
        r = reports[name]
        table.add_row(
            [
                name,
                round(r.breakdown[IOClass.REQUIRED].mb_per_sec, 3),
                round(r.breakdown[IOClass.CHECKPOINT].mb_per_sec, 3),
                round(r.breakdown[IOClass.SWAP].mb_per_sec, 3),
                r.dominant_class.value,
            ]
        )
    print()
    print(table.render())
    print(
        f"paper's worked-example rates: required ~"
        f"{PAPER_REQUIRED_EXAMPLE_MB_PER_SEC} MB/s, checkpoint ~"
        f"{PAPER_CHECKPOINT_EXAMPLE_MB_PER_SEC} MB/s, swap ~"
        f"{PAPER_SWAP_EXAMPLE_MB_PER_SEC} MB/s"
    )

    # Compulsory-only programs: gcm and upw never swap.
    for name in ("gcm", "upw"):
        assert reports[name].dominant_class == IOClass.REQUIRED, name
        assert reports[name].breakdown[IOClass.SWAP].n_ios == 0, name
        assert reports[name].breakdown[IOClass.REQUIRED].mb_per_sec < 1.0

    # Staging programs: swapping dominates by a wide margin.
    for name in ("venus", "les", "bvi", "ccm", "forma"):
        r = reports[name]
        assert r.dominant_class == IOClass.SWAP, name
        assert r.fraction_of_bytes(IOClass.SWAP) > 0.9, name
        # swap-class rates in the tens of MB/s, like the paper's ~24 MB/s
        # worked example
        assert r.breakdown[IOClass.SWAP].mb_per_sec > 5.0, name

    # ccm and les carry checkpoint files; their checkpoint rate sits
    # between required and swap, matching the example ordering.
    for name in ("ccm", "les"):
        cp = reports[name].breakdown[IOClass.CHECKPOINT]
        assert cp.n_files >= 1, name
        assert cp.mb_per_sec < reports[name].breakdown[IOClass.SWAP].mb_per_sec
