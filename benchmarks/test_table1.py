"""Table 1: Characteristics of the traced applications.

Regenerates every row (running time, data size, total I/O, #I/Os, average
I/O size, MB/s, I/Os/s) and compares against the paper's reconstructed
values.  Rates must land within 25%; extrapolated totals within 35%
(scaled runs amortize start/finish phases differently).
"""

from conftest import once

from repro.analysis.report import render_table1, table1_rows
from repro.workloads import APP_NAMES


def test_table1(benchmark, workloads):
    rows = once(benchmark, lambda: table1_rows(workloads.values()))
    print()
    print(render_table1(workloads.values()))

    by_name = {row.name: row for row in rows}
    assert set(by_name) == set(APP_NAMES)
    for name, row in by_name.items():
        paper = workloads[name].paper
        assert abs(row.mb_per_sec - paper.mb_per_sec) <= 0.25 * paper.mb_per_sec, name
        assert abs(row.ios_per_sec - paper.ios_per_sec) <= 0.25 * paper.ios_per_sec, name
        assert abs(row.total_io_mb - paper.total_io_mb) <= 0.35 * paper.total_io_mb, name
        assert abs(row.n_ios - paper.n_ios) <= 0.35 * paper.n_ios, name
        assert abs(row.avg_io_mb - paper.avg_io_mb) <= 0.3 * paper.avg_io_mb, name

    # Orderings the paper's narrative rests on: forma has the highest
    # rates; gcm and upw barely do I/O; bvi makes the smallest requests.
    assert by_name["forma"].mb_per_sec == max(r.mb_per_sec for r in rows)
    assert by_name["forma"].ios_per_sec == max(r.ios_per_sec for r in rows)
    assert by_name["upw"].mb_per_sec < 0.2
    assert by_name["gcm"].mb_per_sec < 0.2
    assert by_name["bvi"].avg_io_mb == min(r.avg_io_mb for r in rows)
