"""Command-line interface.

Usage (``python -m repro <command>``):

* ``experiments`` -- list every reproducible table/figure/claim;
* ``run EXPID [--scale S]`` -- reproduce one of them and print the report;
* ``generate APP -o FILE [--scale S] [--seed N]`` -- write a calibrated
  synthetic trace in the paper's ASCII format;
* ``compile-trace FILE [FILE...] [-o OUT] [--cache] [--verify]`` --
  compile ASCII traces into binary columnar store bundles (``.rpt``)
  that later runs memory-map with zero per-record work; ``--cache``
  compiles into the content-addressed trace cache instead
  (``$REPRO_TRACE_CACHE``, see ``docs/FORMAT.md``);
* ``analyze FILE`` -- Table-1/2-style summary, sequentiality and class
  breakdown of any trace file (ASCII or compiled store bundle);
* ``simulate FILE [FILE...] [--cache-mb M] [--block-kb K] [--ssd]
  [--no-read-ahead] [--no-write-behind] [--cpus N] [--jobs N]
  [--cached] [--trace-store] [--faults SPEC | --fault-plan FILE]`` --
  replay trace files (ASCII or compiled) through the buffering
  simulator, optionally under a seeded fault-injection plan with
  retry/backoff recovery; ``--trace-store`` routes ASCII inputs through
  the compile cache so repeat runs skip decode entirely;
* ``sweep [--cache-mb LIST] [--block-kb LIST] [--read-ahead on,off]
  [--write-behind on,off] [--jobs N] [--executor NAME]
  [--cache-tier DIR[=BUDGET]] ...`` -- run a configuration grid
  through the parallel sweep runner with on-disk result memoization;
  ``--executor`` picks the backend (serial/pool/queue) and two
  ``--cache-tier`` flags stack a budgeted local tier over a shared
  one (see ``docs/EXECUTORS.md``);
* ``serve [--host H] [--port P] [--workers N] [--queue-size N]
  [--cache-dir DIR | --cache-tiers SPEC] [--no-cache]
  [--executor NAME]`` -- run the async sweep server: an
  HTTP/JSON daemon accepting simulate/sweep jobs, streaming progress as
  server-sent events and answering with results bit-identical to the
  CLI (see ``docs/SERVER.md``);
* ``profile EXPID [--metrics-out FILE] [--events-out FILE]`` -- run one
  experiment with the observability registry enabled and render the
  per-subsystem metrics report (cache hit rates, per-device busy time,
  scheduler activity, engine event counts);
* ``bench [--quick] [--out FILE] [--baseline FILE]
  [--max-regression F] [--repeats N] [--profile]`` -- run the perf
  microbenchmark suite (engine events/s, cache ops/s, decode MB/s,
  Figure-8 sweep wall-clock) and write ``BENCH_sim.json``; with
  ``--baseline`` the exit status reflects whether any benchmark
  regressed beyond the threshold (see ``docs/PERFORMANCE.md``); with
  ``--profile`` each section is run under cProfile and per-section
  top-30 cumulative stats land in ``BENCH_profile.txt``.

``simulate`` and ``run`` also accept ``--metrics-out FILE`` to dump the
same metrics as JSONL without the full profile report.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Sequence

from repro.analysis.classify import classify_trace
from repro.analysis.sequentiality import analyze_sequentiality
from repro.analysis.summary import trace_table1
from repro.core.registry import EXPERIMENTS, run_experiment
from repro.core.study import Study
from repro.exec.cache import ResultCache
from repro.exec.cache_tiers import resolve_cache_tiers
from repro.exec.executor import EXECUTOR_NAMES
from repro.exec.grid import (
    GridSpec,
    build_sim_config,
    parse_floats,
    parse_toggles,
    render_sweep_table,
    sweep_summary,
)
from repro.exec.runner import (
    SweepPointSpec,
    SweepRunner,
    TraceFileSpec,
    resolve_jobs,
)
from repro.obs import (
    JsonlEventSink,
    MetricsRegistry,
    metrics_to_jsonl,
    render_report,
    use_registry,
)
from repro.sim.faults import FaultPlan
from repro.trace.io import read_any_trace_array, write_trace_array
from repro.util.errors import SweepError
from repro.util.rng import DEFAULT_SEED
from repro.util.units import MB
from repro.workloads.base import available_models, generate_workload


def _cmd_experiments(args: argparse.Namespace) -> int:
    for exp_id, exp in EXPERIMENTS.items():
        print(f"{exp_id:16s} [section {exp.paper_section}] {exp.title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    study = Study(scale=args.scale, jobs=args.jobs if args.jobs else 1)
    metrics_out = getattr(args, "metrics_out", None)
    registry = MetricsRegistry(enabled=metrics_out is not None)
    try:
        with use_registry(registry):
            print(run_experiment(args.experiment, study))
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if metrics_out:
        n = metrics_to_jsonl(registry, metrics_out)
        print(f"wrote {n} metrics to {metrics_out}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run one experiment under an enabled registry; render the metrics.

    Runs in-process (``jobs=1``) on purpose: pool workers are separate
    processes whose registries cannot flow back, and profiling wants the
    complete picture of one serial execution.
    """
    sink = (
        JsonlEventSink(args.events_out, buffer_events=args.event_buffer)
        if args.events_out
        else None
    )
    registry = MetricsRegistry(event_sink=sink)
    study = Study(scale=args.scale, jobs=1)
    try:
        with use_registry(registry):
            report = run_experiment(args.experiment, study)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    finally:
        if sink is not None:
            sink.close()
    if not args.metrics_only:
        print(report)
        print()
    print(render_report(registry, title=f"== metrics: {args.experiment} =="))
    if args.metrics_out:
        n = metrics_to_jsonl(registry, args.metrics_out)
        print(f"wrote {n} metrics to {args.metrics_out}")
    if sink is not None:
        print(
            f"wrote {sink.events_emitted} events to {args.events_out} "
            f"({sink.flushes} batched flushes)"
        )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.app not in available_models():
        print(
            f"unknown application {args.app!r}; known: "
            f"{', '.join(available_models())}",
            file=sys.stderr,
        )
        return 2
    workload = generate_workload(args.app, scale=args.scale, seed=args.seed)
    header = [
        f"synthetic {workload.name} trace, scale={workload.scale}, "
        f"seed={args.seed}"
    ] + [c.text for c in workload.comments]
    stats = write_trace_array(
        args.output, workload.trace, header_comments=header,
        omit_operation_ids=True,
    )
    print(
        f"wrote {stats.records} records to {args.output} "
        f"({stats.bytes_written} bytes, "
        f"{stats.bytes_written / max(1, stats.records):.1f} B/record)"
    )
    return 0


def _cmd_compile_trace(args: argparse.Namespace) -> int:
    from repro.trace.store import (
        TraceStoreCache,
        compile_trace,
        file_digest,
        load_compiled,
    )
    from repro.util.errors import StoreFormatError

    if args.output and len(args.traces) > 1:
        print("-o/--output needs exactly one input trace", file=sys.stderr)
        return 2
    if args.output and args.cache:
        print("use either -o/--output or --cache, not both", file=sys.stderr)
        return 2
    cache = TraceStoreCache.default() if args.cache else None
    if cache is not None and not cache.enabled:
        print(
            "trace cache is disabled (REPRO_TRACE_CACHE=off)", file=sys.stderr
        )
        return 2
    for trace_path in args.traces:
        t0 = time.perf_counter()
        try:
            if cache is not None:
                digest = file_digest(trace_path)
                cache.get_or_compile_file(trace_path)
                out = cache.path_for(digest)
            else:
                out = compile_trace(trace_path, args.output)
        except (OSError, StoreFormatError) as exc:
            print(f"{trace_path}: {exc}", file=sys.stderr)
            return 1
        compile_s = time.perf_counter() - t0
        compiled = load_compiled(out, verify=args.verify)
        ascii_bytes = os.path.getsize(trace_path)
        print(
            f"{trace_path} -> {out}: {compiled.header.records} records, "
            f"{ascii_bytes} -> {out.stat().st_size} bytes, "
            f"compiled in {compile_s:.2f} s"
            f"{' (payload verified)' if args.verify else ''}"
        )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    trace = read_any_trace_array(args.trace)
    if len(trace) == 0:
        print("trace is empty", file=sys.stderr)
        return 1
    row = trace_table1(args.trace, trace)
    print(f"records:        {row.n_ios}")
    print(f"CPU time:       {row.running_seconds:.2f} s")
    print(f"total I/O:      {row.total_io_mb:.1f} MB "
          f"({row.mb_per_sec:.2f} MB/s, {row.ios_per_sec:.1f} I/Os/s)")
    print(f"avg request:    {row.avg_io_mb * 1024:.1f} KB")
    reads = trace.read_bytes
    writes = trace.write_bytes
    ratio = reads / writes if writes else float("inf")
    print(f"read/write:     {ratio:.2f} (data)")
    seq = analyze_sequentiality(trace)
    print(
        f"sequentiality:  {seq.sequential_fraction:.1%} sequential, "
        f"{seq.same_size_fraction:.1%} same-size, dominant "
        f"{seq.dominant_size // 1024} KB"
    )
    cls = classify_trace(trace, max(row.running_seconds, 1e-9))
    for io_class, breakdown in cls.breakdown.items():
        if breakdown.n_ios:
            print(
                f"  {io_class.value:10s} {breakdown.n_ios:8d} I/Os  "
                f"{breakdown.total_bytes / MB:10.1f} MB  "
                f"{breakdown.mb_per_sec:8.3f} MB/s  "
                f"({breakdown.n_files} file(s))"
            )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.engine_impl:
        # Same plumbing as $REPRO_ENGINE_IMPL (deliberately not a
        # SimConfig field -- results are bit-identical, so the result
        # cache must key both implementations the same).
        os.environ["REPRO_ENGINE_IMPL"] = args.engine_impl
    config = build_sim_config(
        cache_mb=args.cache_mb,
        block_kb=args.block_kb,
        ssd=args.ssd,
        read_ahead=not args.no_read_ahead,
        write_behind=not args.no_write_behind,
        n_cpus=args.cpus,
    )
    if args.faults and args.fault_plan:
        print("use either --faults or --fault-plan, not both", file=sys.stderr)
        return 2
    try:
        if args.fault_plan:
            config = FaultPlan.load(args.fault_plan).apply(config)
        elif args.faults:
            config = FaultPlan.from_spec(args.faults).apply(config)
    except (OSError, ValueError) as exc:
        print(f"bad fault plan: {exc}", file=sys.stderr)
        return 2
    point = SweepPointSpec(
        workload=TraceFileSpec(
            paths=tuple(args.traces),
            share_files=args.share_files,
            use_store=args.trace_store,
        ),
        config=config,
        label=f"simulate {' '.join(args.traces)}",
    )
    # --cache-tier implies caching; --cached alone honors $REPRO_CACHE_TIERS
    # before falling back to the flat single-directory cache.
    tiered = resolve_cache_tiers(args.cache_tier)
    if args.cache_tier:
        point_cache = tiered
    elif args.cached:
        point_cache = tiered if tiered is not None else ResultCache()
    else:
        point_cache = None
    runner = SweepRunner(
        jobs=args.jobs if args.jobs else 1,
        cache=point_cache,
        executor=args.executor,
    )
    registry = MetricsRegistry(enabled=args.metrics_out is not None)
    try:
        with use_registry(registry):
            point_result = runner.run_point(point)
    except SweepError as exc:
        print(str(exc.__cause__ or exc), file=sys.stderr)
        return 2
    print(point_result.result.summary())
    if point_cache is not None:
        source = "result cache" if point_result.cached else "fresh simulation"
        print(f"[{source}, key {point_result.key[:16]}]")
    if args.metrics_out:
        n = metrics_to_jsonl(registry, args.metrics_out)
        print(f"wrote {n} metrics to {args.metrics_out}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        grid = GridSpec(
            app=args.app,
            n_copies=args.copies,
            scale=args.scale,
            workload_seed=args.seed,
            cache_sizes_mb=parse_floats(args.cache_mb),
            block_sizes_kb=parse_floats(args.block_kb),
            read_ahead=parse_toggles(args.read_ahead),
            write_behind=parse_toggles(args.write_behind),
            ssd=args.ssd,
            n_cpus=args.cpus,
        )
    except ValueError as exc:
        print(f"bad grid: {exc}", file=sys.stderr)
        return 2
    if args.app not in available_models():
        print(
            f"unknown application {args.app!r}; known: "
            f"{', '.join(available_models())}",
            file=sys.stderr,
        )
        return 2
    if args.no_cache:
        result_cache = None
    else:
        # --cache-tier / $REPRO_CACHE_TIERS selects the tiered stack;
        # --cache-dir keeps the flat single-directory cache.
        result_cache = resolve_cache_tiers(args.cache_tier)
        if result_cache is None:
            result_cache = (
                ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
            )
    jobs = resolve_jobs(args.jobs)
    runner = SweepRunner(jobs=jobs, cache=result_cache, executor=args.executor)
    t0 = time.perf_counter()
    try:
        results = runner.run(grid.points())
    except SweepError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - t0
    kind = "SSD" if args.ssd else "mem"
    print(
        render_sweep_table(
            results,
            title=(
                f"sweep: {args.copies}x{args.app} ({kind}), "
                f"scale={args.scale:g}, seed={args.seed}"
            ),
        )
    )
    where = "cache disabled" if result_cache is None else f"cache {result_cache.root}"
    print(f"{sweep_summary(results)} | jobs={jobs} | {elapsed:.1f} s | {where}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_pending=args.queue_size,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        drain_timeout_s=args.drain_timeout,
        executor=args.executor,
        cache_tiers=args.cache_tiers,
    )
    return run_server(config)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Miller 1991, 'Input/Output Behavior of "
            "Supercomputing Applications'"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list reproducible experiments")

    p_run = sub.add_parser("run", help="reproduce one table/figure/claim")
    p_run.add_argument("experiment", help="experiment id (see `experiments`)")
    p_run.add_argument(
        "--scale", type=float, default=None,
        help="workload scale in (0,1]; default: per-app presets",
    )
    p_run.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for sweep-shaped experiments (default: serial)",
    )
    p_run.add_argument(
        "--metrics-out", default=None,
        help="enable the observability registry and dump metrics as JSONL",
    )

    p_prof = sub.add_parser(
        "profile",
        help="run one experiment with metrics enabled and report them",
    )
    p_prof.add_argument("experiment", help="experiment id (see `experiments`)")
    p_prof.add_argument(
        "--scale", type=float, default=None,
        help="workload scale in (0,1]; default: per-app presets",
    )
    p_prof.add_argument(
        "--metrics-out", default=None,
        help="also dump every instrument as JSONL to this file",
    )
    p_prof.add_argument(
        "--events-out", default=None,
        help="stream structured events (spans, simulations) as JSONL",
    )
    p_prof.add_argument(
        "--event-buffer", type=int, default=512,
        help="event sink buffer size (events per batched flush)",
    )
    p_prof.add_argument(
        "--metrics-only", action="store_true",
        help="suppress the experiment report, print only the metrics",
    )

    p_gen = sub.add_parser("generate", help="write a synthetic trace file")
    p_gen.add_argument("app", help="application model name")
    p_gen.add_argument("-o", "--output", required=True)
    p_gen.add_argument("--scale", type=float, default=0.1)
    p_gen.add_argument("--seed", type=int, default=19910616)

    p_ct = sub.add_parser(
        "compile-trace",
        help="compile ASCII traces into binary columnar store bundles",
    )
    p_ct.add_argument("traces", nargs="+")
    p_ct.add_argument(
        "-o", "--output", default=None,
        help="bundle path (single input only; default: INPUT.rpt alongside)",
    )
    p_ct.add_argument(
        "--cache", action="store_true",
        help="compile into the content-addressed trace cache "
        "($REPRO_TRACE_CACHE, default under the result-cache dir)",
    )
    p_ct.add_argument(
        "--verify", action="store_true",
        help="re-load each bundle and check its payload digest",
    )

    p_an = sub.add_parser(
        "analyze", help="summarize a trace file (ASCII or compiled store)"
    )
    p_an.add_argument("trace")

    p_sim = sub.add_parser("simulate", help="replay traces through the cache")
    p_sim.add_argument("traces", nargs="+")
    p_sim.add_argument("--cache-mb", type=float, default=32.0)
    p_sim.add_argument("--block-kb", type=float, default=4.0)
    p_sim.add_argument("--ssd", action="store_true")
    p_sim.add_argument("--no-read-ahead", action="store_true")
    p_sim.add_argument("--no-write-behind", action="store_true")
    p_sim.add_argument("--cpus", type=int, default=1)
    p_sim.add_argument(
        "--share-files",
        action="store_true",
        help="let the traces address the same files (default: each trace "
        "gets a private file-id space, like the paper's non-sharing copies)",
    )
    p_sim.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (a single point always runs inline)",
    )
    p_sim.add_argument(
        "--cached", action="store_true",
        help="memoize the result in the on-disk result cache "
        "($REPRO_CACHE_DIR or ~/.cache/repro/results)",
    )
    p_sim.add_argument(
        "--executor", choices=EXECUTOR_NAMES, default=None,
        help="execution backend (default: auto -- serial inline for one "
        "job, process pool otherwise; see docs/EXECUTORS.md); equivalent "
        "to setting $REPRO_EXECUTOR",
    )
    p_sim.add_argument(
        "--cache-tier", action="append", default=None, metavar="DIR[=BUDGET]",
        help="cache tier directory with optional size budget (64M, 2G); "
        "repeat for local then shared tier -- implies caching; "
        "equivalent to $REPRO_CACHE_TIERS",
    )
    p_sim.add_argument(
        "--trace-store", action="store_true",
        help="route ASCII traces through the compiled trace store "
        "(decode once, memory-map on every later run; point keys and "
        "results are identical either way)",
    )
    p_sim.add_argument(
        "--engine-impl", choices=("event", "batch"), default=None,
        help="replay engine: 'event' (default) runs one calendar event "
        "at a time; 'batch' layers the run-level batch kernel on top "
        "(bit-identical results, faster on hit-dominated configs) -- "
        "equivalent to setting $REPRO_ENGINE_IMPL",
    )
    p_sim.add_argument(
        "--metrics-out", default=None,
        help="enable the observability registry and dump metrics as JSONL",
    )
    p_sim.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inline fault plan, e.g. error=0.05,slow=0.1,max_retries=4 "
        "(keys: error, slow, slow_factor, crash_at, ssd_fail_at, seed, "
        "max_retries, backoff, backoff_factor, backoff_cap, jitter, "
        "timeout, max_reflushes, reflush_delay)",
    )
    p_sim.add_argument(
        "--fault-plan", default=None, metavar="FILE",
        help="JSON fault plan ({'faults': {...}, 'recovery': {...}}); "
        "see examples/fault_plan.json",
    )

    p_sweep = sub.add_parser(
        "sweep",
        help="run a config grid through the parallel, memoized sweep runner",
    )
    p_sweep.add_argument("--app", default="venus", help="application model")
    p_sweep.add_argument(
        "--copies", type=int, default=2,
        help="non-sharing instances per point (default 2, the paper's setup)",
    )
    p_sweep.add_argument("--scale", type=float, default=0.25)
    p_sweep.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p_sweep.add_argument(
        "--cache-mb", default="4,8,16,32,64,128,256",
        help="comma-separated cache sizes in MB (default: the Figure 8 axis)",
    )
    p_sweep.add_argument(
        "--block-kb", default="4,8",
        help="comma-separated cache block sizes in KB (default: 4,8)",
    )
    p_sweep.add_argument(
        "--read-ahead", default="on",
        help="read-ahead axis: on, off, or on,off to sweep the toggle",
    )
    p_sweep.add_argument(
        "--write-behind", default="on",
        help="write-behind axis: on, off, or on,off to sweep the toggle",
    )
    p_sweep.add_argument("--ssd", action="store_true")
    p_sweep.add_argument("--cpus", type=int, default=1)
    p_sweep.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: $REPRO_JOBS, else all cores)",
    )
    p_sweep.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache",
    )
    p_sweep.add_argument(
        "--cache-dir", default=None,
        help="result cache root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/results)",
    )
    p_sweep.add_argument(
        "--executor", choices=EXECUTOR_NAMES, default=None,
        help="execution backend (default: auto -- serial inline for one "
        "job, process pool otherwise; see docs/EXECUTORS.md); equivalent "
        "to setting $REPRO_EXECUTOR",
    )
    p_sweep.add_argument(
        "--cache-tier", action="append", default=None, metavar="DIR[=BUDGET]",
        help="cache tier directory with optional size budget (64M, 2G); "
        "repeat for local then shared tier (overrides --cache-dir); "
        "equivalent to $REPRO_CACHE_TIERS",
    )

    p_srv = sub.add_parser(
        "serve",
        help="run the async sweep server (HTTP/JSON + SSE; docs/SERVER.md)",
    )
    p_srv.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1; 0.0.0.0 exposes the daemon)",
    )
    p_srv.add_argument(
        "--port", type=int, default=8177,
        help="bind port (default 8177; 0 picks an ephemeral port)",
    )
    p_srv.add_argument(
        "--workers", type=int, default=2,
        help="concurrent job executions (default 2)",
    )
    p_srv.add_argument(
        "--queue-size", type=int, default=16,
        help="pending-job bound; a full queue answers 429 (default 16)",
    )
    p_srv.add_argument(
        "--cache-dir", default=None,
        help="result cache root shared with the CLI (default: "
        "$REPRO_CACHE_DIR or ~/.cache/repro/results)",
    )
    p_srv.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache",
    )
    p_srv.add_argument(
        "--drain-timeout", type=float, default=10.0,
        help="seconds shutdown waits for running jobs before cancelling",
    )
    p_srv.add_argument(
        "--executor", choices=EXECUTOR_NAMES, default=None,
        help="default execution backend for jobs that do not name one "
        "(job spec field 'executor' wins; see docs/EXECUTORS.md)",
    )
    p_srv.add_argument(
        "--cache-tiers", default=None, metavar="DIR[=BUDGET],DIR[=BUDGET]",
        help="tiered result cache: local[,shared] directories with "
        "optional size budgets (overrides --cache-dir); equivalent to "
        "$REPRO_CACHE_TIERS",
    )

    p_bench = sub.add_parser(
        "bench", help="run the perf microbenchmark suite"
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="smaller workloads for CI smoke runs",
    )
    p_bench.add_argument(
        "--out", default="BENCH_sim.json",
        help="where to write the JSON payload (default: BENCH_sim.json)",
    )
    p_bench.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="compare against a committed baseline payload "
        "(e.g. benchmarks/perf/baseline.json); exit 1 on regression",
    )
    p_bench.add_argument(
        "--max-regression", type=float, default=0.25,
        help="allowed fractional regression vs the baseline (default 0.25)",
    )
    p_bench.add_argument(
        "--repeats", type=int, default=1,
        help="run each benchmark N times, keep the best (default 1)",
    )
    p_bench.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the Figure-8 sweep benchmark",
    )
    p_bench.add_argument(
        "--profile", action="store_true",
        help="wrap each section in cProfile and write per-section "
        "top-30 cumulative stats to BENCH_profile.txt (timings then "
        "include profiler overhead; baseline comparison is refused)",
    )

    p_fig = sub.add_parser("figures", help="render the figures to SVG+CSV")
    p_fig.add_argument("--out", default="figures")
    p_fig.add_argument("--scale", type=float, default=None)
    return parser


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        compare_to_baseline,
        load_baseline,
        render_table,
        run_suite,
        write_payload,
    )

    payload = run_suite(
        quick=args.quick, jobs=args.jobs if args.jobs else 1,
        repeats=args.repeats,
        profile_to="BENCH_profile.txt" if args.profile else None,
    )
    print(render_table(payload))
    path = write_payload(payload, args.out)
    print(f"wrote {path}")
    if args.profile:
        print(f"wrote {payload['profile']}")
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"bad baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2
        try:
            problems = compare_to_baseline(
                payload, baseline, max_regression=args.max_regression
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if problems:
            for problem in problems:
                print(f"REGRESSION {problem}", file=sys.stderr)
            return 1
        print(
            f"no regression vs {args.baseline} "
            f"(threshold {args.max_regression:.0%})"
        )
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.core.figures import save_figures

    written = save_figures(Study(scale=args.scale), args.out)
    for path in written:
        print(f"wrote {path}")
    return 0


_COMMANDS = {
    "experiments": _cmd_experiments,
    "run": _cmd_run,
    "profile": _cmd_profile,
    "generate": _cmd_generate,
    "compile-trace": _cmd_compile_trace,
    "analyze": _cmd_analyze,
    "simulate": _cmd_simulate,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
    "bench": _cmd_bench,
    "figures": _cmd_figures,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
