"""Rendered paper-vs-measured reports for Tables 1 and 2."""

from __future__ import annotations

from typing import Iterable

from repro.analysis.summary import (
    Table1Row,
    Table2Row,
    extrapolate_table1,
    scale_factor_to_full,
    summarize_table1,
    summarize_table2,
)
from repro.util.tables import TextTable
from repro.workloads.base import GeneratedWorkload


def render_table1(
    workloads: Iterable[GeneratedWorkload], *, extrapolate: bool = True
) -> str:
    """Table 1 with measured and paper values side by side.

    With ``extrapolate=True`` (the default) totals of scaled-down runs are
    extrapolated to full-run estimates; rates are always as measured.
    """
    table = TextTable(
        [
            "app",
            "time(s)",
            "paper",
            "data(MB)",
            "paper",
            "totalIO(MB)",
            "paper",
            "#IOs",
            "paper",
            "avg(MB)",
            "paper",
            "MB/s",
            "paper",
            "IO/s",
            "paper",
        ],
        title="Table 1: Characteristics of the traced applications (measured | paper)",
    )
    for w in workloads:
        row = summarize_table1(w)
        if extrapolate:
            row = extrapolate_table1(row, scale_factor_to_full(w))
        p = w.paper
        table.add_row(
            [
                row.name,
                round(row.running_seconds, 1),
                p.running_seconds,
                round(row.data_size_mb, 1),
                p.data_size_mb,
                round(row.total_io_mb, 1),
                p.total_io_mb,
                row.n_ios,
                p.n_ios,
                round(row.avg_io_mb, 3),
                p.avg_io_mb,
                round(row.mb_per_sec, 2),
                p.mb_per_sec,
                round(row.ios_per_sec, 1),
                p.ios_per_sec,
            ]
        )
    return table.render()


def render_table2(workloads: Iterable[GeneratedWorkload]) -> str:
    """Table 2 with measured and paper values side by side."""
    table = TextTable(
        [
            "app",
            "R MB/s",
            "paper",
            "W MB/s",
            "paper",
            "R IO/s",
            "paper",
            "W IO/s",
            "paper",
            "avg KB",
            "paper",
            "R/W",
            "paper",
        ],
        title="Table 2: I/O request rates and data rates (measured | paper)",
    )
    for w in workloads:
        row = summarize_table2(w)
        p = w.paper
        table.add_row(
            [
                row.name,
                round(row.read_mb_per_sec, 4),
                p.read_mb_per_sec,
                round(row.write_mb_per_sec, 4),
                p.write_mb_per_sec,
                round(row.read_ios_per_sec, 2),
                p.read_ios_per_sec,
                round(row.write_ios_per_sec, 2),
                p.write_ios_per_sec,
                round(row.avg_io_kb, 1),
                p.avg_io_kb,
                round(row.rw_data_ratio, 2),
                p.rw_data_ratio,
            ]
        )
    return table.render()


def table1_rows(
    workloads: Iterable[GeneratedWorkload], *, extrapolate: bool = True
) -> list[Table1Row]:
    rows = []
    for w in workloads:
        row = summarize_table1(w)
        if extrapolate:
            row = extrapolate_table1(row, scale_factor_to_full(w))
        rows.append(row)
    return rows


def table2_rows(workloads: Iterable[GeneratedWorkload]) -> list[Table2Row]:
    return [summarize_table2(w) for w in workloads]
