"""I/O-type classification (section 5.1): required / checkpoint / swap.

"All of the I/O accesses made by the programs can be divided into three
types -- required, checkpoint, and data swapping."

The classifier is structural, working from each file's access pattern:

* a file that is only read holds *required* input (configuration and
  initial state);
* a file that is only written and grows monotonically holds *required*
  output (final results, history records);
* a file that is only written but is rewritten from the top more than
  once is a *checkpoint* file (the same state dumped every few
  iterations);
* a file that is both read and written carries *data swapping* -- the
  program-controlled paging of a data set that does not fit in memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.trace.array import TraceArray
from repro.util.units import MB


class IOClass(Enum):
    REQUIRED = "required"
    CHECKPOINT = "checkpoint"
    SWAP = "swap"


@dataclass(frozen=True)
class ClassBreakdown:
    """Bytes/count/rate of one I/O class within a trace."""

    io_class: IOClass
    n_ios: int
    total_bytes: int
    mb_per_sec: float
    n_files: int


@dataclass(frozen=True)
class ClassificationReport:
    file_classes: dict[int, IOClass]
    breakdown: dict[IOClass, ClassBreakdown]

    def fraction_of_bytes(self, io_class: IOClass) -> float:
        total = sum(b.total_bytes for b in self.breakdown.values())
        if total == 0:
            return 0.0
        return self.breakdown[io_class].total_bytes / total

    @property
    def dominant_class(self) -> IOClass:
        return max(self.breakdown.values(), key=lambda b: b.total_bytes).io_class


def classify_file(offsets: np.ndarray, is_write: np.ndarray) -> IOClass:
    """Classify one file's access stream (arrays in trace order)."""
    any_read = bool((~is_write).any())
    any_write = bool(is_write.any())
    if any_read and any_write:
        return IOClass.SWAP
    if any_read:
        return IOClass.REQUIRED
    # Write-only: count rewinds -- writes that restart at or before an
    # already-written offset.  One pass over the file is required output;
    # repeated overwrites of the same region are checkpoints.
    rewinds = int((np.diff(offsets) < 0).sum())
    return IOClass.CHECKPOINT if rewinds >= 1 else IOClass.REQUIRED


def classify_trace(trace: TraceArray, cpu_seconds: float) -> ClassificationReport:
    """Classify every file of a trace and aggregate per class."""
    file_classes: dict[int, IOClass] = {}
    per_class: dict[IOClass, list[int]] = {c: [] for c in IOClass}
    bytes_per_class: dict[IOClass, int] = {c: 0 for c in IOClass}
    count_per_class: dict[IOClass, int] = {c: 0 for c in IOClass}

    for fid in trace.file_ids():
        sub = trace.for_file(int(fid))
        io_class = classify_file(np.asarray(sub.offset), np.asarray(sub.is_write))
        file_classes[int(fid)] = io_class
        per_class[io_class].append(int(fid))
        bytes_per_class[io_class] += sub.total_bytes
        count_per_class[io_class] += len(sub)

    breakdown = {
        c: ClassBreakdown(
            io_class=c,
            n_ios=count_per_class[c],
            total_bytes=bytes_per_class[c],
            mb_per_sec=(
                bytes_per_class[c] / MB / cpu_seconds if cpu_seconds else 0.0
            ),
            n_files=len(per_class[c]),
        )
        for c in IOClass
    }
    return ClassificationReport(file_classes=file_classes, breakdown=breakdown)


# ---------------------------------------------------------------------------
# The paper's worked examples (rate anchors for the class bench)
# ---------------------------------------------------------------------------

#: "reading 50 MB of configuration and initialization data and writing
#: 100 MB of output [over 200 s], the overall I/O rate is only .75 MB/sec"
PAPER_REQUIRED_EXAMPLE_MB_PER_SEC = (50 + 100) / 200.0

#: "a program that saves 40 MB of state every 20 CPU seconds, the average
#: I/O rate is only 2 MB/sec"
PAPER_CHECKPOINT_EXAMPLE_MB_PER_SEC = 40 / 20.0

#: "For a 200 MFLOP processor, the average sustained rate will be almost
#: 25 MB/sec" (24 bytes of I/O per 200 FLOPs)
PAPER_SWAP_EXAMPLE_MB_PER_SEC = 24e-6 / 200e-6 * 200  # = 24 MB/s of requests
