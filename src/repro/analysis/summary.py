"""Table 1 and Table 2 summaries of a trace.

Table 1 characterizes each traced application: running time, total data
size, total I/O done, number of I/Os, average I/O size, MB/sec and
I/Os/sec.  Table 2 splits rates by direction and adds the read/write
ratio.  All rates are "per second of CPU time used by the process", as
the paper emphasizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.array import TraceArray
from repro.util.units import KB, MB
from repro.workloads.base import GeneratedWorkload


@dataclass(frozen=True)
class Table1Row:
    """One application's Table 1 entry, as measured from a trace."""

    name: str
    running_seconds: float
    data_size_mb: float
    total_io_mb: float
    n_ios: int
    avg_io_mb: float
    mb_per_sec: float
    ios_per_sec: float


@dataclass(frozen=True)
class Table2Row:
    """One application's Table 2 entry, as measured from a trace."""

    name: str
    read_mb_per_sec: float
    write_mb_per_sec: float
    read_ios_per_sec: float
    write_ios_per_sec: float
    avg_io_kb: float
    rw_data_ratio: float


def summarize_table1(workload: GeneratedWorkload) -> Table1Row:
    trace = workload.trace
    cpu = workload.cpu_seconds
    total_mb = trace.total_bytes / MB
    n = len(trace)
    return Table1Row(
        name=workload.name,
        running_seconds=cpu,
        data_size_mb=workload.data_size_bytes / MB,
        total_io_mb=total_mb,
        n_ios=n,
        avg_io_mb=total_mb / n if n else 0.0,
        mb_per_sec=total_mb / cpu if cpu else 0.0,
        ios_per_sec=n / cpu if cpu else 0.0,
    )


def summarize_table2(workload: GeneratedWorkload) -> Table2Row:
    trace = workload.trace
    cpu = workload.cpu_seconds
    read_bytes = trace.read_bytes
    write_bytes = trace.write_bytes
    n_reads = int(trace.is_read.sum())
    n_writes = len(trace) - n_reads
    n = len(trace)
    return Table2Row(
        name=workload.name,
        read_mb_per_sec=read_bytes / MB / cpu if cpu else 0.0,
        write_mb_per_sec=write_bytes / MB / cpu if cpu else 0.0,
        read_ios_per_sec=n_reads / cpu if cpu else 0.0,
        write_ios_per_sec=n_writes / cpu if cpu else 0.0,
        avg_io_kb=(read_bytes + write_bytes) / KB / n if n else 0.0,
        rw_data_ratio=read_bytes / write_bytes if write_bytes else float("inf"),
    )


def scale_factor_to_full(workload: GeneratedWorkload) -> float:
    """Multiplier taking a scaled run's totals to full-run estimates.

    Rates are scale-invariant; totals (total I/O, I/O count) of a run
    generated at ``scale < 1`` are extrapolated by the ratio of the paper
    running time to the measured CPU time.
    """
    if workload.cpu_seconds <= 0:
        return 1.0
    return workload.paper.running_seconds / workload.cpu_seconds


def extrapolate_table1(row: Table1Row, factor: float) -> Table1Row:
    """Scale a Table 1 row's totals to full-run estimates."""
    return Table1Row(
        name=row.name,
        running_seconds=row.running_seconds * factor,
        data_size_mb=row.data_size_mb,
        total_io_mb=row.total_io_mb * factor,
        n_ios=int(round(row.n_ios * factor)),
        avg_io_mb=row.avg_io_mb,
        mb_per_sec=row.mb_per_sec,
        ios_per_sec=row.ios_per_sec,
    )


def trace_table1(name: str, trace: TraceArray, data_size_bytes: int = 0) -> Table1Row:
    """Table 1 row straight from a trace (for externally loaded traces)."""
    cpu = trace.cpu_seconds()
    total_mb = trace.total_bytes / MB
    n = len(trace)
    return Table1Row(
        name=name,
        running_seconds=cpu,
        data_size_mb=data_size_bytes / MB,
        total_io_mb=total_mb,
        n_ios=n,
        avg_io_mb=total_mb / n if n else 0.0,
        mb_per_sec=total_mb / cpu if cpu else 0.0,
        ios_per_sec=n / cpu if cpu else 0.0,
    )
