"""Cycle detection in program I/O (section 5.3).

"Since all of the programs implemented iterative algorithms, the
programs' I/O patterns followed cycles that matched the iterations of the
program ... request rate peaks were generally evenly spaced through the
program's execution" and "the demand patterns for all of the cycles in a
single application were remarkably similar".

We detect the period as the strongest local maximum of the rate curve's
autocorrelation and quantify cycle-to-cycle similarity as the mean
correlation between consecutive period-length windows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.timeseries import RateSeries


@dataclass(frozen=True)
class CycleReport:
    """Detected periodicity of one application's I/O demand."""

    period_seconds: float | None  #: None when no significant cycle exists
    autocorrelation_peak: float  #: AC value at the detected period
    n_cycles: float  #: series duration / period
    cycle_similarity: float  #: mean corr. of consecutive cycle windows

    @property
    def is_cyclic(self) -> bool:
        return self.period_seconds is not None


def detect_period_bins(
    ac: np.ndarray, *, min_lag: int = 2, threshold: float = 0.15
) -> int | None:
    """Lag (in bins) of the strongest qualifying autocorrelation peak.

    A qualifying peak is a local maximum at lag >= ``min_lag`` whose value
    exceeds ``threshold``.  Returns None when no lag qualifies (the
    aperiodic, compulsory-only programs).
    """
    n = ac.size
    if n < min_lag + 2:
        return None
    best_lag: int | None = None
    best_value = threshold
    # Only search the first half of the lags: peaks beyond duration/2
    # cannot repeat even twice within the series.
    for lag in range(min_lag, n // 2 + 1):
        if lag + 1 >= n:
            break
        if ac[lag] >= ac[lag - 1] and ac[lag] >= ac[lag + 1] and ac[lag] > best_value:
            best_value = ac[lag]
            best_lag = lag
    return best_lag


def cycle_similarity(values: np.ndarray, period_bins: int) -> float:
    """Mean Pearson correlation between consecutive period windows."""
    n_windows = values.size // period_bins
    if n_windows < 2:
        return 0.0
    windows = values[: n_windows * period_bins].reshape(n_windows, period_bins)
    correlations = []
    for a, b in zip(windows[:-1], windows[1:]):
        if a.std() == 0 or b.std() == 0:
            continue
        correlations.append(float(np.corrcoef(a, b)[0, 1]))
    return float(np.mean(correlations)) if correlations else 0.0


def analyze_cycles(
    series: RateSeries, *, max_lag_seconds: float | None = None
) -> CycleReport:
    """Detect and characterize the cyclic structure of a rate curve."""
    values = series.rates
    if values.size < 8 or values.max() <= 0:
        return CycleReport(None, 0.0, 0.0, 0.0)
    max_lag = values.size - 1
    if max_lag_seconds is not None:
        max_lag = min(max_lag, int(max_lag_seconds / series.bin_width))
    ac = series.autocorrelation(max_lag=max_lag)
    lag = detect_period_bins(ac)
    if lag is None:
        return CycleReport(None, 0.0, 0.0, 0.0)
    period = lag * series.bin_width
    return CycleReport(
        period_seconds=period,
        autocorrelation_peak=float(ac[lag]),
        n_cycles=series.duration / period,
        cycle_similarity=cycle_similarity(values, lag),
    )


def peak_spacing_regularity(series: RateSeries, *, top_fraction: float = 0.2) -> float:
    """Coefficient of variation of gaps between demand peaks (lower = more
    evenly spaced, the paper's "request rate peaks were generally evenly
    spaced").

    Peaks are bins in the top ``top_fraction`` of nonzero rates, collapsed
    to burst leaders (a bin whose predecessor is not also a peak).
    """
    rates = series.rates
    nonzero = rates[rates > 0]
    if nonzero.size < 3:
        return 0.0
    cutoff = np.quantile(nonzero, 1 - top_fraction)
    is_peak = rates >= cutoff
    leaders = np.flatnonzero(is_peak & ~np.roll(is_peak, 1))
    if leaders.size < 3:
        return 0.0
    gaps = np.diff(leaders).astype(float)
    return float(gaps.std() / gaps.mean()) if gaps.mean() > 0 else 0.0
