"""Per-file statistics: the "large files vs small files" view.

Section 5.2 considers only "large" files for the access-size analysis,
because small parameter and text-output files "do not contribute much to
the overall I/O".  This module computes per-file aggregates and the
large/small split so the benchmarks can reproduce that filtering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.array import TraceArray
from repro.util.units import MB


@dataclass(frozen=True)
class FileStats:
    """Aggregates over one trace file id."""

    file_id: int
    n_ios: int
    n_reads: int
    n_writes: int
    read_bytes: int
    write_bytes: int
    avg_io_bytes: float
    max_end_offset: int  #: lower bound on the file's size

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    @property
    def rw_data_ratio(self) -> float:
        return self.read_bytes / self.write_bytes if self.write_bytes else float("inf")

    @property
    def is_read_only(self) -> bool:
        return self.n_writes == 0

    @property
    def is_write_only(self) -> bool:
        return self.n_reads == 0


def per_file_stats(trace: TraceArray) -> dict[int, FileStats]:
    """Aggregate each file id's accesses."""
    stats: dict[int, FileStats] = {}
    for fid in trace.file_ids():
        sub = trace.for_file(int(fid))
        reads = sub.is_read
        n = len(sub)
        stats[int(fid)] = FileStats(
            file_id=int(fid),
            n_ios=n,
            n_reads=int(reads.sum()),
            n_writes=int((~reads).sum()),
            read_bytes=int(sub.length[reads].sum()),
            write_bytes=int(sub.length[~reads].sum()),
            avg_io_bytes=float(sub.length.mean()) if n else 0.0,
            max_end_offset=int((sub.offset + sub.length).max()) if n else 0,
        )
    return stats


def split_large_small(
    stats: dict[int, FileStats], *, large_threshold_bytes: int = 2 * MB
) -> tuple[list[FileStats], list[FileStats]]:
    """Partition files into (large, small) by apparent size.

    "In most cases, these files were over a few megabytes long" -- the
    default threshold is 2 MB on the file's maximum accessed offset.
    """
    large = [s for s in stats.values() if s.max_end_offset >= large_threshold_bytes]
    small = [s for s in stats.values() if s.max_end_offset < large_threshold_bytes]
    return large, small


def large_file_io_fraction(
    trace: TraceArray, *, large_threshold_bytes: int = 2 * MB
) -> float:
    """Fraction of transferred bytes going to large files.

    The paper's justification for ignoring small files: their
    "contribution is dwarfed by accesses to large machine-generated data
    files".
    """
    stats = per_file_stats(trace)
    large, _ = split_large_small(stats, large_threshold_bytes=large_threshold_bytes)
    total = trace.total_bytes
    if total == 0:
        return 0.0
    return sum(s.total_bytes for s in large) / total


def access_size_table(
    stats: dict[int, FileStats], *, large_threshold_bytes: int = 2 * MB
) -> list[tuple[int, float, int]]:
    """(file_id, avg access bytes, n_ios) for large files, busiest first."""
    large, _ = split_large_small(stats, large_threshold_bytes=large_threshold_bytes)
    large.sort(key=lambda s: s.n_ios, reverse=True)
    return [(s.file_id, s.avg_io_bytes, s.n_ios) for s in large]


def unique_sizes_per_file(trace: TraceArray) -> dict[int, int]:
    """Number of distinct request sizes per file (regularity check)."""
    out: dict[int, int] = {}
    for fid in trace.file_ids():
        sub = trace.for_file(int(fid))
        out[int(fid)] = int(np.unique(sub.length).size)
    return out
