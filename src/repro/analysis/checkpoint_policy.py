"""Checkpoint-interval policy (section 5.1).

"Checkpoints are generally made every few iterations, though making them
too often slows the program down unnecessarily.  The application writer
balances the cost of writing the checkpoint against the cost of redoing
lost iterations of the simulation.  The likelihood of failure determines
the number of iterations between checkpoints."

This module makes that balance quantitative:

* the classic first-order expected-overhead model (Young's
  approximation), whose optimum interval is ``sqrt(2 * C * MTBF)`` for
  checkpoint cost ``C``;
* a Monte Carlo simulator that injects exponentially distributed
  failures into a run and measures actual completion time, used to
  validate the approximation and to evaluate the paper's worked example
  (40 MB of state every 20 CPU seconds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util.rng import derive_rng
from repro.util.units import MB


@dataclass(frozen=True)
class CheckpointParams:
    """Inputs to the interval decision."""

    checkpoint_cost_s: float  #: time to write one checkpoint
    mtbf_s: float  #: mean time between failures
    work_s: float  #: total useful computation required

    def __post_init__(self) -> None:
        if self.checkpoint_cost_s <= 0:
            raise ValueError("checkpoint cost must be positive")
        if self.mtbf_s <= 0:
            raise ValueError("MTBF must be positive")
        if self.work_s <= 0:
            raise ValueError("work must be positive")


def checkpoint_cost_seconds(
    state_mb: float, bandwidth_mb_per_s: float = 9.6, *, write_behind: bool = False
) -> float:
    """Time a checkpoint of ``state_mb`` costs the application.

    With write-behind the application only pays the copy into the cache
    (modelled as negligible relative to the disk path: a 1 GB/s
    SSD-class copy), otherwise the full disk write.
    """
    if state_mb < 0:
        raise ValueError("state size must be nonnegative")
    if write_behind:
        return state_mb * MB / (1024 * MB)  # ~1 GB/s copy-in
    return state_mb / bandwidth_mb_per_s


def expected_overhead_fraction(interval_s: float, params: CheckpointParams) -> float:
    """First-order expected overhead of checkpointing every ``interval_s``.

    Two terms: the checkpoint writes themselves (``C / tau``) and the
    expected rework after a failure (on average half an interval is
    lost, at rate ``1 / MTBF``): ``tau / (2 * MTBF)``.
    """
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    return params.checkpoint_cost_s / interval_s + interval_s / (2 * params.mtbf_s)


def optimal_interval_seconds(params: CheckpointParams) -> float:
    """Young's approximation: ``sqrt(2 * C * MTBF)``."""
    return math.sqrt(2 * params.checkpoint_cost_s * params.mtbf_s)


def optimal_iterations(params: CheckpointParams, iteration_s: float) -> int:
    """The "number of iterations between checkpoints" for this failure rate."""
    if iteration_s <= 0:
        raise ValueError("iteration time must be positive")
    return max(1, round(optimal_interval_seconds(params) / iteration_s))


def simulate_run(
    interval_s: float,
    params: CheckpointParams,
    rng: np.random.Generator,
) -> float:
    """Monte Carlo one run-to-completion with failure injection.

    Failures arrive as a Poisson process (exponential gaps).  A failure
    rolls the computation back to the last completed checkpoint; the
    partial interval and any in-progress checkpoint time are lost.
    Returns total elapsed time until ``work_s`` of useful computation
    plus its final checkpoint are on disk.
    """
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    elapsed = 0.0
    done = 0.0
    next_failure = float(rng.exponential(params.mtbf_s))
    guard = 0
    while done < params.work_s:
        guard += 1
        if guard > 10_000_000:
            raise RuntimeError("checkpoint simulation did not converge")
        segment = min(interval_s, params.work_s - done)
        segment_total = segment + params.checkpoint_cost_s
        if elapsed + segment_total <= next_failure:
            # Segment and its checkpoint complete before the next failure.
            elapsed += segment_total
            done += segment
        else:
            # Failure mid-segment (or mid-checkpoint): everything since
            # the last checkpoint is lost; restart after the failure.
            elapsed = next_failure
            next_failure = elapsed + float(rng.exponential(params.mtbf_s))
    return elapsed


def measured_overhead_fraction(
    interval_s: float,
    params: CheckpointParams,
    *,
    n_runs: int = 200,
    seed: int = 0,
) -> float:
    """Mean Monte Carlo overhead ``(elapsed - work) / work``."""
    rng = derive_rng(seed, f"ckpt/{interval_s}")
    total = sum(simulate_run(interval_s, params, rng) for _ in range(n_runs))
    mean = total / n_runs
    return (mean - params.work_s) / params.work_s


def sweep_intervals(
    params: CheckpointParams,
    intervals_s: list[float],
    *,
    n_runs: int = 200,
    seed: int = 0,
) -> list[tuple[float, float, float]]:
    """(interval, analytic overhead, measured overhead) per interval."""
    out = []
    for interval in intervals_s:
        out.append(
            (
                interval,
                expected_overhead_fraction(interval, params),
                measured_overhead_fraction(
                    interval, params, n_runs=n_runs, seed=seed
                ),
            )
        )
    return out


def paper_checkpoint_example() -> CheckpointParams:
    """The section 5.1 example: 40 MB of state every 20 CPU seconds.

    "For a program that saves 40 MB of state every 20 CPU seconds, the
    average I/O rate is only 2 MB/sec."  We pair it with an 8-hour MTBF
    (a plausible production figure for the era) to make the decision
    concrete; a 20 s interval is far *shorter* than the failure-optimal
    one, i.e. that example program checkpointed very conservatively.
    """
    return CheckpointParams(
        checkpoint_cost_s=checkpoint_cost_seconds(40.0),
        mtbf_s=8 * 3600.0,
        work_s=3600.0,
    )
