"""Burst structure of I/O demand (section 5.3).

"I/O was bursty, as expected, but the bursts came in cycles."  This
module segments a rate curve into bursts -- maximal runs of bins whose
rate exceeds a threshold -- and reports their count, duration, spacing
and intensity, making "bursty" a measured property instead of a visual
impression.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.timeseries import RateSeries


@dataclass(frozen=True)
class Burst:
    """One contiguous demand burst."""

    start_s: float
    end_s: float  #: exclusive bin edge
    peak: float
    total: float  #: weight moved during the burst (rate * bin integral)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class BurstReport:
    """Aggregate burst statistics for one rate curve."""

    n_bursts: int
    threshold: float
    mean_duration_s: float
    mean_spacing_s: float  #: burst-start to next burst-start
    spacing_cv: float  #: coefficient of variation of spacings
    duty_fraction: float  #: fraction of time inside bursts
    burst_weight_fraction: float  #: fraction of total weight inside bursts
    mean_burst_rate: float

    @property
    def evenly_spaced(self) -> bool:
        """The paper's "peaks were generally evenly spaced" criterion."""
        return self.n_bursts >= 3 and self.spacing_cv < 0.4


def detect_bursts(
    series: RateSeries, *, threshold_fraction: float = 0.25
) -> list[Burst]:
    """Maximal runs of bins above ``threshold_fraction`` of the peak rate."""
    if not 0 < threshold_fraction < 1:
        raise ValueError("threshold_fraction must be in (0, 1)")
    rates = series.rates
    if rates.size == 0 or rates.max() <= 0:
        return []
    threshold = threshold_fraction * float(rates.max())
    above = rates > threshold
    bursts: list[Burst] = []
    start: int | None = None
    for i, flag in enumerate(above):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            bursts.append(_make_burst(series, start, i))
            start = None
    if start is not None:
        bursts.append(_make_burst(series, start, rates.size))
    return bursts


def _make_burst(series: RateSeries, start: int, end: int) -> Burst:
    window = series.rates[start:end]
    return Burst(
        start_s=float(series.times[start]),
        end_s=float(series.times[start]) + (end - start) * series.bin_width,
        peak=float(window.max()),
        total=float(window.sum() * series.bin_width),
    )


def analyze_bursts(
    series: RateSeries, *, threshold_fraction: float = 0.25
) -> BurstReport:
    bursts = detect_bursts(series, threshold_fraction=threshold_fraction)
    total_weight = series.total
    if not bursts:
        return BurstReport(
            n_bursts=0,
            threshold=threshold_fraction,
            mean_duration_s=0.0,
            mean_spacing_s=0.0,
            spacing_cv=0.0,
            duty_fraction=0.0,
            burst_weight_fraction=0.0,
            mean_burst_rate=0.0,
        )
    durations = np.array([b.duration_s for b in bursts])
    starts = np.array([b.start_s for b in bursts])
    spacings = np.diff(starts)
    in_burst = float(durations.sum())
    burst_weight = float(sum(b.total for b in bursts))
    return BurstReport(
        n_bursts=len(bursts),
        threshold=threshold_fraction,
        mean_duration_s=float(durations.mean()),
        mean_spacing_s=float(spacings.mean()) if spacings.size else 0.0,
        spacing_cv=(
            float(spacings.std() / spacings.mean())
            if spacings.size and spacings.mean() > 0
            else 0.0
        ),
        duty_fraction=in_burst / series.duration if series.duration else 0.0,
        burst_weight_fraction=(
            burst_weight / total_weight if total_weight else 0.0
        ),
        mean_burst_rate=burst_weight / in_burst if in_burst else 0.0,
    )
