"""Trace analysis: section 5 of the paper.

* :mod:`repro.analysis.summary` -- Tables 1 and 2.
* :mod:`repro.analysis.rates` -- rate-over-time curves (Figures 3/4 and
  the simulator's disk-traffic figures).
* :mod:`repro.analysis.sequentiality` -- sequential/same-size/regularity
  metrics and file-concentration analysis.
* :mod:`repro.analysis.perfile` -- per-file aggregates and the
  large/small file split.
* :mod:`repro.analysis.classify` -- required/checkpoint/swap I/O classes.
* :mod:`repro.analysis.cycles` -- demand periodicity and cycle
  similarity.
* :mod:`repro.analysis.amdahl` -- Amdahl's I/O metric checks.
* :mod:`repro.analysis.report` -- rendered paper-vs-measured tables.
"""

from repro.analysis.amdahl import (
    amdahl_balance,
    amdahl_io_mb_per_sec,
    paper_swap_example,
)
from repro.analysis.bursts import Burst, BurstReport, analyze_bursts, detect_bursts
from repro.analysis.checkpoint_policy import (
    CheckpointParams,
    checkpoint_cost_seconds,
    expected_overhead_fraction,
    optimal_interval_seconds,
    optimal_iterations,
)
from repro.analysis.classify import (
    ClassificationReport,
    IOClass,
    classify_file,
    classify_trace,
)
from repro.analysis.cycles import CycleReport, analyze_cycles, peak_spacing_regularity
from repro.analysis.perfile import (
    FileStats,
    access_size_table,
    large_file_io_fraction,
    per_file_stats,
    split_large_small,
    unique_sizes_per_file,
)
from repro.analysis.rates import (
    data_rate_series,
    rate_series_csv,
    request_rate_series,
)
from repro.analysis.report import render_table1, render_table2, table1_rows, table2_rows
from repro.analysis.sequentiality import (
    FileConcentrationReport,
    SequentialityReport,
    analyze_file_concentration,
    analyze_sequentiality,
)
from repro.analysis.summary import (
    Table1Row,
    Table2Row,
    extrapolate_table1,
    scale_factor_to_full,
    summarize_table1,
    summarize_table2,
    trace_table1,
)

__all__ = [
    "Burst",
    "BurstReport",
    "analyze_bursts",
    "detect_bursts",
    "CheckpointParams",
    "checkpoint_cost_seconds",
    "expected_overhead_fraction",
    "optimal_interval_seconds",
    "optimal_iterations",
    "amdahl_balance",
    "amdahl_io_mb_per_sec",
    "paper_swap_example",
    "ClassificationReport",
    "IOClass",
    "classify_file",
    "classify_trace",
    "CycleReport",
    "analyze_cycles",
    "peak_spacing_regularity",
    "FileStats",
    "access_size_table",
    "large_file_io_fraction",
    "per_file_stats",
    "split_large_small",
    "unique_sizes_per_file",
    "data_rate_series",
    "rate_series_csv",
    "request_rate_series",
    "render_table1",
    "render_table2",
    "table1_rows",
    "table2_rows",
    "FileConcentrationReport",
    "SequentialityReport",
    "analyze_file_concentration",
    "analyze_sequentiality",
    "Table1Row",
    "Table2Row",
    "extrapolate_table1",
    "scale_factor_to_full",
    "summarize_table1",
    "summarize_table2",
    "trace_table1",
]
