"""Amdahl's I/O metric (section 1 and the section 5.1 worked example).

"According to Amdahl's metric, each MIPS (million instructions per
second) should be accompanied by one Mbit per second of I/O."

The section 5.1 example: a memory-limited code moving 3 words (24 bytes)
per 200 floating-point operations needs 24 bytes of I/O per 200 FLOPs --
"quite close to Amdahl's metric, which would require 200 bits, or 25
bytes of I/O for those 200 FLOPS".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import MB

#: Amdahl: one megabit of I/O per second per MIPS.
AMDAHL_BITS_PER_INSTRUCTION = 1.0

#: The Y-MP-class sustained rate used in the paper's example.
PAPER_EXAMPLE_MFLOPS = 200.0

#: Bytes of I/O per data point in the example (3 eight-byte words).
PAPER_EXAMPLE_BYTES_PER_POINT = 24

#: Floating-point operations per data point in the example.
PAPER_EXAMPLE_FLOPS_PER_POINT = 200


def amdahl_io_mb_per_sec(mips: float) -> float:
    """I/O rate (MB/s) Amdahl's metric prescribes for a ``mips`` machine."""
    bits_per_sec = mips * 1e6 * AMDAHL_BITS_PER_INSTRUCTION
    return bits_per_sec / 8 / MB


def amdahl_balance(io_mb_per_sec: float, mips: float) -> float:
    """Measured-to-prescribed I/O ratio; 1.0 is Amdahl-balanced.

    Above 1 the application demands more bandwidth per instruction than
    Amdahl's rule; below 1 it is compute-heavy.
    """
    prescribed = amdahl_io_mb_per_sec(mips)
    return io_mb_per_sec / prescribed if prescribed else 0.0


@dataclass(frozen=True)
class SwapRateEstimate:
    """Sustained swap-I/O estimate for a memory-limited application."""

    bytes_per_point: int
    flops_per_point: int
    mflops: float

    @property
    def mb_per_sec(self) -> float:
        points_per_sec = self.mflops * 1e6 / self.flops_per_point
        return points_per_sec * self.bytes_per_point / 1e6

    @property
    def amdahl_mb_per_sec(self) -> float:
        """What Amdahl's metric prescribes, treating FLOPS as instructions."""
        return self.mflops * 1e6 / 8 / 1e6


def paper_swap_example() -> SwapRateEstimate:
    """The section 5.1 worked example (about 24 MB/s vs Amdahl's 25)."""
    return SwapRateEstimate(
        bytes_per_point=PAPER_EXAMPLE_BYTES_PER_POINT,
        flops_per_point=PAPER_EXAMPLE_FLOPS_PER_POINT,
        mflops=PAPER_EXAMPLE_MFLOPS,
    )
