"""Rate-over-time curves from traces (Figures 3, 4, 6, 7).

The paper's application figures plot "MB per CPU second" against *process
CPU time* at one-second resolution, so multiprogramming effects are
filtered out; the simulation figures plot disk traffic against wall
time.  Both reduce to binning record lengths on the chosen clock.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.trace.array import TraceArray
from repro.util.timeseries import BinnedSeries, RateSeries
from repro.util.units import MB, ticks_to_seconds

Clock = Literal["cpu", "wall"]
Direction = Literal["both", "read", "write"]


def _select(trace: TraceArray, direction: Direction) -> TraceArray:
    if direction == "read":
        return trace.reads()
    if direction == "write":
        return trace.writes()
    return trace


def _clock_seconds(trace: TraceArray, clock: Clock) -> np.ndarray:
    ticks = trace.process_clock if clock == "cpu" else trace.start_time
    return ticks.astype(float) * ticks_to_seconds(1)


def data_rate_series(
    trace: TraceArray,
    *,
    clock: Clock = "cpu",
    direction: Direction = "both",
    bin_seconds: float = 1.0,
) -> RateSeries:
    """MB-per-second curve of a trace on the chosen clock.

    ``clock="cpu"`` requires a single-process trace (process CPU clocks
    of different processes are incommensurable); ``clock="wall"`` accepts
    any trace.
    """
    selected = _select(trace, direction)
    if clock == "cpu" and len(trace.process_ids()) > 1:
        raise ValueError(
            "cpu-clock rate series needs a single-process trace; "
            "filter with trace.for_process() first"
        )
    binned = BinnedSeries(bin_seconds)
    times = _clock_seconds(selected, clock)
    weights = selected.length.astype(float) / MB
    binned.add_many(times, weights)
    return RateSeries.from_binned(binned)


def request_rate_series(
    trace: TraceArray,
    *,
    clock: Clock = "cpu",
    direction: Direction = "both",
    bin_seconds: float = 1.0,
) -> RateSeries:
    """I/Os-per-second curve of a trace on the chosen clock."""
    selected = _select(trace, direction)
    binned = BinnedSeries(bin_seconds)
    times = _clock_seconds(selected, clock)
    binned.add_many(times, np.ones(len(selected)))
    return RateSeries.from_binned(binned)


def rate_series_csv(series: RateSeries, *, header: str = "seconds,mb_per_sec") -> str:
    """Render a rate series as CSV text (the figures' data dump)."""
    lines = [header]
    for t, r in zip(series.times, series.rates):
        lines.append(f"{t:.3f},{r:.6f}")
    return "\n".join(lines)
