"""Sequentiality and regularity metrics (section 5.2).

The paper's key structural findings:

* file accesses are *highly sequential* (each request starts where the
  file's previous request ended);
* request sizes are *regular* ("each program had a typical I/O request
  size which stayed constant throughout the program");
* "a very large majority of the accesses went to only a small number of
  files".

These are also exactly the properties the trace compression and the
read-ahead policy exploit, so the metrics double as predictors for both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.array import TraceArray


@dataclass(frozen=True)
class SequentialityReport:
    """Trace-wide sequential/regularity metrics."""

    n_ios: int
    #: fraction of I/Os sequential with the same file's previous I/O
    sequential_fraction: float
    #: fraction of I/Os with the same size as the same file's previous I/O
    same_size_fraction: float
    #: fraction of I/Os that are sequential AND same-size (the pattern
    #: read-ahead predicts perfectly)
    predictable_fraction: float
    #: number of distinct request sizes across the trace
    n_distinct_sizes: int
    #: fraction of all I/Os that use the single most common size
    dominant_size_fraction: float
    #: most common request size in bytes
    dominant_size: int


def per_file_flags(trace: TraceArray) -> tuple[np.ndarray, np.ndarray]:
    """(sequential, same_size) boolean flags per record.

    A record is *sequential* if its offset equals the previous same-file
    record's ``offset + length``; *same-size* if its length equals that
    record's length.  First accesses to a file are neither.
    """
    n = len(trace)
    sequential = np.zeros(n, dtype=bool)
    same_size = np.zeros(n, dtype=bool)
    for fid in trace.file_ids():
        idx = np.flatnonzero(trace.file_id == fid)
        if idx.size < 2:
            continue
        offs = trace.offset[idx]
        lens = trace.length[idx]
        sequential[idx[1:]] = offs[1:] == offs[:-1] + lens[:-1]
        same_size[idx[1:]] = lens[1:] == lens[:-1]
    return sequential, same_size


def analyze_sequentiality(trace: TraceArray) -> SequentialityReport:
    n = len(trace)
    if n == 0:
        return SequentialityReport(0, 0.0, 0.0, 0.0, 0, 0.0, 0)
    sequential, same_size = per_file_flags(trace)
    sizes, counts = np.unique(trace.length, return_counts=True)
    top = int(np.argmax(counts))
    return SequentialityReport(
        n_ios=n,
        sequential_fraction=float(sequential.mean()),
        same_size_fraction=float(same_size.mean()),
        predictable_fraction=float((sequential & same_size).mean()),
        n_distinct_sizes=int(sizes.size),
        dominant_size_fraction=float(counts[top]) / n,
        dominant_size=int(sizes[top]),
    )


@dataclass(frozen=True)
class FileConcentrationReport:
    """How concentrated the accesses are on few files."""

    n_files: int
    #: smallest number of files covering >= 90% of all accesses
    files_for_90_percent: int
    #: fraction of accesses going to the single busiest file
    top_file_fraction: float


def analyze_file_concentration(trace: TraceArray) -> FileConcentrationReport:
    if len(trace) == 0:
        return FileConcentrationReport(0, 0, 0.0)
    _, counts = np.unique(trace.file_id, return_counts=True)
    counts = np.sort(counts)[::-1]
    cumulative = np.cumsum(counts) / len(trace)
    k90 = int(np.searchsorted(cumulative, 0.9) + 1)
    return FileConcentrationReport(
        n_files=int(counts.size),
        files_for_90_percent=k90,
        top_file_fraction=float(counts[0]) / len(trace),
    )
