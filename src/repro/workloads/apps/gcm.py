"""gcm -- the Global Climate Model.

"Gcm was primarily an in-memory simulation -- the only data that went
through the operating system were final results.  The data fit into a
main memory array, obviating the need to stage data from disk.  As a
result, the program did few I/Os."

Model facts: compulsory I/O only.  A modest initialization read at
startup (~20 MB in 32 KB requests), then a long computation that emits
result history steadily (3.85 writes/s of ~32 KB -- buffered history
records), dominated by writes (read/write ratio 0.089).  Table 1's
229 MB data size is the initialization file plus the accumulated result
history.
"""

from __future__ import annotations

from repro.runtime.api import AppRuntime
from repro.util.units import KB, MB, seconds_to_ticks
from repro.workloads.base import ApplicationModel, register_model
from repro.workloads.patterns import jittered_ticks


@register_model
class GcmModel(ApplicationModel):
    name = "gcm"

    #: simulation steps; each computes then appends history records.
    full_iterations = 474
    io_chunk = 32 * KB

    def run(self, rt: AppRuntime) -> None:
        paper = self.paper
        rng = self.rng("compute")
        iterations = self.scaled_cycles(self.full_iterations)
        iter_cpu = seconds_to_ticks(
            paper.running_seconds / self.full_iterations
        )

        total_read = int(paper.read_mb_per_sec * MB * paper.running_seconds)
        total_writes = round(
            paper.write_ios_per_sec * paper.running_seconds
        )
        writes_per_iter = max(1, round(total_writes / self.full_iterations))

        # --- compulsory input: the initial state -------------------------
        # Scaled with the run so the read/write balance holds at any scale.
        n_init_reads = max(
            1, int(total_read * iterations / self.full_iterations) // self.io_chunk
        )
        rt.fs.create("gcm.init", size=n_init_reads * self.io_chunk)
        fd = rt.open("gcm.init")
        for _ in range(n_init_reads):
            rt.read(fd, self.io_chunk)
            rt.compute_ticks(jittered_ticks(20, rng))
        rt.close(fd)

        # --- iterate in memory; emit history records ----------------------
        hist_fd = rt.open("gcm.history", create=True)
        io_cpu = writes_per_iter * self.per_io_overhead_ticks(rt, self.io_chunk)
        compute_block = max(0, iter_cpu - io_cpu)
        for _ in range(iterations):
            rt.compute_ticks(jittered_ticks(compute_block, rng))
            for _ in range(writes_per_iter):
                rt.write(hist_fd, self.io_chunk)
        rt.close(hist_fd)
