"""ccm -- the Community Climate Model.

"Ccm took the intermediate point between the two [gcm and venus],
requiring fewer megabytes per second of program execution than venus but
far more than gcm, probably because its in-memory data array was
intermediate in size."

Model facts: ~32 KB requests, read/write ratio near one (1.07), a small
on-disk working set (11.6 MB) swept repeatedly, with periodic checkpoints
(the paper's second I/O class; climate models checkpoint every few
iterations).
"""

from __future__ import annotations

from repro.util.units import KB
from repro.workloads.apps._staged import StagedIterativeModel
from repro.workloads.base import register_model


@register_model
class CcmModel(StagedIterativeModel):
    name = "ccm"

    full_cycles = 40
    read_chunk = 32 * KB
    write_chunk = 32 * KB
    io_phase_fraction = 0.5
    checkpoint_every = 10
    checkpoint_mb = 2.0
