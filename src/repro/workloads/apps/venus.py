"""venus -- simulation of Venus's atmosphere.

"The venus code went to the other extreme.  To get into a shorter job
queue, the program's implementor decided to use a very small in-memory
array.  Thus, the program accessed the file system frequently to stage
the required data to and from memory."

Model facts (catalog + narrative):

* six relatively small data files, interleaved every cycle ("the seeks
  required by interleaving accesses to six different data files inserted
  extra delays");
* ~456 KB requests, read/write data ratio 1.80 (each section written once
  per cycle but read more than once);
* strongly cyclic demand (Figure 3): 1-second bins peak near 95 MB/s
  against a 44.1 MB/s mean, with ~40 bursts over the 379 s run.
"""

from __future__ import annotations

from repro.util.units import KB
from repro.workloads.apps._staged import StagedIterativeModel
from repro.workloads.base import register_model


@register_model
class VenusModel(StagedIterativeModel):
    name = "venus"

    full_cycles = 40
    read_chunk = 456 * KB
    write_chunk = 456 * KB
    # 418 MB/cycle over 0.47 * 9.475 s -> ~94 MB/s burst rate, matching
    # Figure 3's ~95 MB/s peaks.
    io_phase_fraction = 0.47
