"""forma -- sparse-matrix structural dynamics.

"This program was originally written for a Cray 1, with its small
memory, and uses sparse matrices to solve structural dynamics problems
... By breaking up the data array into blocks, empty blocks can be
easily identified and created in memory instead of being staged in."

Model facts: the highest data and request rates of any traced program
(73.6 MB/s, 2310 I/Os/s), heavily read-dominated (ratio 11.0) because the
factored matrix blocks are re-read every solver pass while only updates
are written back; a fraction of block slots in each sweep are *empty* and
get skipped (a seek with no transfer).  Write requests are deliberately
not 512-byte aligned (19 KB + change), which exercises the trace format's
non-block-encoded path.
"""

from __future__ import annotations

from repro.util.units import KB
from repro.workloads.apps._staged import StagedIterativeModel
from repro.workloads.base import register_model


@register_model
class FormaModel(StagedIterativeModel):
    name = "forma"

    full_cycles = 50
    read_chunk = 32 * KB
    write_chunk = 19 * KB + 448  # deliberately unaligned block tails
    io_phase_fraction = 0.8
    sparse_skip_fraction = 0.25
