"""les -- large eddy simulation (Navier-Stokes with turbulence).

"The program that came closest to fully utilizing a CPU while doing
large amounts of I/O was les, since it was the only program that used
asynchronous reads and writes explicitly.  Clearly, its designer spent
much time optimizing it for the Cray Y-MP system."

Model facts: ~325 KB requests, read/write nearly balanced (0.95), a
224 MB data set, explicit ``reada``/``writea`` with a bounded queue of
outstanding requests so computation overlaps the transfers; an I/O
request is "not only sequential with the previous I/O, but also the same
size" -- the property the read-ahead policy exploits.
"""

from __future__ import annotations

from repro.runtime.api import AppRuntime, AsyncRequest
from repro.util.units import KB
from repro.workloads.apps._staged import StagedIterativeModel
from repro.workloads.base import register_model
from repro.workloads.patterns import InterleavedSweep, jittered_array


@register_model
class LesModel(StagedIterativeModel):
    name = "les"

    full_cycles = 18
    read_chunk = 328 * KB
    write_chunk = 318 * KB
    io_phase_fraction = 0.6
    checkpoint_every = 6
    checkpoint_mb = 8.0

    #: outstanding asynchronous requests kept in flight.
    queue_depth = 4

    def _drain(self, rt: AppRuntime, queue: list[AsyncRequest], down_to: int) -> None:
        while len(queue) > down_to:
            rt.wait(queue.pop(0))

    def _async_pass(
        self,
        rt: AppRuntime,
        rng,
        sweep: InterleavedSweep,
        n_ios: int,
        cpu: int,
        *,
        write: bool,
        chunk: int,
    ) -> None:
        gap = self.compute_gap_ticks(
            rt, phase_cpu_ticks=cpu, n_ios=n_ios, io_bytes=chunk
        )
        gaps = jittered_array(gap, n_ios, rng)
        queue: list[AsyncRequest] = []
        for i in range(n_ios):
            self._drain(rt, queue, self.queue_depth - 1)
            if write:
                queue.append(sweep.write_step_async())
            else:
                queue.append(sweep.read_step_async())
            if gaps[i]:
                rt.compute_ticks(int(gaps[i]))
        self._drain(rt, queue, 0)

    def _read_pass(self, rt, rng, sweep, n_reads, cpu):
        self._async_pass(
            rt, rng, sweep, n_reads, cpu, write=False, chunk=self.read_chunk
        )

    def _write_pass(self, rt, rng, sweep, n_writes, cpu):
        self._async_pass(
            rt, rng, sweep, n_writes, cpu, write=True, chunk=self.write_chunk
        )
