"""upw -- approximate polynomial factorization.

"Upw did the least I/O of any application traced.  This program read a
small input file, computed for ten CPU minutes, and wrote out an answer.
It is an important program, however, since this is a representative I/O
pattern for some applications."

Model facts: compulsory I/O only -- a sub-megabyte input read at startup,
a steady trickle of buffered progress/answer output through the run
(Table 2's 3.05 writes/s of ~32 KB), and the answer flushed at the end.
Total I/O is two orders of magnitude below the staging applications'.
"""

from __future__ import annotations

from repro.runtime.api import AppRuntime
from repro.util.units import KB, seconds_to_ticks
from repro.workloads.base import ApplicationModel, register_model
from repro.workloads.patterns import jittered_ticks, split_evenly


@register_model
class UpwModel(ApplicationModel):
    name = "upw"

    io_chunk = 32 * KB
    #: the input file is read in a few large requests ("the program
    #: infrequently requests a few large I/Os"): 22 reads of 300 KB
    #: reproduce Table 2's 0.037 reads/s at 0.011 MB/s.
    input_reads = 22
    input_chunk = 300 * KB
    final_answer_bytes = 1024 * KB
    #: compute slices between output flushes.
    full_slices = 1800

    def run(self, rt: AppRuntime) -> None:
        paper = self.paper
        rng = self.rng("compute")
        slices = self.scaled_cycles(self.full_slices)
        slice_cpu = seconds_to_ticks(paper.running_seconds / self.full_slices)

        # --- compulsory input ---------------------------------------------
        # Scaled with the run so rates hold at any scale.
        n_reads = max(1, round(self.input_reads * slices / self.full_slices))
        rt.fs.create("upw.input", size=n_reads * self.input_chunk)
        fd = rt.open("upw.input")
        for _ in range(n_reads):
            rt.read(fd, self.input_chunk)
        rt.close(fd)

        # --- ten minutes of CPU with buffered output flushes ---------------
        out_fd = rt.open("upw.output", create=True)
        io_cpu = self.per_io_overhead_ticks(rt, self.io_chunk)
        block = max(0, slice_cpu - io_cpu)
        for _ in range(slices):
            rt.compute_ticks(jittered_ticks(block, rng))
            rt.write(out_fd, self.io_chunk)

        # --- the answer ------------------------------------------------------
        answer = max(
            self.io_chunk,
            int(self.final_answer_bytes * slices / self.full_slices),
        )
        for piece in split_evenly(answer, max(1, answer // self.io_chunk)):
            if piece > 0:
                rt.write(out_fd, piece)
        rt.close(out_fd)
