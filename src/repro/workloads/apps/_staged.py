"""Shared skeleton for the data-staging iterative applications.

venus, ccm, bvi and forma all follow the same life cycle the paper
describes for memory-limited codes:

1. **required input** -- read a configuration file and any initial data;
2. **cycles** -- every iteration sweeps (part of) the on-disk data array:
   a read pass staging data in, computation, and a write pass staging
   results out ("the entire data set is usually shuttled in and out of
   memory at least once, and perhaps more often");
3. **required output** -- write the final results.

Subclasses configure the knobs (cycle count, chunk sizes, interleaving,
burst fraction, checkpoints, sparse skipping) from the catalog row.
"""

from __future__ import annotations

from typing import ClassVar

from repro.runtime.api import AppRuntime
from repro.util.units import MB, seconds_to_ticks
from repro.workloads.base import ApplicationModel
from repro.workloads.patterns import (
    FileCursor,
    InterleavedSweep,
    jittered_array,
    jittered_ticks,
    split_evenly,
)


class StagedIterativeModel(ApplicationModel):
    """Read-sweep / compute / write-sweep iterative application."""

    # -- knobs (override per app) -----------------------------------------
    full_cycles: ClassVar[int]
    read_chunk: ClassVar[int]
    write_chunk: ClassVar[int]
    #: fraction of each cycle's CPU time during which the I/O happens;
    #: smaller means burstier demand (controls the figures' peak rates).
    io_phase_fraction: ClassVar[float] = 0.5
    #: write a checkpoint every N cycles (None disables); its bytes are
    #: carved out of that cycle's write budget so totals stay calibrated.
    checkpoint_every: ClassVar[int | None] = None
    checkpoint_mb: ClassVar[float] = 0.0
    #: fraction of read steps that are skipped-over empty blocks
    #: (forma's sparse-matrix optimization); skipped blocks cost a seek
    #: but no I/O, so the model inflates its sweep length to compensate.
    sparse_skip_fraction: ClassVar[float] = 0.0
    #: bytes of configuration read before the first cycle.
    config_bytes: ClassVar[int] = 128 * 1024
    #: bytes of final results written after the last cycle.
    final_output_bytes: ClassVar[int] = 2 * MB

    def run(self, rt: AppRuntime) -> None:
        paper = self.paper
        rng = self.rng("compute")
        cycles = self.scaled_cycles(self.full_cycles)
        cycle_cpu = seconds_to_ticks(paper.running_seconds / self.full_cycles)

        # Per-cycle byte budgets from the Table 2 rates.
        read_bytes_cycle = int(
            paper.read_mb_per_sec * MB * paper.running_seconds / self.full_cycles
        )
        write_bytes_cycle = int(
            paper.write_mb_per_sec * MB * paper.running_seconds / self.full_cycles
        )

        # --- required input -------------------------------------------------
        data_fds = self._create_files(rt)
        rt.fs.create(f"{self.name}.config", size=self.config_bytes)
        config_fd = rt.open(f"{self.name}.config")
        rt.read(config_fd, self.config_bytes)
        rt.close(config_fd)

        read_sweep = InterleavedSweep(
            [FileCursor(rt, fd, self.read_chunk) for fd in data_fds]
        )
        write_sweep = InterleavedSweep(
            [FileCursor(rt, fd, self.write_chunk) for fd in data_fds]
        )
        checkpoint_fd: int | None = None
        ckpt_every: int | None = None
        if self.checkpoint_every:
            checkpoint_fd = rt.open(f"{self.name}.checkpoint", create=True)
            # Scale the interval with the run so scaled-down replays
            # still checkpoint at the same per-run frequency.
            ckpt_every = max(2, round(self.checkpoint_every * self.scale))

        # --- cycles ---------------------------------------------------------
        for cycle in range(cycles):
            checkpoint_bytes = 0
            if (
                checkpoint_fd is not None
                and ckpt_every is not None
                and (cycle + 1) % ckpt_every == 0
            ):
                checkpoint_bytes = min(
                    int(self.checkpoint_mb * MB), write_bytes_cycle
                )
            self._run_cycle(
                rt,
                rng,
                read_sweep,
                write_sweep,
                cycle_cpu=cycle_cpu,
                read_bytes=read_bytes_cycle,
                write_bytes=write_bytes_cycle - checkpoint_bytes,
            )
            if checkpoint_bytes and checkpoint_fd is not None:
                rt.seek(checkpoint_fd, 0)
                for piece in split_evenly(
                    checkpoint_bytes, max(1, checkpoint_bytes // self.write_chunk)
                ):
                    if piece > 0:
                        rt.write(checkpoint_fd, piece)

        # --- required output --------------------------------------------------
        out_fd = rt.open(f"{self.name}.results", create=True)
        for piece in split_evenly(
            self.final_output_bytes,
            max(1, self.final_output_bytes // self.write_chunk),
        ):
            if piece > 0:
                rt.write(out_fd, piece)
        rt.close(out_fd)
        if checkpoint_fd is not None:
            rt.close(checkpoint_fd)

    # -- pieces subclasses may refine ---------------------------------------
    def _create_files(self, rt: AppRuntime) -> list[int]:
        """Create the pre-existing data files; returns open descriptors."""
        n = self.paper.n_data_files
        total = self.paper.data_size_bytes
        # Leave room for config/results/checkpoint in the Table 1 data size.
        extras = (
            self.config_bytes
            + self.final_output_bytes
            + (int(self.checkpoint_mb * MB) if self.checkpoint_every else 0)
        )
        per_file = max(self.read_chunk, (total - extras) // n)
        fds = []
        for i in range(n):
            name = f"{self.name}.data{i}"
            rt.fs.create(name, size=per_file)
            fds.append(rt.open(name))
        return fds

    def _run_cycle(
        self,
        rt: AppRuntime,
        rng,
        read_sweep: InterleavedSweep,
        write_sweep: InterleavedSweep,
        *,
        cycle_cpu: int,
        read_bytes: int,
        write_bytes: int,
    ) -> None:
        n_reads = max(1, round(read_bytes / self.read_chunk))
        n_writes = max(1, round(write_bytes / self.write_chunk))
        phase_cpu = int(self.io_phase_fraction * cycle_cpu)
        n_ios = n_reads + n_writes
        read_phase_cpu = phase_cpu * n_reads // n_ios
        write_phase_cpu = phase_cpu - read_phase_cpu

        self._read_pass(rt, rng, read_sweep, n_reads, read_phase_cpu)
        self._write_pass(rt, rng, write_sweep, n_writes, write_phase_cpu)

        trailing = max(0, cycle_cpu - phase_cpu)
        if trailing:
            rt.compute_ticks(jittered_ticks(trailing, rng))

    def _read_pass(
        self, rt: AppRuntime, rng, sweep: InterleavedSweep, n_reads: int, cpu: int
    ) -> None:
        gap = self.compute_gap_ticks(
            rt, phase_cpu_ticks=cpu, n_ios=n_reads, io_bytes=self.read_chunk
        )
        gaps = jittered_array(gap, n_reads, rng)
        skip = self.sparse_skip_fraction
        skips = rng.random(n_reads) < skip if skip else None
        for i in range(n_reads):
            if skips is not None and skips[i]:
                # An empty block: identified from the index and created in
                # memory instead of being staged in. Costs a seek only --
                # and we still perform the data read elsewhere in the
                # sweep, so issue both the skip and a real read to keep
                # byte totals calibrated.
                sweep.skip_step()
            sweep.read_step()
            if gaps[i]:
                rt.compute_ticks(int(gaps[i]))

    def _write_pass(
        self, rt: AppRuntime, rng, sweep: InterleavedSweep, n_writes: int, cpu: int
    ) -> None:
        gap = self.compute_gap_ticks(
            rt, phase_cpu_ticks=cpu, n_ios=n_writes, io_bytes=self.write_chunk
        )
        gaps = jittered_array(gap, n_writes, rng)
        for i in range(n_writes):
            sweep.write_step()
            if gaps[i]:
                rt.compute_ticks(int(gaps[i]))
