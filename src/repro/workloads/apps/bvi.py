"""bvi -- blade-vortex interaction CFD.

"It was the only one of the programs traced explicitly designed for use
with the SSD ... Since the SSD has zero seek time and a very high
transfer rate, the program did not suffer a major performance loss from
the many small I/Os it made ... the file system overhead may have slowed
the program down by using more operating system time."

Model facts: ~16 KB average requests (half the next-smallest program's),
nearly 1.9 million I/Os at ~1100/s, read/write data ratio 2.31,
synchronous I/O against a non-suspending SSD profile (the transfer time
is charged as CPU, reproducing the "more operating system time"
penalty).  Table 2's per-direction rates imply asymmetric sizes: reads of
~14 KB (12.3 MB/s at 913/s) and writes of ~30 KB (5.34 MB/s at 185/s).
"""

from __future__ import annotations

from repro.util.units import KB
from repro.workloads.apps._staged import StagedIterativeModel
from repro.workloads.base import register_model


@register_model
class BviModel(StagedIterativeModel):
    name = "bvi"

    full_cycles = 100
    read_chunk = 14 * KB
    write_chunk = 30 * KB
    io_phase_fraction = 0.7
