"""The seven traced-application models.

Importing this package registers every model with
:func:`repro.workloads.base.model_for`.
"""

from repro.workloads.apps.bvi import BviModel
from repro.workloads.apps.ccm import CcmModel
from repro.workloads.apps.forma import FormaModel
from repro.workloads.apps.gcm import GcmModel
from repro.workloads.apps.les import LesModel
from repro.workloads.apps.upw import UpwModel
from repro.workloads.apps.venus import VenusModel

__all__ = [
    "BviModel",
    "CcmModel",
    "FormaModel",
    "GcmModel",
    "LesModel",
    "UpwModel",
    "VenusModel",
]
