"""Canonical paper targets: Tables 1 and 2, reconstructed.

The scanned tables contain OCR damage; DESIGN.md section 3 records how the
values below were reconstructed (cross-checking ``rate x time = total`` and
``count x avg = total`` against the prose).  These rows are the "paper"
column of every table benchmark and the calibration targets of the
workload generators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import KB, MB

#: Application names in the tables' row order.
APP_NAMES = ("bvi", "ccm", "forma", "gcm", "les", "venus", "upw")


@dataclass(frozen=True)
class PaperAppRow:
    """One application's row across Tables 1 and 2, plus narrative facts."""

    name: str
    category: str
    description: str

    # --- Table 1: Characteristics of the traced applications ---
    running_seconds: float  #: CPU time the program required
    data_size_mb: float  #: sum of sizes of all files accessed
    total_io_mb: float  #: total data read + written
    n_ios: int  #: number of read/write calls
    avg_io_mb: float  #: total_io_mb / n_ios
    mb_per_sec: float  #: total_io_mb / running_seconds
    ios_per_sec: float  #: n_ios / running_seconds

    # --- Table 2: I/O request rates and data rates (per CPU second) ---
    read_mb_per_sec: float
    write_mb_per_sec: float
    read_ios_per_sec: float
    write_ios_per_sec: float
    avg_io_kb: float
    rw_data_ratio: float  #: bytes read / bytes written

    # --- narrative facts used by the models ---
    uses_ssd: bool = False  #: bvi was "explicitly designed for use with the SSD"
    uses_async: bool = False  #: les "used asynchronous reads and writes explicitly"
    n_data_files: int = 1  #: venus interleaved "six different data files"
    compulsory_only: bool = False  #: gcm and upw "only do compulsory I/O"

    @property
    def read_fraction_bytes(self) -> float:
        """Fraction of transferred bytes that are reads."""
        return self.rw_data_ratio / (1.0 + self.rw_data_ratio)

    @property
    def total_io_bytes(self) -> int:
        return int(self.total_io_mb * MB)

    @property
    def data_size_bytes(self) -> int:
        return int(self.data_size_mb * MB)

    @property
    def avg_io_bytes(self) -> int:
        return int(self.avg_io_mb * MB)


PAPER_APPS: dict[str, PaperAppRow] = {
    "bvi": PaperAppRow(
        name="bvi",
        category="CFD",
        description=(
            "Blade-vortex interaction: helicopter-blade CFD, explicitly "
            "designed for the Cray SSD; many small I/Os"
        ),
        running_seconds=1718.0,
        data_size_mb=171.0,
        total_io_mb=30_150.0,
        n_ios=1_884_000,
        avg_io_mb=0.016,
        mb_per_sec=17.6,
        ios_per_sec=1097.0,
        read_mb_per_sec=12.3,
        write_mb_per_sec=5.34,
        read_ios_per_sec=913.0,
        write_ios_per_sec=185.0,
        avg_io_kb=16.1,
        rw_data_ratio=2.31,
        uses_ssd=True,
        n_data_files=2,
    ),
    "ccm": PaperAppRow(
        name="ccm",
        category="climate",
        description=(
            "Community Climate Model: atmosphere CFD with an intermediate "
            "in-memory array, staging the rest through the file system"
        ),
        running_seconds=205.0,
        data_size_mb=11.6,
        total_io_mb=1_812.0,
        n_ios=54_125,
        avg_io_mb=0.0335,
        mb_per_sec=8.8,
        ios_per_sec=264.0,
        read_mb_per_sec=4.25,
        write_mb_per_sec=3.96,
        read_ios_per_sec=135.0,
        write_ios_per_sec=128.0,
        avg_io_kb=31.9,
        rw_data_ratio=1.07,
        n_data_files=2,
    ),
    "forma": PaperAppRow(
        name="forma",
        category="structural",
        description=(
            "Sparse-matrix structural dynamics (Cray 1 heritage): blocked "
            "data array, empty blocks synthesized in memory; read-dominated"
        ),
        running_seconds=206.0,
        data_size_mb=30.0,
        total_io_mb=15_155.0,
        n_ios=475_826,
        avg_io_mb=0.0319,
        mb_per_sec=73.6,
        ios_per_sec=2310.0,
        read_mb_per_sec=62.2,
        write_mb_per_sec=5.68,
        read_ios_per_sec=1990.0,
        write_ios_per_sec=300.0,
        avg_io_kb=30.4,
        rw_data_ratio=11.0,
        n_data_files=2,
    ),
    "gcm": PaperAppRow(
        name="gcm",
        category="climate",
        description=(
            "Global Climate Model: primarily in-memory; only final results "
            "go through the operating system (compulsory I/O only)"
        ),
        running_seconds=1897.0,
        data_size_mb=229.0,
        total_io_mb=266.2,
        n_ios=7_953,
        avg_io_mb=0.0335,
        mb_per_sec=0.14,
        ios_per_sec=4.2,
        read_mb_per_sec=0.0107,
        write_mb_per_sec=0.12,
        read_ios_per_sec=0.34,
        write_ios_per_sec=3.85,
        avg_io_kb=31.9,
        rw_data_ratio=0.089,
        compulsory_only=True,
        n_data_files=1,
    ),
    "les": PaperAppRow(
        name="les",
        category="large eddy",
        description=(
            "Large eddy simulation (Navier-Stokes with turbulence); the only "
            "traced program using explicit asynchronous reads and writes"
        ),
        running_seconds=146.0,
        data_size_mb=224.0,
        total_io_mb=7_803.0,
        n_ios=22_384,
        avg_io_mb=0.349,
        mb_per_sec=53.4,
        ios_per_sec=153.0,
        read_mb_per_sec=24.0,
        write_mb_per_sec=25.2,
        read_ios_per_sec=74.0,
        write_ios_per_sec=81.0,
        avg_io_kb=325.0,
        rw_data_ratio=0.95,
        uses_async=True,
        n_data_files=2,
    ),
    "venus": PaperAppRow(
        name="venus",
        category="climate",
        description=(
            "Venus-atmosphere model: deliberately tiny in-memory array to "
            "reach a shorter job queue; stages six data files every cycle"
        ),
        running_seconds=379.0,
        data_size_mb=55.2,
        total_io_mb=16_712.0,
        n_ios=34_904,
        avg_io_mb=0.479,
        mb_per_sec=44.1,
        ios_per_sec=92.0,
        read_mb_per_sec=28.4,
        write_mb_per_sec=15.7,
        read_ios_per_sec=59.0,
        write_ios_per_sec=33.0,
        avg_io_kb=456.0,
        rw_data_ratio=1.80,
        n_data_files=6,
    ),
    "upw": PaperAppRow(
        name="upw",
        category="polynomial",
        description=(
            "Approximate polynomial factorization: read a small input, "
            "compute ten CPU minutes, write the answer (compulsory only)"
        ),
        running_seconds=596.0,
        data_size_mb=62.0,
        total_io_mb=61.5,
        n_ios=1_940,
        avg_io_mb=0.0317,
        mb_per_sec=0.10,
        ios_per_sec=3.1,
        read_mb_per_sec=0.011,
        write_mb_per_sec=0.092,
        read_ios_per_sec=0.037,
        write_ios_per_sec=3.05,
        avg_io_kb=32.7,
        rw_data_ratio=0.12,
        compulsory_only=True,
        n_data_files=1,
    ),
}


def paper_row(name: str) -> PaperAppRow:
    """Look up an application's canonical row (KeyError-safe message)."""
    try:
        return PAPER_APPS[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; expected one of {APP_NAMES}"
        ) from None


#: Per-CPU access sizes quoted in section 5.2: "accesses on the large files
#: ranged from 32 KB to 512 KB", except bvi's SSD-backed 16 KB accesses.
LARGE_FILE_ACCESS_RANGE_BYTES = (32 * KB, 512 * KB)
