"""Synthetic models of the seven traced supercomputer applications.

The paper traced real codes on the NASA Ames Cray Y-MP; we cannot.  The
substitution (DESIGN.md section 2) is a parameterized model per
application, each programmed against the simulated runtime API and
calibrated to the reconstructed Tables 1-2 plus the narrative structure
(cycles, file counts, access sizes, sync/async, SSD vs disk).

Entry points:

>>> from repro.workloads import generate_workload
>>> w = generate_workload("venus", scale=0.1)
>>> w.trace.total_bytes  # doctest: +SKIP
"""

from repro.workloads.base import (
    ApplicationModel,
    GeneratedWorkload,
    available_models,
    generate_workload,
    model_for,
    register_model,
)
from repro.workloads.calibrate import CalibrationResult, check, measure
from repro.workloads.catalog import (
    APP_NAMES,
    PAPER_APPS,
    PaperAppRow,
    paper_row,
)

__all__ = [
    "ApplicationModel",
    "GeneratedWorkload",
    "available_models",
    "generate_workload",
    "model_for",
    "register_model",
    "CalibrationResult",
    "check",
    "measure",
    "APP_NAMES",
    "PAPER_APPS",
    "PaperAppRow",
    "paper_row",
]
