"""Workload model framework.

Each traced application is reproduced as an :class:`ApplicationModel`
subclass that *programs against* the simulated runtime API
(:class:`~repro.runtime.api.AppRuntime`), exactly the way the original
codes programmed against the Cray I/O libraries.  Generating a trace runs
the model with a tracing hook attached; the result is a
:class:`GeneratedWorkload` holding the columnar trace plus the metadata
Table 1 reports (the size of every file the program touched).

Models are calibrated to the catalog rows; ``scale`` shrinks the number
of iterations (for tests and quick runs) while preserving the per-second
rates, access sizes and cyclic structure.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, ClassVar

import numpy as np

from repro.runtime.api import AppRuntime
from repro.runtime.files import FileSystem
from repro.runtime.latency import DISK_PROFILE, SSD_PROFILE, DeviceLatencyModel
from repro.runtime.tracer import LibraryTracer
from repro.trace.array import TraceArray
from repro.trace.procstat import ProcstatCollector
from repro.trace.record import CommentRecord
from repro.trace.reconstruct import events_to_records
from repro.util.errors import CalibrationError
from repro.util.rng import DEFAULT_SEED, derive_rng
from repro.util.units import seconds_to_ticks
from repro.workloads.catalog import PaperAppRow, paper_row


@dataclass
class GeneratedWorkload:
    """A generated trace plus the context Table 1 needs."""

    name: str
    trace: TraceArray
    data_size_bytes: int  #: sum of sizes of all files accessed
    comments: list[CommentRecord]
    cpu_seconds: float
    wall_seconds: float
    scale: float
    paper: PaperAppRow

    @property
    def n_ios(self) -> int:
        return len(self.trace)

    @property
    def total_io_bytes(self) -> int:
        return self.trace.total_bytes


class ApplicationModel(ABC):
    """Base class for the seven traced-application models.

    Subclasses set ``name`` (a catalog key) and implement :meth:`run`,
    which drives an :class:`AppRuntime` through the application's I/O
    life cycle.  The base class provides the calibrated cycle-budget
    arithmetic all iterative models share.
    """

    name: ClassVar[str]

    def __init__(self, *, scale: float = 1.0, seed: int = DEFAULT_SEED):
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        self.scale = scale
        self.seed = seed
        self.paper = paper_row(self.name)

    # -- to implement ----------------------------------------------------
    @abstractmethod
    def run(self, rt: AppRuntime) -> None:
        """Execute the application's I/O behaviour against the runtime."""

    # -- configuration ------------------------------------------------------
    @property
    def latency_profile(self) -> DeviceLatencyModel:
        """Device the app's synchronous I/O notionally hits while traced."""
        return SSD_PROFILE if self.paper.uses_ssd else DISK_PROFILE

    def rng(self, label: str = "") -> np.random.Generator:
        return derive_rng(self.seed, f"{self.name}/{label}")

    # -- generation ----------------------------------------------------------
    def generate(
        self,
        *,
        process_id: int = 1,
        start_wall: int = 0,
        collector: ProcstatCollector | None = None,
    ) -> GeneratedWorkload:
        """Run the model under tracing and return the generated workload.

        If a ``collector`` is given, events flow through the procstat
        batching path and the returned trace is empty (reconstruct it from
        the collector's packets); otherwise events are gathered in memory.
        """
        fs = FileSystem()
        tracer = LibraryTracer(collector)
        rt = AppRuntime(
            process_id,
            fs,
            tracer=tracer,
            latency=self.latency_profile,
        )
        self.run(rt)
        rt.wait_all()
        tracer.close()
        if collector is None:
            trace = TraceArray.from_records(events_to_records(tracer.events))
        else:
            trace = TraceArray.empty()
        return GeneratedWorkload(
            name=self.name,
            trace=trace,
            data_size_bytes=fs.total_bytes,
            comments=list(tracer.comments),
            cpu_seconds=rt.clock.cpu_seconds,
            wall_seconds=rt.clock.wall_seconds,
            scale=self.scale,
            paper=self.paper,
        )

    # -- shared cycle arithmetic ---------------------------------------------
    def scaled_cycles(self, full_cycles: int, minimum: int = 2) -> int:
        """Number of cycles to run at this scale (at least ``minimum``)."""
        return max(minimum, int(round(full_cycles * self.scale)))

    def per_io_overhead_ticks(self, rt: AppRuntime, io_bytes: int) -> int:
        """CPU ticks one traced I/O call itself burns on this runtime.

        Synchronous calls always pay the syscall path; on a
        non-suspending device (SSD) the transfer is charged as CPU too.
        """
        overhead = rt.syscall_cpu_ticks
        if not rt.latency.suspends:
            overhead += rt.latency.service_ticks(io_bytes)
        return overhead

    def compute_gap_ticks(
        self,
        rt: AppRuntime,
        *,
        phase_cpu_ticks: int,
        n_ios: int,
        io_bytes: int,
    ) -> int:
        """CPU slice to insert between I/Os so a phase hits its CPU budget.

        The phase's budget covers both the application compute between
        I/Os and the per-call CPU overhead of the I/Os themselves.
        """
        if n_ios <= 0:
            return 0
        overhead = self.per_io_overhead_ticks(rt, io_bytes) * n_ios
        return max(0, (phase_cpu_ticks - overhead) // n_ios)


# Registry ------------------------------------------------------------------

_REGISTRY: dict[str, Callable[..., ApplicationModel]] = {}


def register_model(cls):
    """Class decorator adding a model to the by-name registry."""
    _REGISTRY[cls.name] = cls
    return cls


def model_for(name: str, **kwargs) -> ApplicationModel:
    """Instantiate a registered application model by catalog name."""
    # Import the app modules lazily so the registry is populated even when
    # callers import only this module.
    from repro.workloads import apps  # noqa: F401

    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no model registered for {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def available_models() -> tuple[str, ...]:
    from repro.workloads import apps  # noqa: F401

    return tuple(sorted(_REGISTRY))


def generate_workload(
    name: str, *, scale: float = 1.0, seed: int = DEFAULT_SEED, process_id: int = 1
) -> GeneratedWorkload:
    """One-shot: build the named model and generate its trace."""
    return model_for(name, scale=scale, seed=seed).generate(process_id=process_id)


def ticks_for_seconds(seconds: float) -> int:
    """Convenience re-export used heavily by the app models."""
    return seconds_to_ticks(seconds)
