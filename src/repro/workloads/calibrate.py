"""Calibration checks: generated traces versus the catalog targets.

The models are hand-calibrated to the reconstructed Tables 1 and 2; this
module measures how close a generated trace actually lands and raises
:class:`CalibrationError` when a model drifts out of tolerance.  Totals
are compared **per CPU second** so that scaled-down generations (fewer
cycles) calibrate against the same targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import CalibrationError
from repro.util.units import MB
from repro.workloads.base import GeneratedWorkload


@dataclass(frozen=True)
class CalibrationResult:
    """Measured-vs-target rates for one generated workload."""

    name: str
    cpu_seconds: float
    mb_per_sec: float
    ios_per_sec: float
    read_mb_per_sec: float
    write_mb_per_sec: float
    avg_io_kb: float
    rw_data_ratio: float

    target_mb_per_sec: float
    target_ios_per_sec: float
    target_rw_ratio: float

    def deviations(self) -> dict[str, float]:
        """Relative deviation of each calibrated quantity (0 is perfect)."""

        def rel(measured: float, target: float) -> float:
            if target == 0:
                return 0.0 if measured == 0 else float("inf")
            return abs(measured - target) / target

        return {
            "mb_per_sec": rel(self.mb_per_sec, self.target_mb_per_sec),
            "ios_per_sec": rel(self.ios_per_sec, self.target_ios_per_sec),
            "rw_data_ratio": rel(self.rw_data_ratio, self.target_rw_ratio),
        }

    def max_deviation(self) -> float:
        return max(self.deviations().values())


def measure(workload: GeneratedWorkload) -> CalibrationResult:
    """Compute a workload's achieved rates against its catalog row."""
    trace = workload.trace
    cpu = workload.cpu_seconds
    if cpu <= 0:
        raise CalibrationError(f"{workload.name}: zero CPU time")
    read_bytes = trace.read_bytes
    write_bytes = trace.write_bytes
    n = len(trace)
    return CalibrationResult(
        name=workload.name,
        cpu_seconds=cpu,
        mb_per_sec=(read_bytes + write_bytes) / MB / cpu,
        ios_per_sec=n / cpu,
        read_mb_per_sec=read_bytes / MB / cpu,
        write_mb_per_sec=write_bytes / MB / cpu,
        avg_io_kb=(read_bytes + write_bytes) / 1024 / n if n else 0.0,
        rw_data_ratio=read_bytes / write_bytes if write_bytes else float("inf"),
        target_mb_per_sec=workload.paper.mb_per_sec,
        target_ios_per_sec=workload.paper.ios_per_sec,
        target_rw_ratio=workload.paper.rw_data_ratio,
    )


def check(workload: GeneratedWorkload, *, tolerance: float = 0.25) -> CalibrationResult:
    """Measure and raise :class:`CalibrationError` beyond ``tolerance``.

    The default 25% band is loose on purpose: the reproduction promises
    *shape*, and scaled runs shift edge effects (startup/final phases
    amortize over fewer cycles).
    """
    result = measure(workload)
    bad = {
        key: dev for key, dev in result.deviations().items() if dev > tolerance
    }
    if bad:
        detail = ", ".join(f"{k} off by {v:.0%}" for k, v in sorted(bad.items()))
        raise CalibrationError(f"{workload.name}: {detail}")
    return result
