"""Access-pattern building blocks shared by the application models.

The traced programs were "highly sequential and very regular": each kept a
typical request size and swept its data files in the same order every
cycle.  :class:`FileCursor` provides wrap-around sequential chunk access
over one file; :class:`InterleavedSweep` round-robins cursors across
several files (venus's six-file interleaving, which is what forced the
disk seeks its simulation section discusses).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.api import AppRuntime, AsyncRequest


@dataclass
class FileCursor:
    """Wrap-around sequential chunk access over one open file.

    Reads wrap before running past end-of-file, so a sweep can cover the
    file any non-integral number of times; writes wrap at the file's
    *initial* size so in-place update passes do not grow the file.
    """

    rt: AppRuntime
    fd: int
    chunk: int

    def __post_init__(self) -> None:
        if self.chunk <= 0:
            raise ValueError("chunk must be positive")
        self._wrap = max(self.rt.file_size(self.fd), self.chunk)

    def _position_for(self, nbytes: int) -> None:
        pos = self.rt.tell(self.fd)
        if pos + nbytes > self._wrap:
            self.rt.seek(self.fd, 0)

    def read(self, nbytes: int | None = None) -> None:
        n = self.chunk if nbytes is None else nbytes
        self._position_for(n)
        self.rt.read(self.fd, n)

    def write(self, nbytes: int | None = None) -> None:
        n = self.chunk if nbytes is None else nbytes
        self._position_for(n)
        self.rt.write(self.fd, n)

    def read_async(self, nbytes: int | None = None) -> AsyncRequest:
        n = self.chunk if nbytes is None else nbytes
        self._position_for(n)
        return self.rt.reada(self.fd, n)

    def write_async(self, nbytes: int | None = None) -> AsyncRequest:
        n = self.chunk if nbytes is None else nbytes
        self._position_for(n)
        return self.rt.writea(self.fd, n)

    def skip(self, nbytes: int | None = None) -> None:
        """Advance past a chunk without touching it (forma's empty blocks)."""
        n = self.chunk if nbytes is None else nbytes
        self._position_for(n)
        self.rt.seek(self.fd, self.rt.tell(self.fd) + n)


class InterleavedSweep:
    """Round-robin chunk I/O across several file cursors.

    One *step* issues one chunk on the next cursor in rotation.  A full
    rotation touches every file once -- the access pattern that interleaved
    venus's six data files.
    """

    def __init__(self, cursors: list[FileCursor]):
        if not cursors:
            raise ValueError("need at least one cursor")
        self.cursors = cursors
        self._next = 0

    def _advance(self) -> FileCursor:
        cursor = self.cursors[self._next]
        self._next = (self._next + 1) % len(self.cursors)
        return cursor

    def read_step(self) -> None:
        self._advance().read()

    def write_step(self) -> None:
        self._advance().write()

    def read_step_async(self) -> AsyncRequest:
        return self._advance().read_async()

    def write_step_async(self) -> AsyncRequest:
        return self._advance().write_async()

    def skip_step(self) -> None:
        self._advance().skip()


def jittered_ticks(
    base_ticks: int, rng: np.random.Generator, relative_sigma: float = 0.08
) -> int:
    """A compute-slice duration with mild lognormal-ish jitter.

    Real inter-I/O compute times are regular but not identical; the jitter
    keeps generated traces from being artificially metronomic while
    preserving the mean (the multiplicative noise is mean-compensated).
    """
    if base_ticks <= 0:
        return 0
    if relative_sigma <= 0:
        return base_ticks
    factor = rng.normal(1.0, relative_sigma)
    factor = max(0.5, min(1.5, factor))
    return max(0, int(round(base_ticks * factor)))


def jittered_array(
    base_ticks: int,
    n: int,
    rng: np.random.Generator,
    relative_sigma: float = 0.08,
) -> np.ndarray:
    """``n`` jittered compute slices at once (vectorized hot path).

    Same distribution as :func:`jittered_ticks`; drawing per-I/O from the
    generator dominates trace-generation time for the million-I/O models,
    so the staged models pre-draw a whole pass's slices.
    """
    if n <= 0:
        return np.zeros(0, dtype=np.int64)
    if base_ticks <= 0:
        return np.zeros(n, dtype=np.int64)
    if relative_sigma <= 0:
        return np.full(n, base_ticks, dtype=np.int64)
    factors = np.clip(rng.normal(1.0, relative_sigma, size=n), 0.5, 1.5)
    return np.maximum(0, np.rint(base_ticks * factors)).astype(np.int64)


def split_evenly(total: int, parts: int) -> list[int]:
    """Split an integer into ``parts`` near-equal nonnegative pieces."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]
