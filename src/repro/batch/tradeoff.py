"""The venus designer's tradeoff, quantified.

"To get into a shorter job queue, the program's implementor decided to
use a very small in-memory array.  Thus, the program accessed the file
system frequently to stage the required data to and from memory."

The experiment submits the *same computation* two ways into a loaded
batch system:

* **big-memory variant** -- holds the whole array: large queue, full CPU
  duty (no staging);
* **small-memory variant** -- venus-style: small queue, CPU demand
  slightly inflated by staging overhead and duty below one (it waits on
  the disk some of the time).

Against a background population keeping the large queue busy, the small
variant starts much sooner and wins on turnaround despite running
longer once resident -- the paper's claimed incentive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch.queues import BatchSimulator, Job, JobOutcome
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class TradeoffResult:
    big: JobOutcome
    small: JobOutcome

    @property
    def small_wins(self) -> bool:
        return self.small.turnaround < self.big.turnaround

    @property
    def speedup(self) -> float:
        return self.big.turnaround / self.small.turnaround

    def __str__(self) -> str:  # pragma: no cover - presentation
        return (
            f"big-memory:   queue {self.big.queue}, wait "
            f"{self.big.queue_wait:.0f} s, residency {self.big.residency:.0f} s, "
            f"turnaround {self.big.turnaround:.0f} s\n"
            f"small-memory: queue {self.small.queue}, wait "
            f"{self.small.queue_wait:.0f} s, residency {self.small.residency:.0f} s, "
            f"turnaround {self.small.turnaround:.0f} s\n"
            f"small-memory variant {'wins' if self.small_wins else 'loses'} "
            f"(x{self.speedup:.2f})"
        )


def venus_design_tradeoff(
    *,
    cpu_seconds: float = 379.0,
    big_memory_mw: float = 48.0,
    small_memory_mw: float = 3.0,
    staging_overhead: float = 0.10,
    staging_duty: float = 0.75,
    background_large_jobs: int = 6,
    background_job_seconds: float = 1800.0,
    seed: int = 0,
) -> TradeoffResult:
    """Submit both variants into a machine kept busy with large jobs.

    The background jobs arrive first and saturate the large queue's
    memory slab; both probe variants arrive together afterwards.
    """
    rng = derive_rng(seed, "batch-tradeoff")
    sim = BatchSimulator()
    jobs: list[Job] = []
    for i in range(background_large_jobs):
        jobs.append(
            Job(
                name=f"bg{i}",
                memory_mw=float(rng.uniform(30.0, 60.0)),
                cpu_seconds=float(
                    background_job_seconds * rng.uniform(0.7, 1.3)
                ),
                arrival=float(i * 10.0),
            )
        )
    probe_arrival = background_large_jobs * 10.0 + 60.0
    jobs.append(
        Job(
            name="probe-big",
            memory_mw=big_memory_mw,
            cpu_seconds=cpu_seconds,
            arrival=probe_arrival,
        )
    )
    jobs.append(
        Job(
            name="probe-small",
            memory_mw=small_memory_mw,
            cpu_seconds=cpu_seconds * (1.0 + staging_overhead),
            arrival=probe_arrival,
            duty=staging_duty,
        )
    )
    outcomes = sim.run(jobs)
    return TradeoffResult(
        big=outcomes["probe-big"], small=outcomes["probe-small"]
    )
