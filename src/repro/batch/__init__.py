"""Batch job scheduling by memory queues (section 2.2).

"Batch jobs ... are queued according to two resource requirements -- CPU
time and memory space.  As the Cray Y-MP does not have virtual memory,
all of a program's memory must be contiguously allocated when the
program starts up ... To simplify memory allocation, each queue is given
a fixed memory space ... for a given amount of CPU time required by an
application, turnaround time is shortest for the application which
requires the least main memory.  Programmers take advantage of this by
structuring their program to use smaller in-memory data structures while
staging data to/from SSD or disk."

This package simulates that queueing discipline, so the venus designer's
tradeoff -- shrink memory, inflate I/O, win on turnaround -- can be
measured rather than asserted.
"""

from repro.batch.queues import (
    BatchSimulator,
    Job,
    JobOutcome,
    QueueConfig,
    default_queues,
)
from repro.batch.tradeoff import TradeoffResult, venus_design_tradeoff

__all__ = [
    "BatchSimulator",
    "Job",
    "JobOutcome",
    "QueueConfig",
    "default_queues",
    "TradeoffResult",
    "venus_design_tradeoff",
]
