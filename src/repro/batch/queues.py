"""The UNICOS-style batch system: memory-sized queues over shared CPUs.

Model (section 2.2):

* each queue admits jobs up to its memory limit and owns a fixed slab of
  machine memory; a job waits in its queue until the slab has room for
  its (contiguous, non-pageable) allocation;
* resident jobs are ready to "run on any of the eight processors that is
  available"; CPU service is modelled as processor sharing: with k
  resident jobs and n CPUs, each job progresses at rate min(1, n/k)
  scaled by its duty factor (the fraction of wall time it can use a CPU,
  < 1 for I/O-bound jobs);
* a job departs when its CPU demand is done, freeing queue memory for
  the next waiter.

Turnaround = queue wait + residency.  The paper's observation falls out:
small-memory jobs wait in shorter queues and start sooner.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.util.errors import SimulationError


@dataclass(frozen=True)
class QueueConfig:
    """One batch queue: its admission limit and its memory slab."""

    name: str
    memory_limit_mw: float  #: largest job it admits
    space_mw: float  #: total resident memory it may hold

    def __post_init__(self) -> None:
        if self.memory_limit_mw <= 0 or self.space_mw <= 0:
            raise ValueError("queue limits must be positive")
        if self.space_mw < self.memory_limit_mw:
            raise ValueError(
                f"queue {self.name}: space {self.space_mw} MW cannot hold "
                f"even one limit-sized job ({self.memory_limit_mw} MW)"
            )


def default_queues() -> list[QueueConfig]:
    """A NASA-flavoured split of 128 MW of Y-MP memory into queues."""
    return [
        QueueConfig("small", memory_limit_mw=4.0, space_mw=16.0),
        QueueConfig("medium", memory_limit_mw=16.0, space_mw=48.0),
        QueueConfig("large", memory_limit_mw=64.0, space_mw=64.0),
    ]


@dataclass(frozen=True)
class Job:
    """A batch submission."""

    name: str
    memory_mw: float
    cpu_seconds: float
    arrival: float = 0.0
    #: fraction of wall time the job can use a CPU once resident
    #: (1.0 = pure compute; venus-like staging jobs sit lower)
    duty: float = 1.0

    def __post_init__(self) -> None:
        if self.memory_mw <= 0 or self.cpu_seconds <= 0:
            raise ValueError("job resources must be positive")
        if not 0 < self.duty <= 1:
            raise ValueError("duty must be in (0, 1]")


@dataclass
class JobOutcome:
    """What happened to one job."""

    job: Job
    queue: str
    start_resident: float
    finish: float

    @property
    def queue_wait(self) -> float:
        return self.start_resident - self.job.arrival

    @property
    def residency(self) -> float:
        return self.finish - self.start_resident

    @property
    def turnaround(self) -> float:
        return self.finish - self.job.arrival


@dataclass
class _Resident:
    job: Job
    queue: QueueConfig
    start: float
    remaining_cpu: float


class BatchSimulator:
    """Processor-sharing batch simulation over memory queues."""

    def __init__(
        self, queues: list[QueueConfig] | None = None, *, n_cpus: int = 8
    ):
        if n_cpus < 1:
            raise SimulationError("need at least one CPU")
        self.queues = sorted(
            queues if queues is not None else default_queues(),
            key=lambda q: q.memory_limit_mw,
        )
        if not self.queues:
            raise SimulationError("need at least one queue")
        self.n_cpus = n_cpus

    def queue_for(self, job: Job) -> QueueConfig:
        """The smallest queue whose limit admits the job."""
        for queue in self.queues:
            if job.memory_mw <= queue.memory_limit_mw:
                return queue
        raise SimulationError(
            f"job {job.name}: {job.memory_mw} MW exceeds every queue limit"
        )

    def run(self, jobs: list[Job]) -> dict[str, JobOutcome]:
        """Simulate to completion; returns outcomes keyed by job name."""
        if len({j.name for j in jobs}) != len(jobs):
            raise SimulationError("job names must be unique")
        arrivals = sorted(jobs, key=lambda j: (j.arrival, j.name))
        waiting: dict[str, list[Job]] = {q.name: [] for q in self.queues}
        used: dict[str, float] = {q.name: 0.0 for q in self.queues}
        resident: list[_Resident] = []
        outcomes: dict[str, JobOutcome] = {}
        arrival_iter = iter(arrivals)
        next_arrival = next(arrival_iter, None)
        now = 0.0
        guard = itertools.count()

        def progress_rate(r: _Resident, k: int) -> float:
            share = min(1.0, self.n_cpus / k) if k else 0.0
            return share * r.job.duty

        def admit() -> None:
            for queue in self.queues:
                q = waiting[queue.name]
                while q and used[queue.name] + q[0].memory_mw <= queue.space_mw:
                    job = q.pop(0)
                    used[queue.name] += job.memory_mw
                    resident.append(
                        _Resident(job, queue, now, job.cpu_seconds)
                    )

        while True:
            if next(guard) > 10_000_000:
                raise SimulationError("batch simulation did not converge")
            # Admit anything that now fits.
            admit()
            k = len(resident)
            # Next completion under current rates.
            next_completion = None
            completing = None
            for r in resident:
                rate = progress_rate(r, k)
                if rate <= 0:
                    continue
                t = now + r.remaining_cpu / rate
                if next_completion is None or t < next_completion:
                    next_completion = t
                    completing = r
            # Next event: arrival or completion.
            if next_arrival is not None and (
                next_completion is None or next_arrival.arrival <= next_completion
            ):
                # Advance work to the arrival instant.
                dt = next_arrival.arrival - now
                for r in resident:
                    r.remaining_cpu -= dt * progress_rate(r, k)
                now = next_arrival.arrival
                waiting[self.queue_for(next_arrival).name].append(next_arrival)
                next_arrival = next(arrival_iter, None)
                continue
            if next_completion is None:
                if any(waiting[q.name] for q in self.queues):
                    raise SimulationError(
                        "jobs waiting but nothing resident can finish"
                    )
                break
            dt = next_completion - now
            for r in resident:
                r.remaining_cpu -= dt * progress_rate(r, k)
            now = next_completion
            assert completing is not None
            resident.remove(completing)
            used[completing.queue.name] -= completing.job.memory_mw
            outcomes[completing.job.name] = JobOutcome(
                job=completing.job,
                queue=completing.queue.name,
                start_resident=completing.start,
                finish=now,
            )
        return outcomes
