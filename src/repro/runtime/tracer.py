"""The library-level tracing hook.

On the Cray, tracing lived in the user I/O libraries: "Instead of
modifying the operating system, we changed the user libraries dealing
with I/O."  Here the hook is a :class:`LibraryTracer` object the
:class:`~repro.runtime.api.AppRuntime` calls on every read/write.  It

* allocates trace-unique file ids (one per *open*, per the format's rule
  that "if the same file was opened twice by a program, it received two
  different identifiers"),
* allocates trace-unique operation ids (one per read/write call),
* remembers the file-id -> file-name correspondence as comment text
  (the paper recorded these in ``TRACE_COMMENT`` records), and
* delivers each :class:`~repro.trace.packets.IOEvent` either to an
  in-memory list or to a :class:`~repro.trace.procstat.ProcstatCollector`.
"""

from __future__ import annotations

from repro.trace.packets import IOEvent
from repro.trace.procstat import ProcstatCollector
from repro.trace.record import CommentRecord, file_name_comment


class LibraryTracer:
    """Collects I/O events from one or more :class:`AppRuntime` processes.

    Share a single tracer between runtimes when tracing a multi-process
    workload: file ids and operation ids are then unique across the whole
    trace, which the format prefers.
    """

    def __init__(self, collector: ProcstatCollector | None = None):
        self._collector = collector
        self.events: list[IOEvent] = []
        self.comments: list[CommentRecord] = []
        self._next_file_id = 1
        self._next_operation_id = 1
        self.overhead_events = 0

    def register_open(self, name: str, process_id: int) -> int:
        """Allocate a fresh file id for an open and log the name mapping."""
        file_id = self._next_file_id
        self._next_file_id += 1
        self.comments.append(file_name_comment(file_id, name))
        return file_id

    def next_operation_id(self) -> int:
        op = self._next_operation_id
        self._next_operation_id += 1
        return op

    def record(self, event: IOEvent) -> None:
        """Deliver one event (called from the instrumented library)."""
        if self._collector is not None:
            self._collector.submit(event)
        else:
            self.events.append(event)

    def close(self) -> None:
        if self._collector is not None:
            self._collector.close()

    def __enter__(self) -> "LibraryTracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
