"""Simulated file namespace.

Only metadata is simulated: each file has a name and a byte size.  No
data contents are stored -- the traces record offsets and lengths, never
payloads.  Sizes matter because Table 1's "total data size" column is the
sum of the sizes of all files each program accessed, and because reads
past end-of-file are application bugs we want to catch in the workload
models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import RuntimeAPIError


@dataclass
class SimulatedFile:
    """One file: a name and a size that grows when written past the end."""

    name: str
    size: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("file size must be nonnegative")

    def extend_to(self, end_offset: int) -> None:
        if end_offset > self.size:
            self.size = end_offset


@dataclass
class FileSystem:
    """A flat namespace of simulated files shared by processes."""

    files: dict[str, SimulatedFile] = field(default_factory=dict)

    def create(self, name: str, size: int = 0) -> SimulatedFile:
        """Create a file (error if it exists)."""
        if name in self.files:
            raise RuntimeAPIError(f"file {name!r} already exists")
        f = SimulatedFile(name, size)
        self.files[name] = f
        return f

    def lookup(self, name: str) -> SimulatedFile:
        try:
            return self.files[name]
        except KeyError:
            raise RuntimeAPIError(f"no such file: {name!r}") from None

    def exists(self, name: str) -> bool:
        return name in self.files

    def open_or_create(self, name: str) -> SimulatedFile:
        if name in self.files:
            return self.files[name]
        return self.create(name)

    def unlink(self, name: str) -> None:
        if name not in self.files:
            raise RuntimeAPIError(f"no such file: {name!r}")
        del self.files[name]

    @property
    def total_bytes(self) -> int:
        """Sum of all file sizes (Table 1's "total data size")."""
        return sum(f.size for f in self.files.values())

    def __len__(self) -> int:
        return len(self.files)
