"""Nominal device latency models for trace *generation*.

While a traced application runs, its synchronous I/O calls stall for
however long the real I/O system takes.  When generating synthetic traces
we need a nominal stall model so the recorded ``completionTime`` values
and wall-clock gaps are plausible.  These models are intentionally simple
and are **not** the buffering simulator's device models
(:mod:`repro.sim.devices`) -- the simulator recomputes service times from
the trace's offsets and sizes under its own configuration.

Two profiles match the paper's hardware:

* ``DISK_PROFILE`` -- a Cray DD-49-class disk: milliseconds of seek and
  rotation plus 9.6 MB/s transfer.
* ``SSD_PROFILE`` -- the Y-MP SSD: "approximately 1 us per kilobyte
  transferred (at 1 GB/sec), with some additional overhead to set up the
  transfer"; I/Os complete "without suspending the process".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import KB, MB, seconds_to_ticks


@dataclass(frozen=True)
class DeviceLatencyModel:
    """Fixed overhead plus linear transfer time.

    ``overhead_ticks`` covers the operating-system and device setup cost;
    ``bandwidth_bytes_per_sec`` is the streaming rate.  ``suspends`` says
    whether a synchronous request puts the process to sleep (disk) or
    completes in-line (SSD).
    """

    name: str
    overhead_ticks: int
    bandwidth_bytes_per_sec: float
    suspends: bool = True

    def service_ticks(self, nbytes: int) -> int:
        """Ticks from request issue until completion for ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be nonnegative")
        transfer = seconds_to_ticks(nbytes / self.bandwidth_bytes_per_sec)
        return self.overhead_ticks + transfer


#: A Cray Y-MP disk: ~15 ms average positioning ("might take as long as
#: 15 ms (the Cray Y-MP disks seek relatively slowly)") at 9.6 MB/s.
DISK_PROFILE = DeviceLatencyModel(
    name="disk",
    overhead_ticks=seconds_to_ticks(15e-3),
    bandwidth_bytes_per_sec=9.6 * MB,
    suspends=True,
)

#: The Y-MP SSD: zero seek, 1 GB/s, small setup cost, non-suspending.
SSD_PROFILE = DeviceLatencyModel(
    name="ssd",
    overhead_ticks=5,  # 50 us of setup + system-call path
    bandwidth_bytes_per_sec=1024 * MB,
    suspends=False,
)

#: 1 us per KB transferred -- the SSD per-block penalty quoted in 6.3,
#: provided for analysis code that wants the raw constant.
SSD_US_PER_KB: float = 1.0


def ssd_transfer_ticks(nbytes: int) -> int:
    """SSD transfer ticks by the paper's 1 us/KB rule (rounded up)."""
    if nbytes < 0:
        raise ValueError("nbytes must be nonnegative")
    us = SSD_US_PER_KB * nbytes / KB
    return int(-(-us // 10))  # ceil(us / 10) in ticks
