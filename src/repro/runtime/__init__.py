"""Simulated application runtime: the substrate the workload models run on.

The paper could not modify UNICOS; it instrumented the user-level I/O
libraries instead.  This package reproduces that stack in simulation:

* :mod:`repro.runtime.clock` -- per-process wall/CPU clock pair in 10 us
  ticks (the Cray's real-time register downconverted, and the process CPU
  timer).
* :mod:`repro.runtime.files` -- a simulated file namespace with sizes.
* :mod:`repro.runtime.latency` -- nominal device latency models used to
  charge synchronous I/O wait while *generating* traces (the buffering
  simulator later recomputes I/O times under its own device models).
* :mod:`repro.runtime.api` -- the application-facing file API
  (open/seek/read/write/close plus asynchronous reada/writea, mirroring
  the Cray's async I/O the `les` code used).
* :mod:`repro.runtime.tracer` -- the "library hook": observes every
  read/write call, stamps it with both clocks, and submits it to a
  :class:`~repro.trace.procstat.ProcstatCollector`.
"""

from repro.runtime.clock import ProcessClock
from repro.runtime.files import FileSystem, SimulatedFile
from repro.runtime.latency import DeviceLatencyModel, DISK_PROFILE, SSD_PROFILE
from repro.runtime.api import AppRuntime, AsyncRequest
from repro.runtime.tracer import LibraryTracer

__all__ = [
    "ProcessClock",
    "FileSystem",
    "SimulatedFile",
    "DeviceLatencyModel",
    "DISK_PROFILE",
    "SSD_PROFILE",
    "AppRuntime",
    "AsyncRequest",
    "LibraryTracer",
]
