"""Per-process clocks in 10 us trace ticks.

A traced application sees two clocks (section 4.1): total elapsed wall
time (the CPU's cycle counter) and process CPU time.  Computation
advances both; waiting for synchronous I/O advances only the wall clock.
This is what lets the paper "filter the effects of multiprogramming".
"""

from __future__ import annotations

from repro.util.units import seconds_to_ticks, ticks_to_seconds


class ProcessClock:
    """Wall-clock and CPU-clock pair for one simulated process."""

    def __init__(self, start_wall: int = 0):
        if start_wall < 0:
            raise ValueError("start_wall must be nonnegative")
        self.wall = start_wall
        self.cpu = 0

    def compute(self, ticks: int) -> None:
        """Burn CPU: advances both clocks by ``ticks``."""
        if ticks < 0:
            raise ValueError("cannot compute for negative ticks")
        self.wall += ticks
        self.cpu += ticks

    def compute_seconds(self, seconds: float) -> None:
        self.compute(seconds_to_ticks(seconds))

    def stall(self, ticks: int) -> None:
        """Wait (e.g. for synchronous I/O): advances only the wall clock."""
        if ticks < 0:
            raise ValueError("cannot stall for negative ticks")
        self.wall += ticks

    @property
    def wall_seconds(self) -> float:
        return ticks_to_seconds(self.wall)

    @property
    def cpu_seconds(self) -> float:
        return ticks_to_seconds(self.cpu)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessClock(wall={self.wall}, cpu={self.cpu})"
