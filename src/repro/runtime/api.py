"""The application-facing file API of the simulated runtime.

This is the layer the workload models program against.  It mirrors the
Cray library interface the paper instrumented: synchronous ``read`` and
``write`` with an explicit ``seek``, plus asynchronous ``reada`` /
``writea`` returning requests the application later waits on (the `les`
code "was the only program that used asynchronous reads and writes
explicitly").

Timing semantics while *generating* a trace:

* every I/O call burns ``syscall_cpu_ticks`` of CPU (library + kernel
  path);
* a synchronous call on a *suspending* device (disk) stalls the wall
  clock for the device's service time -- the process sleeps;
* a synchronous call on a *non-suspending* device (SSD) charges the
  transfer as CPU time instead: "I/Os to and from the SSD are done
  without suspending the process ... the file system overhead may have
  slowed the program down by using more operating system time";
* an asynchronous call returns immediately after the issue cost; waiting
  stalls only until the device completion time, if it has not already
  passed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.clock import ProcessClock
from repro.runtime.files import FileSystem, SimulatedFile
from repro.runtime.latency import DISK_PROFILE, DeviceLatencyModel
from repro.runtime.tracer import LibraryTracer
from repro.trace import flags as F
from repro.trace.packets import IOEvent
from repro.util.errors import RuntimeAPIError


@dataclass
class _OpenFile:
    file: SimulatedFile
    file_id: int
    position: int = 0


@dataclass
class AsyncRequest:
    """Handle for an outstanding asynchronous I/O."""

    operation_id: int
    complete_at_wall: int
    nbytes: int
    is_write: bool
    done: bool = False


class AppRuntime:
    """One simulated application process with a traced file API."""

    def __init__(
        self,
        process_id: int,
        fs: FileSystem | None = None,
        *,
        tracer: LibraryTracer | None = None,
        latency: DeviceLatencyModel = DISK_PROFILE,
        syscall_cpu_ticks: int = 3,
        start_wall: int = 0,
    ):
        if syscall_cpu_ticks < 0:
            raise ValueError("syscall_cpu_ticks must be nonnegative")
        self.process_id = process_id
        self.fs = fs if fs is not None else FileSystem()
        self.tracer = tracer if tracer is not None else LibraryTracer()
        self.latency = latency
        self.syscall_cpu_ticks = syscall_cpu_ticks
        self.clock = ProcessClock(start_wall)
        self._fds: dict[int, _OpenFile] = {}
        self._next_fd = 3  # 0-2 notionally stdio
        self._pending: list[AsyncRequest] = []

    # -- computation -------------------------------------------------------
    def compute(self, seconds: float) -> None:
        """Burn CPU for ``seconds`` (the application's floating-point work)."""
        self.clock.compute_seconds(seconds)

    def compute_ticks(self, ticks: int) -> None:
        self.clock.compute(ticks)

    # -- file management ----------------------------------------------------
    def open(self, name: str, *, create: bool = False) -> int:
        """Open (optionally creating) a file; returns a descriptor.

        Each open gets a fresh trace file id, even for a re-opened name.
        """
        if create:
            f = self.fs.open_or_create(name)
        else:
            f = self.fs.lookup(name)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = _OpenFile(
            file=f,
            file_id=self.tracer.register_open(name, self.process_id),
        )
        self.clock.compute(self.syscall_cpu_ticks)
        return fd

    def close(self, fd: int) -> None:
        self._lookup(fd)
        del self._fds[fd]
        self.clock.compute(self.syscall_cpu_ticks)

    def unlink(self, name: str) -> None:
        """Delete a file by name (compiler-style temporaries).

        Open descriptors on the file keep working (UNIX semantics: the
        data lives until the last close; we only track metadata, so the
        descriptors simply stay valid).
        """
        self.fs.unlink(name)
        self.clock.compute(self.syscall_cpu_ticks)

    def seek(self, fd: int, offset: int) -> None:
        if offset < 0:
            raise RuntimeAPIError(f"negative seek offset {offset}")
        self._lookup(fd).position = offset

    def tell(self, fd: int) -> int:
        return self._lookup(fd).position

    def file_size(self, fd: int) -> int:
        return self._lookup(fd).file.size

    def _lookup(self, fd: int) -> _OpenFile:
        try:
            return self._fds[fd]
        except KeyError:
            raise RuntimeAPIError(f"bad file descriptor {fd}") from None

    # -- synchronous I/O ------------------------------------------------------
    def read(self, fd: int, nbytes: int) -> None:
        self._io(fd, nbytes, write=False, asynchronous=False)

    def write(self, fd: int, nbytes: int) -> None:
        self._io(fd, nbytes, write=True, asynchronous=False)

    # -- asynchronous I/O ------------------------------------------------------
    def reada(self, fd: int, nbytes: int) -> AsyncRequest:
        return self._io(fd, nbytes, write=False, asynchronous=True)

    def writea(self, fd: int, nbytes: int) -> AsyncRequest:
        return self._io(fd, nbytes, write=True, asynchronous=True)

    def wait(self, request: AsyncRequest) -> None:
        """Block until an asynchronous request has completed."""
        if request.done:
            return
        if request.complete_at_wall > self.clock.wall:
            self.clock.stall(request.complete_at_wall - self.clock.wall)
        request.done = True
        self._pending = [r for r in self._pending if not r.done]

    def wait_all(self) -> None:
        for request in list(self._pending):
            self.wait(request)

    @property
    def pending_requests(self) -> tuple[AsyncRequest, ...]:
        return tuple(self._pending)

    # -- core ----------------------------------------------------------------
    def _io(
        self, fd: int, nbytes: int, *, write: bool, asynchronous: bool
    ) -> AsyncRequest | None:
        if nbytes <= 0:
            raise RuntimeAPIError(f"I/O length must be positive, got {nbytes}")
        handle = self._lookup(fd)
        offset = handle.position
        if write:
            handle.file.extend_to(offset + nbytes)
        elif offset + nbytes > handle.file.size:
            raise RuntimeAPIError(
                f"read past EOF on {handle.file.name!r}: "
                f"[{offset}, {offset + nbytes}) > size {handle.file.size}"
            )

        start_wall = self.clock.wall
        start_cpu = self.clock.cpu
        self.clock.compute(self.syscall_cpu_ticks)
        service = self.latency.service_ticks(nbytes)
        duration = self.syscall_cpu_ticks + service

        request: AsyncRequest | None = None
        if asynchronous:
            request = AsyncRequest(
                operation_id=0,  # filled below
                complete_at_wall=start_wall + duration,
                nbytes=nbytes,
                is_write=write,
            )
            self._pending.append(request)
        elif self.latency.suspends:
            self.clock.stall(service)
        else:
            # SSD: the transfer is charged as (system) CPU time.
            self.clock.compute(service)

        op = self.tracer.next_operation_id()
        if request is not None:
            request.operation_id = op
        self.tracer.record(
            IOEvent(
                record_type=F.make_record_type(
                    write=write, logical=True, asynchronous=asynchronous
                ),
                file_id=handle.file_id,
                process_id=self.process_id,
                operation_id=op,
                offset=offset,
                length=nbytes,
                start_time=start_wall,
                duration=duration,
                process_clock=start_cpu,
            )
        )
        handle.position = offset + nbytes
        return request
