"""Small statistics helpers used by the trace analysis and the simulator."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np


class OnlineStats:
    """Streaming mean/variance/min/max (Welford's algorithm).

    Used for per-file and per-process I/O-size and latency statistics where
    materializing every sample would be wasteful for multi-million-I/O
    traces.
    """

    __slots__ = ("n", "_mean", "_m2", "_min", "_max", "_total")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._total = 0.0

    def add(self, x: float) -> None:
        """Fold one sample into the running statistics."""
        self.n += 1
        self._total += x
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    def merge(self, other: "OnlineStats") -> None:
        """Fold another accumulator into this one (parallel merge)."""
        if other.n == 0:
            return
        if self.n == 0:
            self.n = other.n
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            self._total = other._total
            return
        n = self.n + other.n
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.n * other.n / n
        self._mean = (self._mean * self.n + other._mean * other.n) / n
        self.n = n
        self._total += other._total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def total(self) -> float:
        return self._total

    @property
    def variance(self) -> float:
        """Population variance of the samples seen so far."""
        return self._m2 / self.n if self.n else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        return self._min if self.n else 0.0

    @property
    def max(self) -> float:
        return self._max if self.n else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OnlineStats(n={self.n}, mean={self.mean:.4g}, "
            f"stdev={self.stdev:.4g}, min={self.min:.4g}, max={self.max:.4g})"
        )


@dataclass
class Histogram:
    """Fixed-bin histogram over a half-open range ``[lo, hi)``.

    Out-of-range samples are counted in saturating edge bins so that totals
    are conserved (important for the access-size histograms, where a single
    huge compulsory read should not vanish).
    """

    lo: float
    hi: float
    n_bins: int
    counts: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.hi <= self.lo:
            raise ValueError("Histogram requires hi > lo")
        if self.n_bins < 1:
            raise ValueError("Histogram requires at least one bin")
        self.counts = np.zeros(self.n_bins, dtype=np.int64)

    def add(self, x: float, weight: int = 1) -> None:
        idx = int((x - self.lo) / (self.hi - self.lo) * self.n_bins)
        idx = min(max(idx, 0), self.n_bins - 1)
        self.counts[idx] += weight

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def bin_edges(self) -> np.ndarray:
        return np.linspace(self.lo, self.hi, self.n_bins + 1)

    def mode_bin(self) -> tuple[float, float]:
        """Return the ``(lo, hi)`` edges of the most populated bin."""
        edges = self.bin_edges()
        i = int(np.argmax(self.counts))
        return float(edges[i]), float(edges[i + 1])

    def fraction_in(self, lo: float, hi: float) -> float:
        """Fraction of samples whose *bin centers* fall inside [lo, hi)."""
        if self.total == 0:
            return 0.0
        edges = self.bin_edges()
        centers = (edges[:-1] + edges[1:]) / 2
        mask = (centers >= lo) & (centers < hi)
        return float(self.counts[mask].sum()) / self.total


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean; returns 0 for empty or zero-weight input."""
    values_arr = np.asarray(values, dtype=float)
    weights_arr = np.asarray(weights, dtype=float)
    wsum = weights_arr.sum()
    if values_arr.size == 0 or wsum == 0:
        return 0.0
    return float((values_arr * weights_arr).sum() / wsum)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of ``values``; 0 for empty input."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, q))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values; 0 for empty input."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return 0.0
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
