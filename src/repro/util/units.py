"""Units used throughout the reproduction.

The paper's trace format expresses all times in 10 microsecond ticks
(section 4.1: "this value was converted to 10 us units, as we believed this
was sufficient time resolution for I/O traces").  The Cray Y-MP is a
word-addressed machine with 8-byte words; memory and SSD sizes in the paper
are quoted in megawords (MW), e.g. the NASA system's 128 MW of main memory
and 256 MW SSD.
"""

from __future__ import annotations

#: Number of trace ticks per second.  One tick is 10 microseconds.
TICKS_PER_SECOND: int = 100_000

#: Duration of one trace tick in seconds.
TICK_SECONDS: float = 1.0 / TICKS_PER_SECOND

#: Binary kilobyte.  The paper uses KB = 1024 bytes for access sizes.
KB: int = 1024

#: Binary megabyte.
MB: int = 1024 * 1024

#: Binary gigabyte.
GB: int = 1024 * 1024 * 1024

#: Cray Y-MP word size in bytes ("each word is eight bytes long").
WORD_BYTES: int = 8

#: One megaword (2**20 words) in bytes.  128 MW = 1 GB of main memory.
MEGAWORD_BYTES: int = WORD_BYTES * 1024 * 1024

#: Block size the trace format's *_IN_BLOCKS compression flags use.
TRACE_BLOCK_SIZE: int = 512


def seconds_to_ticks(seconds: float) -> int:
    """Convert seconds to integer trace ticks (rounded to nearest tick)."""
    return int(round(seconds * TICKS_PER_SECOND))


def ticks_to_seconds(ticks: int) -> float:
    """Convert integer trace ticks to floating-point seconds."""
    return ticks * TICK_SECONDS


def bytes_to_mb(n_bytes: float) -> float:
    """Convert a byte count to (binary) megabytes."""
    return n_bytes / MB


def mb_to_bytes(n_mb: float) -> int:
    """Convert (binary) megabytes to an integer byte count."""
    return int(round(n_mb * MB))


def kb_to_bytes(n_kb: float) -> int:
    """Convert (binary) kilobytes to an integer byte count."""
    return int(round(n_kb * KB))


def bytes_to_kb(n_bytes: float) -> float:
    """Convert a byte count to (binary) kilobytes."""
    return n_bytes / KB


def megawords_to_bytes(n_mw: float) -> int:
    """Convert Cray megawords (1 MW = 8 MB) to bytes."""
    return int(round(n_mw * MEGAWORD_BYTES))


def bytes_to_megawords(n_bytes: float) -> float:
    """Convert bytes to Cray megawords."""
    return n_bytes / MEGAWORD_BYTES


def format_bytes(n_bytes: float) -> str:
    """Render a byte count with a human-friendly binary suffix."""
    value = float(n_bytes)
    for suffix in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or suffix == "TB":
            if suffix == "B":
                return f"{int(value)} {suffix}"
            return f"{value:.2f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Render a duration, switching units below one second."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} us"
