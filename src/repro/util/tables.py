"""Plain-text table rendering for analysis reports and benchmark output.

Every benchmark prints the same rows the paper's tables report; this module
renders them with aligned columns so paper-vs-measured comparisons are
readable in a terminal and in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def format_si(value: float, digits: int = 3) -> str:
    """Format a number compactly: SI-ish with a sensible precision.

    Integers print without a decimal point; large values get thousands
    separators; small values keep ``digits`` significant figures.
    """
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:.{digits}g}"
    return f"{value:.{digits}g}"


@dataclass
class TextTable:
    """A simple column-aligned text table.

    >>> t = TextTable(["app", "MB/s"])
    >>> t.add_row(["venus", 44.1])
    >>> print(t.render())  # doctest: +SKIP
    """

    headers: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)
    title: str | None = None

    def add_row(self, cells: Iterable[Any]) -> None:
        row = [c if isinstance(c, str) else format_si(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_row(list(self.headers)))
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt_row(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_table(
    headers: Sequence[str],
    rows: Iterable[Iterable[Any]],
    title: str | None = None,
) -> str:
    """One-shot helper: build and render a :class:`TextTable`."""
    table = TextTable(headers, title=title)
    for row in rows:
        table.add_row(row)
    return table.render()


def paper_vs_measured(
    label: str,
    paper: float,
    measured: float,
    unit: str = "",
) -> str:
    """Render one "paper vs measured" comparison line with the ratio."""
    ratio = measured / paper if paper else float("inf")
    unit_sfx = f" {unit}" if unit else ""
    return (
        f"{label}: paper={format_si(paper)}{unit_sfx} "
        f"measured={format_si(measured)}{unit_sfx} (x{ratio:.2f})"
    )
