"""ASCII plotting for rate-over-time figures.

matplotlib is not available in this environment, so the figure benchmarks
render their curves as terminal plots plus CSV dumps.  The plots are crude
but make the paper's qualitative claims (bursts, cycles, smoothing)
directly visible in benchmark output.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_SPARK_CHARS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a one-line density sparkline of ``values``.

    Values are resampled (by max within each horizontal cell, so bursts
    survive downsampling) and mapped onto a 10-level character ramp.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return ""
    if arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([arr[a:b].max() if b > a else 0.0 for a, b in zip(edges[:-1], edges[1:])])
    peak = arr.max()
    if peak <= 0:
        return _SPARK_CHARS[0] * arr.size
    levels = np.clip((arr / peak * (len(_SPARK_CHARS) - 1)).round().astype(int), 0, len(_SPARK_CHARS) - 1)
    return "".join(_SPARK_CHARS[i] for i in levels)


def ascii_line_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 72,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render an (x, y) curve as a character grid with axis annotations."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size == 0 or y.size == 0:
        return "(empty plot)"
    if x.size != y.size:
        raise ValueError("xs and ys must have equal length")
    y_max = y.max() if y.max() > 0 else 1.0
    x_min, x_max = float(x.min()), float(x.max())
    x_span = x_max - x_min if x_max > x_min else 1.0

    grid = [[" "] * width for _ in range(height)]
    # Downsample into columns by max so bursts are preserved.
    for col in range(width):
        lo = x_min + x_span * col / width
        hi = x_min + x_span * (col + 1) / width
        mask = (x >= lo) & (x < hi) if col < width - 1 else (x >= lo) & (x <= hi)
        if not mask.any():
            continue
        v = y[mask].max()
        row = int(round((1 - v / y_max) * (height - 1)))
        row = min(max(row, 0), height - 1)
        grid[row][col] = "*"
        for r in range(row + 1, height):
            if grid[r][col] == " ":
                grid[r][col] = "|" if v > 0 else " "

    lines = []
    if title:
        lines.append(title)
    label = f"{y_label} " if y_label else ""
    lines.append(f"{label}peak={y_max:.4g}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    x_caption = f" {x_min:.4g} .. {x_max:.4g}"
    if x_label:
        x_caption += f" ({x_label})"
    lines.append(x_caption)
    return "\n".join(lines)


def ascii_bar_plot(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
) -> str:
    """Render labelled horizontal bars, scaled to the largest value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return "(empty plot)"
    vmax = max(values) if max(values) > 0 else 1.0
    label_w = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, v in zip(labels, values):
        bar = "#" * int(round(v / vmax * width))
        lines.append(f"{label.rjust(label_w)} |{bar} {v:.4g}")
    return "\n".join(lines)
