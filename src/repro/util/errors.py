"""Exception hierarchy for the reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class TraceFormatError(ReproError):
    """A trace file or record violates the trace format.

    Raised by the decoder when a line cannot be parsed, when a compression
    flag references state that does not exist (e.g. "same file as previous
    record" on the first record), or when field values are out of range.
    """

    def __init__(self, message: str, *, line_number: int | None = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class StoreFormatError(ReproError):
    """A compiled trace store file is unusable.

    Raised when a ``.rpt`` bundle has the wrong magic, an unsupported
    format version, a truncated or undersized payload, a column set that
    does not match the current :class:`~repro.trace.array.TraceArray`
    schema, or (under ``verify=True``) a payload digest mismatch.
    """


class SimulationError(ReproError):
    """The buffering simulator reached an inconsistent state."""


class CalibrationError(ReproError):
    """A workload generator failed to meet its catalog targets."""


class SweepError(ReproError):
    """A parallel sweep failed.

    Wraps the first failing point's error with its label so callers see
    *which* configuration broke; the original exception is chained as
    ``__cause__``.
    """


class SweepCancelled(SweepError):
    """A sweep stopped because its ``should_cancel`` hook fired.

    Raised by :class:`~repro.exec.runner.SweepRunner` between points
    (serial) or between point completions (pool) once cancellation is
    requested; already-queued pool futures are cancelled and shared
    memory is torn down before this propagates.
    """


class RuntimeAPIError(ReproError):
    """Misuse of the simulated application runtime's file API.

    E.g. reading a closed file descriptor or waiting on an unknown
    asynchronous request.
    """
