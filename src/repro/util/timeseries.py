"""Binned time series, the data structure behind every rate-over-time figure.

Figures 3, 4, 6 and 7 of the paper all plot "MB per (CPU|wall) second" at
one-second resolution.  :class:`BinnedSeries` accumulates weighted events
into fixed-width bins; :class:`RateSeries` interprets the accumulated
weight per bin as a rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


class BinnedSeries:
    """Accumulate event weights into fixed-width time bins.

    The series grows on demand: adding an event past the current end
    extends the bin array, so callers do not need to know the trace length
    in advance.
    """

    def __init__(self, bin_width: float, t0: float = 0.0):
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.bin_width = float(bin_width)
        self.t0 = float(t0)
        self._bins = np.zeros(16, dtype=float)
        self._n_used = 0

    def add(self, t: float, weight: float = 1.0) -> None:
        """Add ``weight`` at time ``t``.  Times before ``t0`` are rejected."""
        if t < self.t0:
            raise ValueError(f"time {t} precedes series origin {self.t0}")
        idx = int((t - self.t0) / self.bin_width)
        if idx >= self._bins.size:
            new_size = max(idx + 1, self._bins.size * 2)
            self._bins = np.concatenate(
                [self._bins, np.zeros(new_size - self._bins.size)]
            )
        self._bins[idx] += weight
        if idx + 1 > self._n_used:
            self._n_used = idx + 1

    def add_many(self, ts: Iterable[float], weights: Iterable[float]) -> None:
        for t, w in zip(ts, weights):
            self.add(t, w)

    def add_at(self, idx: np.ndarray, weights: np.ndarray | float) -> None:
        """Bulk :meth:`add` at precomputed bin indices, applied in order.

        ``idx`` holds nonnegative bin indices (the caller has already
        done the ``(t - t0) / bin_width`` truncation).  ``np.add.at`` is
        unbuffered -- repeated indices accumulate sequentially in array
        order -- so the result is bit-identical to a loop of scalar
        :meth:`add` calls in the same order, which is what the batch
        kernel's vectorized run commit relies on.
        """
        if idx.size == 0:
            return
        mx = int(idx.max())
        if mx >= self._bins.size:
            new_size = max(mx + 1, self._bins.size * 2)
            self._bins = np.concatenate(
                [self._bins, np.zeros(new_size - self._bins.size)]
            )
        np.add.at(self._bins, idx, weights)
        if mx + 1 > self._n_used:
            self._n_used = mx + 1

    def add_spread(self, t_start: float, t_end: float, weight: float) -> None:
        """Spread ``weight`` uniformly over the interval ``[t_start, t_end]``.

        Used to attribute a long disk transfer's bytes across all the bins
        it overlaps, rather than impulsing them at the start time.
        """
        if t_end < t_start:
            raise ValueError("t_end must be >= t_start")
        if t_end == t_start:
            self.add(t_start, weight)
            return
        duration = t_end - t_start
        t = t_start
        while t < t_end:
            idx = int((t - self.t0) / self.bin_width)
            bin_end = self.t0 + (idx + 1) * self.bin_width
            if bin_end <= t:
                # Float rounding put the computed edge at or before t
                # (t sits exactly on a representable bin boundary); step
                # to the following edge so the loop always progresses.
                bin_end = self.t0 + (idx + 2) * self.bin_width
            seg_end = min(bin_end, t_end)
            self.add(t, weight * (seg_end - t) / duration)
            t = seg_end

    @property
    def n_bins(self) -> int:
        return self._n_used

    def values(self) -> np.ndarray:
        """The accumulated weight per bin (a copy)."""
        return self._bins[: self._n_used].copy()

    def times(self) -> np.ndarray:
        """The left edge of each used bin."""
        return self.t0 + np.arange(self._n_used) * self.bin_width

    @property
    def total(self) -> float:
        return float(self._bins[: self._n_used].sum())


@dataclass
class RateSeries:
    """A rate-over-time curve: per-bin totals divided by the bin width.

    ``times`` holds bin left edges; ``rates`` holds weight/second in each
    bin.  Construct via :meth:`from_binned` or :meth:`from_events`.
    """

    times: np.ndarray
    rates: np.ndarray
    bin_width: float

    @classmethod
    def from_binned(cls, series: BinnedSeries) -> "RateSeries":
        return cls(
            times=series.times(),
            rates=series.values() / series.bin_width,
            bin_width=series.bin_width,
        )

    @classmethod
    def from_events(
        cls,
        ts: Sequence[float],
        weights: Sequence[float],
        bin_width: float = 1.0,
        t0: float = 0.0,
    ) -> "RateSeries":
        binned = BinnedSeries(bin_width, t0)
        binned.add_many(ts, weights)
        return cls.from_binned(binned)

    @property
    def peak(self) -> float:
        """The highest per-bin rate (0 for an empty series)."""
        return float(self.rates.max()) if self.rates.size else 0.0

    @property
    def mean(self) -> float:
        """The mean per-bin rate (0 for an empty series)."""
        return float(self.rates.mean()) if self.rates.size else 0.0

    @property
    def total(self) -> float:
        """Total accumulated weight across all bins."""
        return float((self.rates * self.bin_width).sum())

    @property
    def duration(self) -> float:
        """Covered time span in seconds."""
        return self.rates.size * self.bin_width

    def burstiness(self) -> float:
        """Peak-to-mean ratio, the paper's informal burstiness measure.

        Returns 0 for an all-zero or empty series.
        """
        return self.peak / self.mean if self.mean > 0 else 0.0

    def active_fraction(self, threshold: float = 0.0) -> float:
        """Fraction of bins whose rate strictly exceeds ``threshold``."""
        if self.rates.size == 0:
            return 0.0
        return float((self.rates > threshold).sum()) / self.rates.size

    def truncated(self, t_max: float) -> "RateSeries":
        """The prefix of the series with bin edges below ``t_max``."""
        mask = self.times < t_max
        return RateSeries(self.times[mask], self.rates[mask], self.bin_width)

    def autocorrelation(self, max_lag: int | None = None) -> np.ndarray:
        """Normalized autocorrelation of the rate curve, lags 0..max_lag.

        Cycle detection (section 5.3) looks for the first strong off-zero
        peak of this function.
        """
        n = self.rates.size
        if n == 0:
            return np.zeros(0)
        x = self.rates - self.rates.mean()
        if max_lag is None:
            max_lag = n - 1
        max_lag = min(max_lag, n - 1)
        denom = float((x * x).sum())
        if denom == 0:
            out = np.zeros(max_lag + 1)
            out[0] = 1.0
            return out
        full = np.correlate(x, x, mode="full")[n - 1 :]
        return full[: max_lag + 1] / denom
