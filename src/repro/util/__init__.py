"""Shared substrate: units, time base, statistics, time series, rendering.

The whole reproduction uses two time bases:

* **trace ticks** -- the paper's trace format stores every timestamp in
  10 microsecond units (integer ticks).  All trace-level code
  (:mod:`repro.trace`, :mod:`repro.runtime`, :mod:`repro.workloads`) works
  in integer ticks so that traces round-trip exactly.
* **seconds** -- the buffering simulator (:mod:`repro.sim`) and all
  analysis code report in floating-point seconds.

Conversions live in :mod:`repro.util.units` and are the only place the
``10 us`` constant appears.
"""

from repro.util.units import (
    TICKS_PER_SECOND,
    TICK_SECONDS,
    KB,
    MB,
    GB,
    WORD_BYTES,
    MEGAWORD_BYTES,
    seconds_to_ticks,
    ticks_to_seconds,
    bytes_to_mb,
    mb_to_bytes,
    megawords_to_bytes,
    format_bytes,
    format_seconds,
)
from repro.util.errors import ReproError, TraceFormatError, SimulationError, CalibrationError
from repro.util.rng import make_rng, derive_rng
from repro.util.stats import (
    Histogram,
    OnlineStats,
    weighted_mean,
    percentile,
)
from repro.util.timeseries import BinnedSeries, RateSeries
from repro.util.tables import TextTable, format_table, format_si
from repro.util.asciiplot import ascii_line_plot, ascii_bar_plot, sparkline

__all__ = [
    "TICKS_PER_SECOND",
    "TICK_SECONDS",
    "KB",
    "MB",
    "GB",
    "WORD_BYTES",
    "MEGAWORD_BYTES",
    "seconds_to_ticks",
    "ticks_to_seconds",
    "bytes_to_mb",
    "mb_to_bytes",
    "megawords_to_bytes",
    "format_bytes",
    "format_seconds",
    "ReproError",
    "TraceFormatError",
    "SimulationError",
    "CalibrationError",
    "make_rng",
    "derive_rng",
    "Histogram",
    "OnlineStats",
    "weighted_mean",
    "percentile",
    "BinnedSeries",
    "RateSeries",
    "TextTable",
    "format_table",
    "format_si",
    "ascii_line_plot",
    "ascii_bar_plot",
    "sparkline",
]
