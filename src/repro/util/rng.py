"""Deterministic random-number helpers.

Every stochastic component (workload jitter, disk rotational latency) takes
an explicit :class:`numpy.random.Generator`.  Seeds are derived from string
labels so that, e.g., two venus instances in one experiment get distinct
but reproducible streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Root seed for the whole reproduction; experiments may override it.
DEFAULT_SEED: int = 19910616  # UCB/CSD 91/616


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a generator from an integer seed (default: the repo seed)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive_seed(seed: int, label: str) -> int:
    """Derive a child seed from a parent seed and a string label.

    Uses SHA-256 so that the derivation is stable across Python versions
    (``hash()`` is salted per process and must not be used here).
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(seed: int, label: str) -> np.random.Generator:
    """Create a generator whose stream is keyed by ``(seed, label)``."""
    return np.random.default_rng(derive_seed(seed, label))
