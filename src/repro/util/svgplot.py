"""Minimal dependency-free SVG charts.

matplotlib is unavailable offline, so the figure experiments render
their curves to standalone SVG files with this tiny writer: enough for a
time-series line chart and a grouped bar chart with axes, ticks and
labels.  The output is plain SVG 1.1, viewable in any browser.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence
from xml.sax.saxutils import escape

_COLORS = ("#1f6fb2", "#c23b22", "#3a923a", "#8436a8", "#b8860b")


def _nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(1, n)
    magnitude = 10 ** math.floor(math.log10(raw))
    for multiple in (1, 2, 2.5, 5, 10):
        step = multiple * magnitude
        if span / step <= n:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-9:
        ticks.append(round(t, 10))
        t += step
    return ticks


@dataclass
class SVGChart:
    """One chart canvas with margins and data-space scaling."""

    width: int = 720
    height: int = 360
    margin_left: int = 64
    margin_right: int = 16
    margin_top: int = 36
    margin_bottom: int = 48
    title: str = ""
    x_label: str = ""
    y_label: str = ""
    _elements: list[str] = field(default_factory=list)
    _x_range: tuple[float, float] = (0.0, 1.0)
    _y_range: tuple[float, float] = (0.0, 1.0)

    # -- geometry ---------------------------------------------------------
    @property
    def plot_width(self) -> int:
        return self.width - self.margin_left - self.margin_right

    @property
    def plot_height(self) -> int:
        return self.height - self.margin_top - self.margin_bottom

    def set_ranges(self, xs: Sequence[float], ys: Sequence[float]) -> None:
        if len(xs) == 0 or len(ys) == 0:
            raise ValueError("need data to set ranges")
        x_lo, x_hi = float(min(xs)), float(max(xs))
        y_hi = float(max(ys))
        if x_hi <= x_lo:
            x_hi = x_lo + 1.0
        if y_hi <= 0:
            y_hi = 1.0
        self._x_range = (x_lo, x_hi)
        self._y_range = (0.0, y_hi * 1.05)

    def _sx(self, x: float) -> float:
        lo, hi = self._x_range
        return self.margin_left + (x - lo) / (hi - lo) * self.plot_width

    def _sy(self, y: float) -> float:
        lo, hi = self._y_range
        return (
            self.margin_top
            + (1 - (y - lo) / (hi - lo)) * self.plot_height
        )

    # -- drawing ------------------------------------------------------------
    def add_axes(self) -> None:
        x0, y0 = self.margin_left, self.margin_top
        x1 = self.width - self.margin_right
        y1 = self.height - self.margin_bottom
        self._elements.append(
            f'<rect x="{x0}" y="{y0}" width="{x1 - x0}" height="{y1 - y0}" '
            f'fill="none" stroke="#444" stroke-width="1"/>'
        )
        for tick in _nice_ticks(*self._x_range):
            sx = self._sx(tick)
            self._elements.append(
                f'<line x1="{sx:.1f}" y1="{y1}" x2="{sx:.1f}" y2="{y1 + 5}" '
                f'stroke="#444"/>'
            )
            self._elements.append(
                f'<text x="{sx:.1f}" y="{y1 + 18}" font-size="11" '
                f'text-anchor="middle" fill="#333">{tick:g}</text>'
            )
        for tick in _nice_ticks(*self._y_range):
            sy = self._sy(tick)
            self._elements.append(
                f'<line x1="{x0 - 5}" y1="{sy:.1f}" x2="{x0}" y2="{sy:.1f}" '
                f'stroke="#444"/>'
            )
            self._elements.append(
                f'<text x="{x0 - 8}" y="{sy + 4:.1f}" font-size="11" '
                f'text-anchor="end" fill="#333">{tick:g}</text>'
            )
            self._elements.append(
                f'<line x1="{x0}" y1="{sy:.1f}" x2="{x1}" y2="{sy:.1f}" '
                f'stroke="#ddd" stroke-width="0.5"/>'
            )
        if self.title:
            self._elements.append(
                f'<text x="{self.width / 2:.0f}" y="20" font-size="14" '
                f'font-weight="bold" text-anchor="middle" fill="#111">'
                f"{escape(self.title)}</text>"
            )
        if self.x_label:
            self._elements.append(
                f'<text x="{(x0 + x1) / 2:.0f}" y="{self.height - 10}" '
                f'font-size="12" text-anchor="middle" fill="#333">'
                f"{escape(self.x_label)}</text>"
            )
        if self.y_label:
            cy = (y0 + y1) / 2
            self._elements.append(
                f'<text x="16" y="{cy:.0f}" font-size="12" '
                f'text-anchor="middle" fill="#333" '
                f'transform="rotate(-90 16 {cy:.0f})">'
                f"{escape(self.y_label)}</text>"
            )

    def add_line(
        self, xs: Sequence[float], ys: Sequence[float], *, series: int = 0,
        label: str | None = None,
    ) -> None:
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        color = _COLORS[series % len(_COLORS)]
        points = " ".join(
            f"{self._sx(float(x)):.1f},{self._sy(float(y)):.1f}"
            for x, y in zip(xs, ys)
        )
        self._elements.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="1.3"/>'
        )
        if label:
            y = self.margin_top + 14 + 14 * series
            x = self.width - self.margin_right - 8
            self._elements.append(
                f'<text x="{x}" y="{y}" font-size="11" text-anchor="end" '
                f'fill="{color}">{escape(label)}</text>'
            )

    def add_bars(
        self,
        labels: Sequence[str],
        ys: Sequence[float],
        *,
        series: int = 0,
        n_series: int = 1,
        label: str | None = None,
    ) -> None:
        if len(labels) != len(ys):
            raise ValueError("labels and ys must have equal length")
        color = _COLORS[series % len(_COLORS)]
        n = len(labels)
        slot = self.plot_width / max(1, n)
        bar_w = slot * 0.7 / max(1, n_series)
        y1 = self.height - self.margin_bottom
        for i, (text, y) in enumerate(zip(labels, ys)):
            x = (
                self.margin_left
                + i * slot
                + slot * 0.15
                + series * bar_w
            )
            sy = self._sy(float(y))
            self._elements.append(
                f'<rect x="{x:.1f}" y="{sy:.1f}" width="{bar_w:.1f}" '
                f'height="{y1 - sy:.1f}" fill="{color}" fill-opacity="0.85"/>'
            )
            if series == 0:
                self._elements.append(
                    f'<text x="{self.margin_left + (i + 0.5) * slot:.1f}" '
                    f'y="{y1 + 18}" font-size="11" text-anchor="middle" '
                    f'fill="#333">{escape(text)}</text>'
                )
        if label:
            y = self.margin_top + 14 + 14 * series
            x = self.width - self.margin_right - 8
            self._elements.append(
                f'<text x="{x}" y="{y}" font-size="11" text-anchor="end" '
                f'fill="{color}">{escape(label)}</text>'
            )

    # -- output --------------------------------------------------------------
    def render(self) -> str:
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.render())


def line_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> SVGChart:
    """One-series line chart, ready to render."""
    chart = SVGChart(title=title, x_label=x_label, y_label=y_label)
    chart.set_ranges(xs, ys)
    chart.add_axes()
    chart.add_line(xs, ys)
    return chart


def bar_chart(
    labels: Sequence[str],
    ys: Sequence[float],
    *,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> SVGChart:
    """One-series bar chart, ready to render."""
    chart = SVGChart(title=title, x_label=x_label, y_label=y_label)
    chart.set_ranges(range(len(labels)), list(ys) or [1.0])
    chart.add_axes()
    chart.add_bars(labels, ys)
    return chart
