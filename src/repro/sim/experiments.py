"""Canned section-6 experiments: the figures and claims as functions.

Every table/figure benchmark calls one of these; the examples reuse them
too.  Each returns plain result objects so callers can print, assert or
plot as they wish.

All the sweep-shaped experiments (Figure 8, the per-app SSD runs, the
ablations, the n+1 rule) execute through :class:`repro.exec.SweepRunner`:
pass ``jobs`` to fan the points over a process pool (default: honour
``$REPRO_JOBS`` when set, else run serially) and ``result_cache`` to
memoize results on disk.  Every point simulates with its config's own
seed, so the numbers do not depend on ``jobs`` and match what direct
``simulate()`` calls produce.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.exec.cache import ResultCache
from repro.exec.runner import (
    AppWorkloadSpec,
    PointResult,
    SweepPointSpec,
    SweepRunner,
    generated_workload,
)
from repro.sim.config import CacheConfig, SimConfig, ssd_cache
from repro.sim.metrics import SimulationResult
from repro.sim.procmodel import relabel_copies
from repro.sim.system import simulate
from repro.trace.array import TraceArray
from repro.util.rng import DEFAULT_SEED
from repro.util.units import KB, MB
from repro.workloads.base import GeneratedWorkload, generate_workload

#: Figure 8's caption: "Execution time would be 761 seconds if there were
#: no idle time" (two venus runs back to back on one CPU).
PAPER_TWO_VENUS_NO_IDLE_SECONDS = 761.0

#: Figure 8's cache sizes, in MB.
FIG8_CACHE_SIZES_MB = (4, 8, 16, 32, 64, 128, 256)

#: Figure 8 compares 4 KB and 8 KB cache blocks.
FIG8_BLOCK_SIZES_KB = (4, 8)


def two_copies(workload: GeneratedWorkload) -> list[TraceArray]:
    """Two identical instances "running with ... and not sharing data sets"."""
    return relabel_copies(workload.trace, 2)


def _runner(
    runner: SweepRunner | None,
    jobs: int | None,
    result_cache: ResultCache | None,
) -> SweepRunner:
    """The runner an experiment should use (an explicit one wins).

    ``jobs=None`` honours ``$REPRO_JOBS`` when set and otherwise runs
    serially -- library calls never spawn a pool unless asked to.
    """
    if runner is not None:
        return runner
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(env) if env else 1
    return SweepRunner(jobs=jobs, cache=result_cache)


@dataclass(frozen=True)
class BufferingRun:
    """One simulated configuration and its outcome."""

    label: str
    cache_mb: float
    block_kb: float
    result: SimulationResult

    @property
    def idle_seconds(self) -> float:
        return self.result.idle_seconds

    @property
    def utilization(self) -> float:
        return self.result.utilization


def _venus_cache(
    *,
    cache_mb: float,
    block_kb: float,
    read_ahead: bool,
    write_behind: bool,
    ssd: bool,
    max_blocks_per_process: int | None,
) -> CacheConfig:
    kwargs = dict(
        block_bytes=int(block_kb * KB),
        read_ahead=read_ahead,
        write_behind=write_behind,
        max_blocks_per_process=max_blocks_per_process,
    )
    if ssd:
        return ssd_cache(int(cache_mb * MB), **kwargs)
    return CacheConfig(size_bytes=int(cache_mb * MB), **kwargs)


def _two_venus_point(
    *,
    cache_mb: float,
    block_kb: float,
    read_ahead: bool,
    write_behind: bool,
    ssd: bool,
    scale: float,
    seed: int | None,
    max_blocks_per_process: int | None,
) -> SweepPointSpec:
    cache = _venus_cache(
        cache_mb=cache_mb,
        block_kb=block_kb,
        read_ahead=read_ahead,
        write_behind=write_behind,
        ssd=ssd,
        max_blocks_per_process=max_blocks_per_process,
    )
    kind = "SSD" if ssd else "mem"
    return SweepPointSpec(
        workload=AppWorkloadSpec(
            app="venus",
            scale=scale,
            seed=DEFAULT_SEED if seed is None else seed,
            n_copies=2,
        ),
        config=SimConfig(cache=cache),
        label=f"2xvenus {kind} {cache_mb:g}MB/{block_kb:g}KB "
        f"ra={'on' if read_ahead else 'off'} wb={'on' if write_behind else 'off'}",
    )


def _buffering_run(point_result: PointResult, cache_mb: float, block_kb: float) -> BufferingRun:
    return BufferingRun(
        label=point_result.label,
        cache_mb=cache_mb,
        block_kb=block_kb,
        result=point_result.result,
    )


def run_two_venus(
    *,
    cache_mb: float = 32.0,
    block_kb: float = 4.0,
    read_ahead: bool = True,
    write_behind: bool = True,
    ssd: bool = False,
    scale: float = 0.25,
    seed: int | None = None,
    max_blocks_per_process: int | None = None,
    runner: SweepRunner | None = None,
    result_cache: ResultCache | None = None,
) -> BufferingRun:
    """The paper's workhorse experiment: two venus copies, one CPU."""
    point = _two_venus_point(
        cache_mb=cache_mb,
        block_kb=block_kb,
        read_ahead=read_ahead,
        write_behind=write_behind,
        ssd=ssd,
        scale=scale,
        seed=seed,
        max_blocks_per_process=max_blocks_per_process,
    )
    r = _runner(runner, 1, result_cache)
    return _buffering_run(r.run_point(point), cache_mb, block_kb)


@dataclass(frozen=True)
class SweepPoint:
    cache_mb: float
    block_kb: float
    idle_seconds: float
    utilization: float
    hit_fraction: float


def cache_size_sweep(
    *,
    cache_sizes_mb=FIG8_CACHE_SIZES_MB,
    block_sizes_kb=FIG8_BLOCK_SIZES_KB,
    scale: float = 0.25,
    ssd: bool = False,
    seed: int = DEFAULT_SEED,
    jobs: int | None = None,
    result_cache: ResultCache | None = None,
    runner: SweepRunner | None = None,
) -> list[SweepPoint]:
    """Figure 8: idle time versus cache size, per block size.

    The venus traces are generated once (per worker) and re-simulated per
    configuration, exactly like re-running the paper's simulator with new
    parameters over fixed trace files.  ``jobs`` fans the grid over a
    process pool; the results are identical at any worker count.
    """
    points = []
    for block_kb in block_sizes_kb:
        for cache_mb in cache_sizes_mb:
            points.append(
                _two_venus_point(
                    cache_mb=cache_mb,
                    block_kb=block_kb,
                    read_ahead=True,
                    write_behind=True,
                    ssd=ssd,
                    scale=scale,
                    seed=seed,
                    max_blocks_per_process=None,
                )
            )
    r = _runner(runner, jobs, result_cache)
    out = []
    for spec, pr in zip(points, r.run(points)):
        out.append(
            SweepPoint(
                cache_mb=spec.config.cache.size_bytes / MB,
                block_kb=spec.config.cache.block_bytes / KB,
                idle_seconds=pr.result.idle_seconds,
                utilization=pr.result.utilization,
                hit_fraction=pr.result.cache.hit_fraction,
            )
        )
    return out


def no_idle_execution_seconds(scale: float = 0.25) -> float:
    """The sweep's "761 seconds" baseline at this scale: total CPU demand."""
    venus = generated_workload("venus", scale, DEFAULT_SEED)
    return 2 * venus.cpu_seconds


@dataclass(frozen=True)
class AppSSDRun:
    name: str
    utilization: float
    #: utilization excluding the cold-start window; the paper's >99%
    #: figures come from full-length runs where the first sweep's
    #: compulsory misses amortize away
    warm_utilization: float
    idle_seconds: float
    wall_seconds: float
    hit_fraction: float


def ssd_utilization_per_app(
    *,
    ssd_mb: float = 256.0,
    scales: dict[str, float] | None = None,
    apps=("bvi", "ccm", "forma", "gcm", "les", "venus", "upw"),
    warmup_fraction: float = 0.25,
    seed: int = DEFAULT_SEED,
    jobs: int | None = None,
    result_cache: ResultCache | None = None,
    runner: SweepRunner | None = None,
) -> list[AppSSDRun]:
    """Section 6.3: each application alone with a 32 MW (256 MB) SSD cache.

    "all but one of the applications nearly completely utilized a Cray
    Y-MP CPU by itself when using a 32 MW SSD cache."
    """
    # Scales are chosen so every app runs at least ~4 cycles: with fewer,
    # the first (cold) sweep dominates the run and no window is "warm".
    default_scales = {
        "bvi": 0.05,
        "forma": 0.1,
        "ccm": 0.2,
        "gcm": 0.2,
        "les": 0.25,
        "venus": 0.2,
        "upw": 0.2,
    }
    scales = {**default_scales, **(scales or {})}
    points = [
        SweepPointSpec(
            workload=AppWorkloadSpec(app=name, scale=scales[name], seed=seed),
            config=SimConfig(cache=ssd_cache(int(ssd_mb * MB))),
            label=f"{name} SSD {ssd_mb:g}MB",
        )
        for name in apps
    ]
    r = _runner(runner, jobs, result_cache)
    runs = []
    for name, pr in zip(apps, r.run(points)):
        result = pr.result
        runs.append(
            AppSSDRun(
                name=name,
                utilization=result.utilization,
                warm_utilization=result.utilization_after(
                    warmup_fraction * result.completion_seconds
                ),
                idle_seconds=result.idle_seconds,
                wall_seconds=result.wall_seconds,
                hit_fraction=result.cache.hit_fraction,
            )
        )
    return runs


def _two_venus_pair(
    without_kwargs: dict,
    with_kwargs: dict,
    *,
    jobs: int | None,
    result_cache: ResultCache | None,
    runner: SweepRunner | None,
) -> tuple[BufferingRun, BufferingRun]:
    """Run an (off, on) ablation pair through one runner."""
    points = [_two_venus_point(**without_kwargs), _two_venus_point(**with_kwargs)]
    r = _runner(runner, jobs, result_cache)
    results = r.run(points)
    return tuple(
        _buffering_run(pr, kw["cache_mb"], kw["block_kb"])
        for pr, kw in zip(results, (without_kwargs, with_kwargs))
    )


def _ablation_kwargs(**overrides) -> dict:
    base = dict(
        cache_mb=32.0,
        block_kb=4.0,
        read_ahead=True,
        write_behind=True,
        ssd=False,
        scale=0.25,
        seed=None,
        max_blocks_per_process=None,
    )
    base.update(overrides)
    return base


def writebehind_ablation(
    *,
    cache_mb: float = 128.0,
    scale: float = 0.25,
    ssd: bool = True,
    jobs: int | None = None,
    result_cache: ResultCache | None = None,
    runner: SweepRunner | None = None,
) -> tuple[BufferingRun, BufferingRun]:
    """Section 6.2's claim: "writebehind reduced idle time from 211 seconds
    to 1 second for a simulation of two identical copies of venus running
    with a 128 MB cache."  Returns (without, with) write-behind.
    """
    return _two_venus_pair(
        _ablation_kwargs(cache_mb=cache_mb, scale=scale, ssd=ssd, write_behind=False),
        _ablation_kwargs(cache_mb=cache_mb, scale=scale, ssd=ssd, write_behind=True),
        jobs=jobs,
        result_cache=result_cache,
        runner=runner,
    )


def readahead_ablation(
    *,
    cache_mb: float = 32.0,
    scale: float = 0.25,
    jobs: int | None = None,
    result_cache: ResultCache | None = None,
    runner: SweepRunner | None = None,
) -> tuple[BufferingRun, BufferingRun]:
    """Read-ahead off/on at a main-memory-sized cache."""
    return _two_venus_pair(
        _ablation_kwargs(cache_mb=cache_mb, scale=scale, read_ahead=False),
        _ablation_kwargs(cache_mb=cache_mb, scale=scale, read_ahead=True),
        jobs=jobs,
        result_cache=result_cache,
        runner=runner,
    )


def buffer_cap_ablation(
    *,
    cache_mb: float = 32.0,
    scale: float = 0.25,
    cap_fraction: float = 0.5,
    jobs: int | None = None,
    result_cache: ResultCache | None = None,
    runner: SweepRunner | None = None,
) -> tuple[BufferingRun, BufferingRun]:
    """Section 6.2: capping per-process buffer ownership "did not relieve
    the problem, and actually worsened CPU utilization in several cases."
    Returns (uncapped, capped at cap_fraction of the cache).
    """
    cap_blocks = int(cache_mb * MB / (4 * KB) * cap_fraction)
    return _two_venus_pair(
        _ablation_kwargs(cache_mb=cache_mb, scale=scale),
        _ablation_kwargs(
            cache_mb=cache_mb, scale=scale, max_blocks_per_process=cap_blocks
        ),
        jobs=jobs,
        result_cache=result_cache,
        runner=runner,
    )


@dataclass(frozen=True)
class FaultSweepPoint:
    """One (error_rate, slow_rate) measurement under the fault layer."""

    error_rate: float
    slow_rate: float
    utilization: float
    idle_seconds: float
    retries: int
    recovered: int
    failed_ios: int
    lost_mb: float
    goodput_mb: float


def fault_rate_sweep(
    *,
    error_rates=(0.0, 0.01, 0.02, 0.05, 0.1),
    slow_rate: float = 0.0,
    slow_factor: float = 8.0,
    cache_mb: float = 32.0,
    block_kb: float = 4.0,
    ssd: bool = True,
    scale: float = 0.25,
    seed: int = DEFAULT_SEED,
    jobs: int | None = None,
    result_cache: ResultCache | None = None,
    runner: SweepRunner | None = None,
) -> list[FaultSweepPoint]:
    """Figure-8-style utilization versus device fault rate.

    The same two-venus workload as the cache-size sweep, but the cache
    is fixed and the *device error rate* sweeps instead: how fast does
    the write-behind/read-ahead win decay when flushes start failing and
    retrying?  All points share one workload seed (common random
    numbers), so the curve isolates the fault effect.
    """
    points = []
    for rate in error_rates:
        spec = _two_venus_point(
            cache_mb=cache_mb,
            block_kb=block_kb,
            read_ahead=True,
            write_behind=True,
            ssd=ssd,
            scale=scale,
            seed=seed,
            max_blocks_per_process=None,
        )
        config = spec.config.with_faults(
            error_rate=rate, slow_rate=slow_rate, slow_factor=slow_factor
        )
        points.append(
            SweepPointSpec(
                workload=spec.workload,
                config=config,
                label=f"{spec.label} err={rate:g} slow={slow_rate:g}",
            )
        )
    r = _runner(runner, jobs, result_cache)
    out = []
    for rate, pr in zip(error_rates, r.run(points)):
        res = pr.result
        fs = res.faults
        out.append(
            FaultSweepPoint(
                error_rate=rate,
                slow_rate=slow_rate,
                utilization=res.utilization,
                idle_seconds=res.idle_seconds,
                retries=fs.retries,
                recovered=fs.recovered,
                failed_ios=fs.failed_reads + fs.failed_writes,
                lost_mb=fs.lost_bytes / MB,
                goodput_mb=res.goodput_bytes / MB,
            )
        )
    return out


@dataclass(frozen=True)
class PagingComparison:
    """Program-controlled staging vs demand-paging-sized requests.

    The decisive metric is completion time for the same useful work:
    fault-handling CPU inflates the paged run's *utilization* while
    slowing the program down.
    """

    staged_completion_s: float
    paged_completion_s: float
    staged_utilization: float
    paged_utilization: float
    staged_ios_per_sec: float
    paged_ios_per_sec: float

    @property
    def staging_wins(self) -> bool:
        return self.staged_completion_s < self.paged_completion_s

    @property
    def slowdown(self) -> float:
        return self.paged_completion_s / self.staged_completion_s


def paging_vs_staging(
    *,
    page_bytes: int = 16 * KB,
    cache_mb: float = 32.0,
    scale: float = 0.08,
    fault_cpu_s: float = 150e-6,
) -> PagingComparison:
    """Section 5.1: "These I/Os are the equivalent of paging under a
    paging virtual memory operating system ... Even when paging exists,
    the program is better able than the operating system to predict
    which data it will need."

    Runs the same venus computation two ways through the same cache:

    * **staged** -- the real model: 456 KB program-chosen requests, with
      the file system's predictive read-ahead working for it;
    * **paged** -- the identical byte volume moved in page-sized demand
      faults: no predictive read-ahead (the VM does not know what comes
      next) and ``fault_cpu_s`` of kernel fault-handling CPU per page.

    The asymmetry is exactly the paper's argument: prediction, and
    per-request overhead amortization.

    (Runs directly, not through the sweep runner: the paged variant uses
    an ad-hoc unregistered model class that cannot be named by a spec.)
    """
    from repro.workloads.apps.venus import VenusModel

    class PagedVenus(VenusModel):
        """venus forced to page-granular transfers (not registered)."""

        read_chunk = page_bytes
        write_chunk = page_bytes

    staged_w = VenusModel(scale=scale).generate()
    paged_w = PagedVenus(scale=scale).generate()
    staged_config = SimConfig(cache=CacheConfig(size_bytes=int(cache_mb * MB)))
    paged_config = staged_config.with_cache(
        size_bytes=int(cache_mb * MB), read_ahead=False
    ).with_scheduler(fs_overhead_s=fault_cpu_s)
    staged = simulate([staged_w.trace], staged_config)
    paged = simulate([paged_w.trace], paged_config)
    return PagingComparison(
        staged_completion_s=staged.completion_seconds,
        paged_completion_s=paged.completion_seconds,
        staged_utilization=staged.utilization,
        paged_utilization=paged.utilization,
        staged_ios_per_sec=len(staged_w.trace) / staged_w.cpu_seconds,
        paged_ios_per_sec=len(paged_w.trace) / paged_w.cpu_seconds,
    )


@dataclass(frozen=True)
class NPlusOnePoint:
    """One (n_cpus, n_jobs) multiprogramming measurement."""

    n_cpus: int
    n_jobs: int
    utilization: float
    idle_seconds: float


def n_plus_one_rule(
    *,
    app: str = "venus",
    n_cpus: int = 2,
    max_extra_jobs: int = 3,
    cache_mb: float = 48.0,
    scale: float = 0.1,
    seed: int = DEFAULT_SEED,
    jobs: int | None = None,
    result_cache: ResultCache | None = None,
    runner: SweepRunner | None = None,
) -> list[NPlusOnePoint]:
    """Section 2.2's multiprogramming rule, measured.

    "In practice, n+1 jobs resident in main memory will keep n
    processors busy, given a typical supercomputer workload.  ...  If
    all currently in-memory programs make many I/O requests, it is
    likely that more than one will be awaiting I/O all the time."

    Runs ``n_cpus`` CPUs with job counts from ``n_cpus`` up to
    ``n_cpus + max_extra_jobs`` identical instances of ``app`` and
    reports the utilizations.  With an I/O-intensive app at a modest
    cache, n+1 is *not* enough -- the paper's caveat.
    """
    job_counts = [n_cpus + extra for extra in range(0, max_extra_jobs + 1)]
    points = [
        SweepPointSpec(
            workload=AppWorkloadSpec(
                app=app, scale=scale, seed=seed, n_copies=n_jobs
            ),
            config=SimConfig(
                cache=CacheConfig(size_bytes=int(cache_mb * MB))
            ).with_scheduler(n_cpus=n_cpus),
            label=f"{n_jobs}x{app} on {n_cpus} CPUs",
        )
        for n_jobs in job_counts
    ]
    r = _runner(runner, jobs, result_cache)
    return [
        NPlusOnePoint(
            n_cpus=n_cpus,
            n_jobs=n_jobs,
            utilization=pr.result.utilization,
            idle_seconds=pr.result.idle_seconds,
        )
        for n_jobs, pr in zip(job_counts, r.run(points))
    ]
