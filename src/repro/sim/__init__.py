"""The buffering/caching simulator (section 6 of the paper).

A discrete-event model of one Cray CPU running several trace-driven
processes over a buffer cache and a simple no-queueing disk:

* :mod:`repro.sim.events` -- event calendar;
* :mod:`repro.sim.scheduler` -- round-robin CPU with quantum, switch
  overhead and interrupt service time;
* :mod:`repro.sim.procmodel` -- trace replay (compute deltas + I/O);
* :mod:`repro.sim.cache` -- buffer cache with read-ahead, write-behind,
  LRU frames, optional per-process caps, and SSD hit penalties;
* :mod:`repro.sim.devices` -- the seek-closeness disk model;
* :mod:`repro.sim.faults` -- seeded fault injection (transient errors,
  latency spikes, crash-at-T, SSD failure);
* :mod:`repro.sim.recovery` -- retry with exponential backoff + jitter,
  timeouts, dirty-block re-flush, degraded mode;
* :mod:`repro.sim.experiments` -- Figures 6-8 and the section 6 claims
  as canned runs, plus the fault-rate sweep.
"""

from repro.sim.cache import BlockState, BufferCache
from repro.sim.config import (
    CacheConfig,
    DiskConfig,
    FaultConfig,
    RecoveryConfig,
    SchedulerConfig,
    SimConfig,
    ssd_cache,
)
from repro.sim.devices import DiskModel
from repro.sim.events import Engine
from repro.sim.experiments import (
    FIG8_BLOCK_SIZES_KB,
    FIG8_CACHE_SIZES_MB,
    PAPER_TWO_VENUS_NO_IDLE_SECONDS,
    AppSSDRun,
    BufferingRun,
    FaultSweepPoint,
    NPlusOnePoint,
    PagingComparison,
    SweepPoint,
    buffer_cap_ablation,
    cache_size_sweep,
    fault_rate_sweep,
    n_plus_one_rule,
    no_idle_execution_seconds,
    paging_vs_staging,
    readahead_ablation,
    run_two_venus,
    ssd_utilization_per_app,
    two_copies,
    writebehind_ablation,
)
from repro.sim.faults import FaultDecision, FaultInjector, FaultKind, FaultPlan
from repro.sim.metrics import (
    CacheStats,
    FaultStats,
    Metrics,
    ProcessStats,
    SimulationResult,
)
from repro.sim.procmodel import TraceProcess, relabel_copies, split_trace_by_process
from repro.sim.recovery import RecoveringDevice, backoff_delay
from repro.sim.scheduler import RoundRobinScheduler
from repro.sim.system import SimulatedSystem, simulate

__all__ = [
    "BlockState",
    "BufferCache",
    "CacheConfig",
    "DiskConfig",
    "FaultConfig",
    "RecoveryConfig",
    "SchedulerConfig",
    "SimConfig",
    "ssd_cache",
    "DiskModel",
    "Engine",
    "FIG8_BLOCK_SIZES_KB",
    "FIG8_CACHE_SIZES_MB",
    "PAPER_TWO_VENUS_NO_IDLE_SECONDS",
    "AppSSDRun",
    "BufferingRun",
    "FaultSweepPoint",
    "NPlusOnePoint",
    "PagingComparison",
    "SweepPoint",
    "buffer_cap_ablation",
    "cache_size_sweep",
    "fault_rate_sweep",
    "n_plus_one_rule",
    "no_idle_execution_seconds",
    "paging_vs_staging",
    "readahead_ablation",
    "run_two_venus",
    "ssd_utilization_per_app",
    "two_copies",
    "writebehind_ablation",
    "FaultDecision",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "CacheStats",
    "FaultStats",
    "Metrics",
    "ProcessStats",
    "SimulationResult",
    "TraceProcess",
    "relabel_copies",
    "split_trace_by_process",
    "RoundRobinScheduler",
    "RecoveringDevice",
    "backoff_delay",
    "SimulatedSystem",
    "simulate",
]
