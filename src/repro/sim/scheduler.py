"""Round-robin CPU scheduler (section 6.1).

"The simulator uses a simple round-robin scheduler with a quantum that
can be specified each time it is run."

A FIFO ready queue feeding ``n_cpus`` identical processors (the paper's
simulator models one CPU; the Y-MP had eight, and section 2.2's "n+1
jobs resident in main memory will keep n processors busy" rule is an
experiment in :mod:`repro.sim.experiments`, so the scheduler generalizes
to n).  A running process either exhausts its compute demand (and asks
to issue its next I/O) or is preempted at quantum expiry.  Context
switches cost ``switch_overhead_s``; I/O completions cost
``interrupt_service_s`` of CPU.  Idle time is whatever processor-time is
left uncovered -- exactly the quantity Figure 8 plots.
"""

from __future__ import annotations

from collections import deque
from typing import Protocol

from repro.obs.registry import get_registry
from repro.sim.config import SchedulerConfig
from repro.sim.events import Engine
from repro.sim.metrics import Metrics
from repro.util.errors import SimulationError


class Runnable(Protocol):
    """What the scheduler needs from a process."""

    process_id: int

    def compute_remaining(self) -> float:
        """Seconds of CPU wanted before the next I/O (0 = issue now)."""
        ...

    def consume_compute(self, seconds: float) -> None:
        ...

    def on_cpu_available(self) -> bool:
        """Called when compute is exhausted; the process issues I/Os.

        Returns True if the process wants more CPU (stays ready), False
        if it blocked or finished.
        """
        ...


class RoundRobinScheduler:
    """Round-robin dispatch over ``n_cpus`` identical processors."""

    def __init__(
        self,
        engine: Engine,
        config: SchedulerConfig,
        metrics: Metrics,
        *,
        n_cpus: int = 1,
        obs=None,
    ):
        if n_cpus < 1:
            raise SimulationError("need at least one CPU")
        self.engine = engine
        self.config = config
        self.metrics = metrics
        self.n_cpus = n_cpus
        self._obs = obs if obs is not None else get_registry()
        self._c_dispatches = self._obs.counter("sim.sched.dispatches")
        self._c_expiries = self._obs.counter("sim.sched.quantum_expiries")
        self._c_switches = self._obs.counter("sim.sched.context_switches")
        self._c_unblocks = self._obs.counter("sim.sched.io_unblocks")
        self._g_ready = self._obs.gauge("sim.sched.ready_depth")
        self._ready: deque[Runnable] = deque()
        self._running: dict[int, Runnable] = {}  # cpu index -> process
        self._free_cpus: list[int] = list(range(n_cpus))
        self._last_on_cpu: list[Runnable | None] = [None] * n_cpus
        self._blocked: set[int] = set()
        self.dispatches = 0
        self.preemptions = 0

    # -- process lifecycle -------------------------------------------------
    def add(self, proc: Runnable) -> None:
        """Admit a process (initially ready)."""
        self._ready.append(proc)
        self._maybe_dispatch()

    def unblock(self, proc: Runnable) -> None:
        """I/O completed: charge interrupt service and make ready."""
        if proc.process_id not in self._blocked:
            raise SimulationError(
                f"process {proc.process_id} was not blocked"
            )
        self._blocked.discard(proc.process_id)
        self._c_unblocks.inc()
        self.metrics.interrupt_seconds += self.config.interrupt_service_s
        self.metrics.record_busy_point(
            self.engine.now, self.config.interrupt_service_s
        )
        self._ready.append(proc)
        self._maybe_dispatch()

    # -- dispatch loop ---------------------------------------------------
    def _maybe_dispatch(self) -> None:
        self._g_ready.set_max(len(self._ready))
        while self._free_cpus and self._ready:
            cpu = self._free_cpus.pop()
            proc = self._ready.popleft()
            self._running[cpu] = proc
            self.dispatches += 1
            self._c_dispatches.inc()
            switch = (
                self.config.switch_overhead_s
                if self._last_on_cpu[cpu] is not proc
                else 0.0
            )
            self._last_on_cpu[cpu] = proc
            if switch:
                self._c_switches.inc()
                self.metrics.switch_seconds += switch
                self.metrics.record_busy_point(self.engine.now, switch)
            self.engine.schedule(switch, self._run_slice, proc, cpu)

    def _run_slice(self, proc: Runnable, cpu: int) -> None:
        remaining = proc.compute_remaining()
        slice_s = min(self.config.quantum_s, remaining)
        if slice_s > 0:
            self.engine.schedule(slice_s, self._slice_done, proc, cpu, slice_s)
        else:
            self._slice_done(proc, cpu, 0.0)

    def _slice_done(self, proc: Runnable, cpu: int, slice_s: float) -> None:
        if slice_s > 0:
            proc.consume_compute(slice_s)
            self.metrics.busy_seconds += slice_s
            self.metrics.record_busy(self.engine.now - slice_s, self.engine.now)
            self.metrics.process(proc.process_id).cpu_seconds += slice_s
        if proc.compute_remaining() > 0:
            # Quantum expired mid-compute: rotate to the queue tail.
            self.preemptions += 1
            self._c_expiries.inc()
            self._release(cpu)
            self._ready.append(proc)
            self._maybe_dispatch()
            return
        wants_more = proc.on_cpu_available()
        self._release(cpu)
        if wants_more:
            self._ready.append(proc)
        self._maybe_dispatch()

    def _release(self, cpu: int) -> None:
        del self._running[cpu]
        self._free_cpus.append(cpu)

    # -- used by processes --------------------------------------------------
    def mark_blocked(self, proc: Runnable) -> None:
        """The running process blocked (called from on_cpu_available)."""
        self._blocked.add(proc.process_id)

    def mark_done(self, proc: Runnable) -> None:
        """The running process finished its trace."""
        self.metrics.process(proc.process_id).finish_time = self.engine.now

    @property
    def anything_runnable(self) -> bool:
        return bool(self._running) or bool(self._ready)
