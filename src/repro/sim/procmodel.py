"""Trace-driven process replay (section 6.1).

"For each process, there is an input trace in our format, which
determines the size of each I/O and the elapsed time between it and the
next I/O."

A :class:`TraceProcess` walks a single-process trace: it computes for
each record's ``processTime`` delta (plus the configurable per-I/O file
system overhead), then issues the record's I/O against the buffer cache.
Synchronous requests block the process until the cache reports
completion; asynchronous ones (the `les` pattern) let it continue
immediately -- the cache still moves the data.

The replay loop is columnar: the trace's fields are decoded once into
plain Python lists (:meth:`TraceArray.replay_columns`) at construction,
so issuing a record costs a handful of list reads.  Indexing the NumPy
columns per record would box fresh scalars -- and going through the
``is_write``/``is_async`` properties would recompute a full-trace
boolean array for every record, turning replay quadratic.  Multi-block
requests flow to the cache as whole extents; the run-coalesced cache
(see :mod:`repro.sim.cache`) turns each into O(runs) work rather than
O(blocks).
"""

from __future__ import annotations

import numpy as np

from repro.sim.cache import BufferCache
from repro.sim.config import SchedulerConfig
from repro.sim.events import Engine
from repro.sim.metrics import Metrics
from repro.sim.scheduler import RoundRobinScheduler
from repro.trace.array import TraceArray
from repro.util.errors import SimulationError
from repro.util.units import ticks_to_seconds


class TraceProcess:
    """One replayed process."""

    def __init__(
        self,
        process_id: int,
        trace: TraceArray,
        *,
        engine: Engine,
        scheduler: RoundRobinScheduler,
        cache: BufferCache,
        metrics: Metrics,
        sched_config: SchedulerConfig,
        on_finish=None,
    ):
        if len(trace.process_ids()) > 1:
            raise SimulationError(
                "TraceProcess needs a single-process trace; got "
                f"{len(trace.process_ids())} process ids"
            )
        self.process_id = process_id
        self.trace = trace
        self.engine = engine
        self.scheduler = scheduler
        self.cache = cache
        self.metrics = metrics
        self.sched_config = sched_config
        self.on_finish = on_finish

        deltas = trace.process_time_deltas().astype(float) * ticks_to_seconds(1)
        self._deltas_s: list[float] = deltas.tolist()
        (
            self._file_ids,
            self._offsets,
            self._lengths,
            self._writes,
            self._asyncs,
        ) = trace.replay_columns()
        self._n_records = len(trace)
        self._pstats = metrics.process(process_id)
        self._fs_overhead_s = sched_config.fs_overhead_s
        self._cursor = 0
        self._pending_compute = self._deltas_s[0] if self._n_records else 0.0
        self._blocked_at: float | None = None
        self.finished = self._n_records == 0

    # -- Runnable protocol ---------------------------------------------------
    def compute_remaining(self) -> float:
        return self._pending_compute

    def consume_compute(self, seconds: float) -> None:
        self._pending_compute = max(0.0, self._pending_compute - seconds)

    def on_cpu_available(self) -> bool:
        """Issue I/Os until we block, finish, or need more compute."""
        n = self._n_records
        while True:
            i = self._cursor
            if i >= n:
                self.finished = True
                self.scheduler.mark_done(self)
                if self.on_finish is not None:
                    self.on_finish(self)
                return False

            self._cursor = i + 1
            self._pstats.n_ios += 1
            # Load the *next* record's compute demand now; it runs after
            # this I/O is out the door.
            next_i = i + 1
            pending = self._deltas_s[next_i] if next_i < n else 0.0
            self._pending_compute = pending + self._fs_overhead_s

            file_id = self._file_ids[i]
            offset = self._offsets[i]
            length = self._lengths[i]
            is_write = self._writes[i]

            if self._asyncs[i]:
                # Fire and forget: the cache moves the data; the process's
                # overlap discipline is already baked into its CPU deltas.
                self._submit(file_id, offset, length, is_write, on_done=None)
                if self._pending_compute > 0:
                    return True
                continue

            completed_inline = _InlineFlag()
            self._submit(
                file_id,
                offset,
                length,
                is_write,
                on_done=lambda penalty: self._io_done(completed_inline, penalty),
            )
            if completed_inline.fired_inline:
                # Zero-latency completion (e.g. free main-memory hit):
                # no block at all.
                if self._pending_compute > 0:
                    return True
                continue
            completed_inline.armed = True
            self._blocked_at = self.engine.now
            self.scheduler.mark_blocked(self)
            return False

    # -- internals ----------------------------------------------------------
    def _submit(self, file_id, offset, length, is_write, on_done) -> None:
        callback = on_done if on_done is not None else _noop
        if is_write:
            self.cache.write(file_id, offset, length, self.process_id, callback)
        else:
            self.cache.read(file_id, offset, length, self.process_id, callback)

    def _io_done(self, flag: "_InlineFlag", cpu_penalty_s: float) -> None:
        # The SSD copy-through penalty is CPU demand, not a sleep; fold
        # it into the compute the process owes before its next I/O.
        self._pending_compute += cpu_penalty_s
        if not flag.armed:
            flag.fired_inline = True
            return
        if self._blocked_at is not None:
            self._pstats.blocked_seconds += self.engine.now - self._blocked_at
            self._blocked_at = None
        self.scheduler.unblock(self)


class _InlineFlag:
    """Distinguishes completions that fire before the submit returns."""

    __slots__ = ("armed", "fired_inline")

    def __init__(self) -> None:
        self.armed = False
        self.fired_inline = False


def _noop(cpu_penalty_s: float = 0.0) -> None:
    return None


def split_trace_by_process(trace: TraceArray) -> dict[int, TraceArray]:
    """Per-process single-process traces from a merged trace."""
    return {int(pid): trace.for_process(int(pid)) for pid in trace.process_ids()}


def relabel_copies(
    trace: TraceArray, n_copies: int, *, file_id_stride: int = 1000
) -> list[TraceArray]:
    """``n_copies`` independent instances of a single-process trace.

    Each copy gets a distinct process id and a shifted file-id space --
    the experiments run "two identical copies of venus ... not sharing
    data sets", so the copies must not alias each other's files.
    """
    if len(trace.process_ids()) != 1:
        raise SimulationError("relabel_copies needs a single-process trace")
    max_fid = int(trace.file_id.max()) if len(trace) else 0
    if max_fid >= file_id_stride:
        raise SimulationError(
            f"file_id_stride {file_id_stride} too small for max id {max_fid}"
        )
    copies = []
    for k in range(n_copies):
        cols = trace.columns().copy()
        cols["process_id"] = np.full(len(trace), k + 1, dtype=np.uint32)
        cols["file_id"] = trace.file_id + k * file_id_stride
        copies.append(TraceArray(**cols))
    return copies
