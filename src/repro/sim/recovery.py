"""Retry/backoff recovery between the buffer cache and the disk model.

Every disk request the cache issues now goes through a
:class:`RecoveringDevice`.  On the fast path (no fault injection, no
timeout configured) it performs exactly the same three steps the cache
used to perform inline -- compute the service time, record the transfer,
schedule the completion -- so fault-free simulations are bit-identical
to the pre-fault-layer code.

With faults active, each request becomes a chain of *attempts*:

* an attempt the injector marks SLOW completes after ``slow_factor``
  times the modelled service time (the extra busy time is charged to the
  device, like a drive stuck recalibrating);
* an attempt that would exceed ``timeout_s`` is abandoned at the
  deadline and treated as failed (the requester cannot tell a dead
  device from a glacial one);
* a failed attempt is retried after an exponential backoff with seeded
  jitter, up to ``max_retries`` retries; the backoff sequence is
  monotone non-decreasing up to ``backoff_cap_s`` (property-tested);
* when retries are exhausted the request is *reported failed* to the
  cache: failed reads abandon their frames (read-ahead abandonment),
  failed flushes re-queue their dirty blocks (see
  :meth:`repro.sim.cache.BufferCache.issue_disk_write`).

Accounting: every attempt's service time hits the disk model (the head
really moved), but only successful attempts count as disk *transfers* --
the gap between device busy time and goodput is exactly the price of
running over faulty hardware.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.registry import get_registry
from repro.sim.config import RecoveryConfig
from repro.sim.devices import DiskModel
from repro.sim.events import Engine
from repro.sim.faults import FaultInjector, FaultKind
from repro.sim.metrics import Metrics


def backoff_delay(config: RecoveryConfig, attempt: int, jitter_u: float) -> float:
    """Delay before retrying after failed attempt number ``attempt`` (0-based).

    ``min(cap, base * factor**attempt * (1 + jitter * u))`` -- monotone
    non-decreasing in ``attempt`` for any draws ``u`` in [0, 1) because
    ``jitter <= factor - 1`` (enforced by :class:`RecoveryConfig`), and
    never above ``backoff_cap_s``.
    """
    raw = config.backoff_base_s * config.backoff_factor**attempt
    raw *= 1.0 + config.backoff_jitter * jitter_u
    return min(config.backoff_cap_s, raw)


class RecoveringDevice:
    """The retrying device the buffer cache talks to.

    ``submit`` runs one logical device request and eventually calls
    ``on_done(ok)`` exactly once: ``ok=True`` after a successful (possibly
    retried) transfer, ``ok=False`` when retries are exhausted.
    """

    def __init__(
        self,
        disk: DiskModel,
        engine: Engine,
        injector: FaultInjector,
        config: RecoveryConfig,
        metrics: Metrics,
        *,
        obs=None,
    ):
        self.disk = disk
        self.engine = engine
        self.injector = injector
        self.config = config
        self.metrics = metrics
        reg = obs if obs is not None else get_registry()
        self._h_backoff = reg.histogram("sim.recovery.backoff_s")
        self._h_latency = reg.histogram("sim.recovery.latency_s")
        #: fast path: no per-request decisions and no deadline to police
        self._passthrough = not injector.active and config.timeout_s is None

    def submit(
        self,
        file_id: int,
        offset: int,
        length: int,
        *,
        is_write: bool,
        on_done: Callable[[bool], None],
    ) -> None:
        """One logical device request; ``on_done(ok)`` fires at completion."""
        if self._passthrough:
            # Identical to the pre-fault-layer inline path: one service
            # time, one transfer record, one completion event.
            service = self.disk.service_time(file_id, offset, length)
            t0 = self.engine.now
            self.metrics.record_disk_transfer(
                is_write=is_write, t_start=t0, t_end=t0 + service, nbytes=length
            )
            self.engine.schedule(service, on_done, True)
            return
        self._attempt(file_id, offset, length, is_write, on_done, 0, self.engine.now)

    def _attempt(
        self,
        file_id: int,
        offset: int,
        length: int,
        is_write: bool,
        on_done: Callable[[bool], None],
        attempt: int,
        started: float,
    ) -> None:
        cfg = self.config
        stats = self.metrics.faults
        service = self.disk.service_time(file_id, offset, length)
        decision = self.injector.decide()

        if decision.kind is FaultKind.SLOW:
            stats.injected_slowdowns += 1
            # The modelled time already hit the disk's busy counters;
            # charge the spike's stretch as extra device busy time.
            self.disk.add_busy(file_id, service * (decision.slow_factor - 1.0))
            service *= decision.slow_factor

        failed = decision.kind is FaultKind.ERROR
        if failed:
            stats.injected_errors += 1
            latency = service  # the error surfaces after the device gave up
        elif cfg.timeout_s is not None and service > cfg.timeout_s:
            stats.timeouts += 1
            failed = True
            latency = cfg.timeout_s  # the requester abandons at the deadline

        if not failed:
            t0 = self.engine.now
            self.metrics.record_disk_transfer(
                is_write=is_write, t_start=t0, t_end=t0 + service, nbytes=length
            )
            if attempt > 0:
                stats.recovered += 1
                self._h_latency.observe(t0 + service - started)
            self._note_attempts(attempt + 1)
            self.engine.schedule(service, on_done, True)
            return

        if attempt < cfg.max_retries:
            delay = backoff_delay(cfg, attempt, self.injector.uniform())
            stats.retries += 1
            self._h_backoff.observe(delay)
            self.engine.schedule(
                latency + delay,
                self._attempt,
                file_id, offset, length, is_write, on_done, attempt + 1, started,
            )
            return

        # Retries exhausted: report the failure to the cache.
        self._note_attempts(attempt + 1)
        if is_write:
            stats.failed_writes += 1
            stats.failed_write_bytes += length
        else:
            stats.failed_reads += 1
            stats.failed_read_bytes += length
        self.engine.schedule(latency, on_done, False)

    def _note_attempts(self, n: int) -> None:
        if n > self.metrics.faults.max_attempts:
            self.metrics.faults.max_attempts = n
