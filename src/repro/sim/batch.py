"""Run-level batch simulation kernel (``REPRO_ENGINE_IMPL=batch``).

The event engine spends most of a warm-cache run on ceremony: every
trace record whose data is resident costs a dispatch event, a
quantum-slice event, a full cache classification pass and an LRU touch
-- even though the *outcome* of that machinery is fully determined the
moment the record is issued.  This kernel exploits the trace's dominant
regularity (the paper's constant-size sequential runs, exposed by
:meth:`TraceArray.sequential_runs`) to advance whole non-interacting
stretches cheaply while producing **bit-identical results**, digest for
digest, against the event-at-a-time engine.

Two cooperating layers:

* **Chain pump.**  The engine calls :meth:`BatchKernel.pump` between
  calendar events -- never from inside one, so every callback's trailing
  effects (frame-waiter kicks, drain checks, retry bookkeeping) land
  before the next dispatch exactly as they do under the event engine.
  When the next due event is a scheduler dispatch or quantum slice whose
  whole chain completes strictly before the following calendar entry,
  the pump pops it and runs the *real* ``_slice_done`` body inline,
  accounting the elided events through :meth:`Engine.advance_inline` so
  clock, sequence numbers and ``events_run`` (all digest-visible) match
  the event engine bit for bit.  The round-robin alternation of multiple
  CPU-bound processes -- the Figure-8 workload is two venus copies
  sharing one CPU -- proceeds without touching the heap.

* **Resident-read fast path.**  Demand reads whose span is wholly
  resident (and whose read-ahead window holds no absent block, so the
  prefetcher would not issue I/O) skip the cache's allocation machinery:
  :meth:`BatchKernel.try_fast_read` classifies the span against the
  columnar frame tables, commits the hit statistics, prefetch-bit
  clears, LRU touch and stream advance directly, and hands back the hit
  penalty.  Per sequential run it memoises the run's geometry so the
  per-record cost is a few scalar comparisons instead of a fresh numpy
  classification pass.

The kernel **falls back to the event engine** at every interaction
point: another calendar entry (disk completion, flush deadline, fault
cut, async completion, another CPU's slice) due at or before the
emulated horizon, an event budget or tick grid in force, a degraded or
legacy cache, write records, oversized spans, or any block that is not
resident.  Fault injection draws randomness only at device submits,
which resident hits never reach, so batching cannot perturb the
injector's RNG stream.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.sim.cache import BufferCache, _StreamState, _ABSENT, _VALID
from repro.sim.procmodel import TraceProcess, _noop
from repro.util.units import MB


class BatchKernel:
    """Shared per-simulation state for the batch engine."""

    def __init__(self, engine, scheduler, metrics, cache, config, *, obs=None):
        self.engine = engine
        self.scheduler = scheduler
        self.metrics = metrics
        self.cache = cache
        # The fast read path reads the production cache's frame tables
        # directly; any other implementation (legacy) gets the chain
        # pump only.
        self._fast_cache = type(cache) is BufferCache
        # Instruments resolved once at wiring time (the disabled-obs
        # path must stay lookup-free per event, like the rest of sim/).
        reg = obs
        if reg is None:
            from repro.obs.registry import get_registry

            reg = get_registry()
        self._c_chains = reg.counter("sim.batch.chains")
        self._c_events_elided = reg.counter("sim.batch.events_elided")
        self._c_fast_reads = reg.counter("sim.batch.fast_reads")
        self._c_bailouts = reg.counter("sim.batch.bailouts")
        self._c_skipped = reg.counter("sim.batch.fast_reads_skipped")
        # Adaptive guard: on miss-dominated workloads most fast-read
        # attempts fail and their classification pass is pure overhead.
        # When a window of attempts succeeds too rarely the kernel stops
        # *attempting* for a stretch, then probes again.  Skipping an
        # attempt and having it fail are indistinguishable (both take
        # the full cache path), so the guard cannot perturb results.
        self._win_attempts = 0
        self._win_hits = 0
        self.skip_reads = 0
        # Pin the scheduler's event callbacks to single bound-method
        # objects so heap entries can be recognized by identity.
        self._dispatch_fn = scheduler._run_slice
        self._slice_fn = scheduler._slice_done
        scheduler._run_slice = self._dispatch_fn
        scheduler._slice_done = self._slice_fn

    # ------------------------------------------------------------------
    # Chain pump
    # ------------------------------------------------------------------
    def pump(self) -> None:
        """Emulate due scheduler chains between calendar events.

        Called by :meth:`Engine.run` at the top of its loop, where no
        event callback is mid-flight.  Each iteration handles the
        earliest calendar entry when it belongs to the scheduler:

        * a *dispatch* (``_run_slice``) whose quantum slice would end
          strictly before the next calendar entry and within the run's
          ``until`` bound is elided entirely -- the clock jumps to the
          slice end and the real ``_slice_done`` body runs inline
          (consume, busy accounting, preemption or record issue, next
          dispatch).  The dispatch event already consumed its sequence
          number when it was scheduled, so only the never-scheduled
          slice event's is accounted;

        * a *slice expiry* (``_slice_done``) is simply run inline at its
          due time -- it is the next event regardless, and keeping it in
          the pump lets the following dispatch be elided too.

        Everything else -- ties included, conservatively -- returns
        control to the engine loop.
        """
        engine = self.engine
        heap = engine._heap
        if (
            not heap
            or engine.run_max_events is not None
            or engine.tick_s is not None
        ):
            return
        sched = self.scheduler
        dispatch_fn = self._dispatch_fn
        slice_fn = self._slice_fn
        slice_done = self._slice_fn
        cancelled = engine._cancelled
        until = engine.run_until
        config = sched.config
        advance = engine.advance_inline
        pop = heapq.heappop
        push = heapq.heappush
        chains = 0
        elided = 0
        while heap:
            item = heap[0]
            fn = item[2]
            if fn is dispatch_fn:
                when = item[0]
                if when > until or item[1] in cancelled:
                    break
                proc, cpu = item[3]
                slice_s = min(config.quantum_s, proc.compute_remaining())
                if slice_s > 0:
                    t2 = when + slice_s
                    pop(heap)
                    if t2 > until or (heap and t2 >= heap[0][0]):
                        # The slice would land at or past the next
                        # calendar entry (whose callback may change the
                        # ready queue first) or past the run bound; put
                        # the dispatch back for the real machinery.
                        push(heap, item)
                        self._c_bailouts.inc()
                        break
                    # Dispatch event ran (seq already allocated at
                    # schedule time) + slice event ran (never
                    # scheduled): two events, one fresh seq.
                    advance(t2, 2, 1)
                    chains += 1
                    elided += 2
                    slice_done(proc, cpu, slice_s)
                else:
                    # Zero compute: the real chain is the dispatch event
                    # alone, with the slice-done body inline at its time.
                    pop(heap)
                    advance(when, 1, 0)
                    chains += 1
                    elided += 1
                    slice_done(proc, cpu, 0.0)
            elif fn is slice_fn:
                when = item[0]
                if when > until or item[1] in cancelled:
                    break
                pop(heap)
                advance(when, 1, 0)
                elided += 1
                proc, cpu, slice_s = item[3]
                slice_done(proc, cpu, slice_s)
            else:
                break
        if chains:
            self._c_chains.inc(chains)
        if elided:
            self._c_events_elided.inc(elided)

    # ------------------------------------------------------------------
    # Resident-read fast path
    # ------------------------------------------------------------------
    def try_fast_read(self, file_id: int, offset: int, length: int):
        """Commit a fully-resident demand read scalar-side.

        Returns the hit penalty to hand to ``on_complete``, or None when
        the record needs the full cache path (miss, inflight block,
        oversized span, degraded mode, a frame table that would grow, or
        a prefetch that would issue).  Simulated time is untouched --
        this replaces only :meth:`BufferCache.read`'s classification
        machinery with its precomputed outcome, so it is valid even
        while other processes contend for the CPU.
        """
        cache = self.cache
        if not self._fast_cache or cache.degraded or length <= 0:
            return None
        if self.skip_reads > 0:
            self.skip_reads -= 1
            self._c_skipped.inc()
            return None
        penalty = self._classify_and_commit(cache, file_id, offset, length)
        self._win_attempts += 1
        if penalty is not None:
            self._win_hits += 1
            self._c_fast_reads.inc()
        if self._win_attempts >= 32:
            # Below ~38% success the attempt overhead outweighs the
            # saved classification passes; back off for a stretch.
            if self._win_hits * 8 < self._win_attempts * 3:
                self.skip_reads = 160
            self._win_attempts = 0
            self._win_hits = 0
        return penalty

    def _classify_and_commit(self, cache, file_id, offset, length):
        cfg = cache.config
        file_end = cache._file_sizes.get(file_id, 0)
        end = offset + length
        if end > file_end:
            return None  # would extend the inode; leave to the real path
        frames = cache._files.get(file_id)
        if frames is None:
            return None
        bs = cfg.block_bytes
        a = offset // bs
        b = (end - 1) // bs
        st = frames.st
        if b >= st.size:
            return None
        nb = b - a + 1
        if nb > cfg.n_blocks:
            return None
        cap = cfg.max_blocks_per_process
        if cap is not None and nb > cap:
            return None
        seg = st[a:b + 1]
        if seg.min() < _VALID:
            return None  # an absent or in-flight block in the span
        stream = None
        matched = False
        advance = False
        we = 0
        if cfg.read_ahead:
            stream = cache._streams.get(file_id)
            matched = stream is not None and offset == stream.next_offset
            if matched:
                we = end + cfg.auto_depth(length) * length
                if we > file_end:
                    we = file_end
                start = stream.prefetch_until
                if start < end:
                    start = end
                if start < we:
                    wlast = (we - 1) // bs
                    if wlast >= st.size:
                        return None
                    if st[start // bs:wlast + 1].min() == _ABSENT:
                        return None
                    advance = True
        # ---- commit --------------------------------------------------
        stats = cache._stats
        stats.read_requests += 1
        stats.read_bytes += length
        self.metrics.demand_series.add(self.engine.now, length / MB)
        stats.block_hits += nb
        pfseg = frames.pf[a:b + 1]
        npf = int(np.count_nonzero(pfseg))
        if npf:
            stats.readahead_hits += npf
            frames.pf[a:b + 1] = False
        if seg.max() == _VALID:
            # No dirty/flushing block in the span: every frame is clean
            # and the touch covers the whole range.
            cache._clean_touch(frames, np.arange(a, b + 1))
        else:
            touched = np.flatnonzero(seg == _VALID) + a
            if touched.size:
                cache._clean_touch(frames, touched)
        if cfg.read_ahead:
            if matched:
                stream.next_offset = end
                stream.length = length
                if advance:
                    # No absent block in the window, so the prefetcher
                    # marches straight to window_end without issuing.
                    stream.prefetch_until = we
            else:
                cache._streams[file_id] = _StreamState(
                    next_offset=end, length=length
                )
        return cfg.hit_penalty_s(length)


class BatchTraceProcess(TraceProcess):
    """A :class:`TraceProcess` whose reads consult the kernel first.

    Only :meth:`_submit` is overridden: demand reads are offered to the
    fast path and fall back to the full cache untouched.  The replay
    loop, blocking discipline and accounting are the base class's.
    """

    def __init__(self, *args, kernel: BatchKernel, **kwargs):
        super().__init__(*args, **kwargs)
        self._kernel = kernel

    def _submit(self, file_id, offset, length, is_write, on_done) -> None:
        if not is_write:
            penalty = self._kernel.try_fast_read(file_id, offset, length)
            if penalty is not None:
                (on_done if on_done is not None else _noop)(penalty)
                return
        callback = on_done if on_done is not None else _noop
        if is_write:
            self.cache.write(file_id, offset, length, self.process_id, callback)
        else:
            self.cache.read(file_id, offset, length, self.process_id, callback)
