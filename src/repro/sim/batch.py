"""Run-level batch simulation kernel (``REPRO_ENGINE_IMPL=batch``).

The event engine spends most of a warm-cache run on ceremony: every
trace record whose data is resident costs a dispatch event, a
quantum-slice event, a full cache classification pass and an LRU touch
-- even though the *outcome* of that machinery is fully determined the
moment the record is issued.  This kernel exploits the trace's dominant
regularity (the paper's constant-size sequential runs, exposed by
:meth:`TraceArray.sequential_runs`) to advance whole non-interacting
stretches cheaply while producing **bit-identical results**, digest for
digest, against the event-at-a-time engine.

Four cooperating layers:

* **Chain pump.**  The engine calls :meth:`BatchKernel.pump` between
  calendar events -- never from inside one, so every callback's trailing
  effects (frame-waiter kicks, drain checks, retry bookkeeping) land
  before the next dispatch exactly as they do under the event engine.
  When the next due event is a scheduler dispatch or quantum slice whose
  whole chain completes strictly before the following calendar entry,
  the pump pops it and runs the *real* ``_slice_done`` body inline,
  accounting the elided events through :meth:`Engine.advance_inline` so
  clock, sequence numbers and ``events_run`` (all digest-visible) match
  the event engine bit for bit.  The round-robin alternation of multiple
  CPU-bound processes -- the Figure-8 workload is two venus copies
  sharing one CPU -- proceeds without touching the heap.

* **Run-level resident-read fast path.**  Demand reads whose span is
  wholly resident (and whose read-ahead window holds no absent block, so
  the prefetcher would not issue I/O) skip the cache's allocation
  machinery: :meth:`BatchKernel.try_fast_read` classifies the span
  against the columnar frame tables, commits the hit statistics,
  prefetch-bit clears, LRU touch and stream advance directly, and hands
  back the hit penalty.  Classification is *per run*, not per record:
  when a record opens a per-file sequential run
  (:meth:`TraceArray.stream_run_ends`), one vectorized pass over the
  frame table bounds how far the run stays clean-resident
  (``resident_until``), where the first absent block sits (the bound the
  read-ahead window must not cross), and which blocks carry prefetch
  bits.  The bounds are memoised against :attr:`BufferCache.epoch` -- a
  mutation counter every slow-path operation bumps -- so each subsequent
  record of the run commits with a handful of scalar comparisons, no
  numpy classification at all.  The kernel's read commits deliberately
  do not bump the epoch: between bumps the frame states it cached cannot
  change, because evictions, settles, dirtying and prefetch issue all
  live on the slow paths.

* **Run-level write fast path.**  Sequential write-behind records whose
  span is already framed -- or framable from the free pool without
  eviction -- absorb directly into the columnar frame tables
  (:meth:`BatchKernel.try_fast_write`): dirty bits, write-behind queue
  accounting, delayed-flush registration and stats all commit inline,
  with flush *submission* always delegated to the cache so device
  ordering and the fault injector's RNG stream are untouched.  The write
  memo carries a conservative budget: how many records can still absorb
  before one could trigger eviction, a flush deadline, or a policy
  interaction (write-through, degraded mode) -- the kernel falls back to
  :meth:`BufferCache.write` exactly there.  Absorbed writes must bump
  the epoch (they dirty frames); an *epoch-trust chain*
  (:meth:`BatchKernel._memo_fresh`) recognises the epochs the kernel
  itself advanced through benign writes, so one file's write run does
  not invalidate every other file's memo.

* **Vectorized whole-run commit.**  When a clean-resident read run is
  long enough (:attr:`BatchTraceProcess._bulk_eligible` gates in O(1)),
  :meth:`BatchKernel._try_bulk` classifies and commits the entire run in
  one NumPy pass -- bulk LRU-generation touch, bulk prefetch-bit clear,
  summed hit stats, `np.add.at` into the binned rate series -- and a
  single :meth:`Engine.advance_inline` covers every elided event, so the
  event engine is entered once per *interaction point* rather than once
  per record.

The kernel **falls back to the event engine** at every interaction
point: another calendar entry (disk completion, flush deadline, fault
cut, async completion, another CPU's slice) due at or before the
emulated horizon, an event budget or tick grid in force, a degraded or
legacy cache, write-through or eviction-requiring writes, oversized
spans, or any block that is not resident.  Fault injection draws
randomness only at device submits, which absorbed hits and dirtied
frames never reach, so batching cannot perturb the injector's RNG
stream.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_right

import numpy as np

from repro.sim.cache import (
    BufferCache, _Run, _StreamState, _ABSENT, _DIRTY, _VALID,
)
from repro.sim.procmodel import TraceProcess, _noop
from repro.util.units import MB


class _RunMemo:
    """Cached classification bounds for one file's active run.

    Valid while :attr:`BufferCache.epoch` equals :attr:`epoch`; see
    :meth:`BatchKernel._build_memo` for the field semantics.  Plain
    attribute record -- every field is assigned exactly once at build
    time except the rolling ``next_off`` / ``pf_ptr`` cursors.
    """

    __slots__ = (
        "epoch", "next_off", "length", "resident_until", "first_absent",
        "depth_bytes", "file_end", "nb_limit", "pf_pos", "pf_ptr",
        "frames", "stream",
    )


class _WriteMemo:
    """Cached classification bounds for one file's active *write* run.

    Valid while :attr:`BufferCache.epoch` equals :attr:`epoch`.  Unlike
    the read memo, the kernel's own write commits do mutate frame state
    (dirtying, flush hand-off) and therefore bump the epoch; the memo is
    resynchronized after each commit, which is sound because nothing
    foreign can run in between -- device completions and delayed-flush
    deadlines are always scheduled asynchronously.

    ``absorb_until`` is the byte bound up to which the run keeps its
    classification: for an allocating run (``alloc``), the first frame
    that is not absent -- dirtying past it touches resident data the
    slow path must arbitrate; for an overwrite run, the first frame that
    *is* absent.  ``budget`` counts the frames still allocatable before
    eviction or an ownership-cap recycle would trigger -- the first
    record to exceed it falls back to :meth:`BufferCache.write` exactly
    there.  ``prev_last`` is the previous record's last block: a
    non-aligned run re-dirties that boundary block, which the kernel
    itself made resident, so it is excluded from the absent span.
    """

    __slots__ = (
        "epoch", "next_off", "length", "absorb_until", "alloc",
        "budget", "prev_last", "owner", "frames",
    )


class BatchKernel:
    """Shared per-simulation state for the batch engine."""

    def __init__(self, engine, scheduler, metrics, cache, config, *, obs=None):
        self.engine = engine
        self.scheduler = scheduler
        self.metrics = metrics
        self.cache = cache
        # The fast read path reads the production cache's frame tables
        # directly; any other implementation (legacy) gets the chain
        # pump only.
        self._fast_cache = type(cache) is BufferCache
        # Instruments resolved once at wiring time (the disabled-obs
        # path must stay lookup-free per event, like the rest of sim/).
        reg = obs
        if reg is None:
            from repro.obs.registry import get_registry

            reg = get_registry()
        self._c_chains = reg.counter("sim.batch.chains")
        self._c_events_elided = reg.counter("sim.batch.events_elided")
        self._c_fast_reads = reg.counter("sim.batch.fast_reads")
        self._c_bailouts = reg.counter("sim.batch.bailouts")
        self._c_skipped = reg.counter("sim.batch.fast_reads_skipped")
        self._c_runs = reg.counter("sim.batch.runs_fast_pathed")
        self._c_fallback = reg.counter("sim.batch.events_fallback")
        self._c_fast_writes = reg.counter("sim.batch.fast_writes")
        self._c_write_bailouts = reg.counter("sim.batch.write_bailouts")
        self._c_bulk = reg.counter("sim.batch.runs_bulk_committed")
        #: per-file run memos, valid while ``cache.epoch`` is unchanged
        self._memos: dict[int, _RunMemo] = {}
        #: per-file write-run memos (resynced past the kernel's own bumps)
        self._wmemos: dict[int, _WriteMemo] = {}
        # Epoch-trust chain: every fast-write commit bumps the cache
        # epoch, which would strand every other file's memo even though
        # an eviction-free write cannot change another file's frame
        # states, stream, or prefetch bits (it only consumes free
        # frames, which _note_benign_bump charges against the other
        # write memos' budgets).  While ``cache.epoch == _epoch_trust``
        # every bump in ``(_epoch_floor, _epoch_trust]`` is such a
        # benign kernel-own commit, and a memo is still fresh when it
        # was built inside the window and postdates the last benign
        # write to its own file (``_wtouched``).  Any foreign bump --
        # device completion, flush deadline, slow-path read or write --
        # breaks the chain because only the kernel moves ``_epoch_trust``.
        self._epoch_trust = -1
        self._epoch_floor = -1
        self._wtouched: dict[int, int] = {}
        # Adaptive guard: on miss-dominated workloads most fast-read
        # attempts fail and their classification pass is pure overhead.
        # When a window of attempts succeeds too rarely the kernel stops
        # *attempting* for a stretch, then probes again.  Skipping an
        # attempt and having it fail are indistinguishable (both take
        # the full cache path), so the guard cannot perturb results.
        self._win_attempts = 0
        self._win_hits = 0
        self.skip_reads = 0
        self._wwin_attempts = 0
        self._wwin_hits = 0
        self.skip_writes = 0
        # Pin the scheduler's event callbacks to single bound-method
        # objects so heap entries can be recognized by identity.
        self._dispatch_fn = scheduler._run_slice
        self._slice_fn = scheduler._slice_done
        scheduler._run_slice = self._dispatch_fn
        scheduler._slice_done = self._slice_fn

    # ------------------------------------------------------------------
    # Chain pump
    # ------------------------------------------------------------------
    def pump(self) -> None:
        """Emulate due scheduler chains between calendar events.

        Called by :meth:`Engine.run` at the top of its loop, where no
        event callback is mid-flight.  Each iteration handles the
        earliest calendar entry when it belongs to the scheduler:

        * a *dispatch* (``_run_slice``) whose quantum slice would end
          strictly before the next calendar entry and within the run's
          ``until`` bound is elided entirely -- the clock jumps to the
          slice end and the real ``_slice_done`` body runs inline
          (consume, busy accounting, preemption or record issue, next
          dispatch).  The dispatch event already consumed its sequence
          number when it was scheduled, so only the never-scheduled
          slice event's is accounted;

        * a *slice expiry* (``_slice_done``) is simply run inline at its
          due time -- it is the next event regardless, and keeping it in
          the pump lets the following dispatch be elided too.

        Everything else -- ties included, conservatively -- returns
        control to the engine loop.
        """
        engine = self.engine
        heap = engine._heap
        if (
            not heap
            or engine.run_max_events is not None
            or engine.tick_s is not None
        ):
            return
        sched = self.scheduler
        dispatch_fn = self._dispatch_fn
        slice_fn = self._slice_fn
        slice_done = self._slice_fn
        cancelled = engine._cancelled
        until = engine.run_until
        config = sched.config
        advance = engine.advance_inline
        pop = heapq.heappop
        chains = 0
        elided = 0
        while heap:
            item = heap[0]
            fn = item[2]
            if fn is dispatch_fn:
                when = item[0]
                if when > until or item[1] in cancelled:
                    break
                proc, cpu = item[3]
                slice_s = min(config.quantum_s, proc.compute_remaining())
                if slice_s > 0:
                    if self._memos:
                        j = self._try_bulk(proc, cpu, when, until)
                        if j:
                            chains += j
                            elided += 2 * j
                            continue
                    t2 = when + slice_s
                    if t2 > until:
                        self._c_bailouts.inc()
                        break
                    # The next calendar entry after the root is the
                    # smaller root child -- enough to bound the slice
                    # without popping (and re-pushing on bailout).
                    n_heap = len(heap)
                    if n_heap > 1:
                        nxt = heap[1][0]
                        if n_heap > 2 and heap[2][0] < nxt:
                            nxt = heap[2][0]
                        if t2 >= nxt:
                            # The slice would land at or past the next
                            # calendar entry, whose callback may change
                            # the ready queue first; leave the dispatch
                            # for the real machinery.
                            self._c_bailouts.inc()
                            break
                    pop(heap)
                    # Dispatch event ran (seq already allocated at
                    # schedule time) + slice event ran (never
                    # scheduled): two events, one fresh seq.
                    advance(t2, 2, 1)
                    chains += 1
                    elided += 2
                    slice_done(proc, cpu, slice_s)
                else:
                    # Zero compute: the real chain is the dispatch event
                    # alone, with the slice-done body inline at its time.
                    pop(heap)
                    advance(when, 1, 0)
                    chains += 1
                    elided += 1
                    slice_done(proc, cpu, 0.0)
            elif fn is slice_fn:
                when = item[0]
                if when > until or item[1] in cancelled:
                    break
                pop(heap)
                advance(when, 1, 0)
                elided += 1
                proc, cpu, slice_s = item[3]
                slice_done(proc, cpu, slice_s)
            else:
                break
        if chains:
            self._c_chains.inc(chains)
        if elided:
            self._c_events_elided.inc(elided)

    # ------------------------------------------------------------------
    # Epoch-trust chain
    # ------------------------------------------------------------------
    def _memo_fresh(self, memo, file_id: int) -> bool:
        """True when a stale-epoch memo is still provably valid.

        Holds when every bump since the memo's epoch came from this
        kernel's own eviction-free write commits (the trust chain is
        unbroken) to files other than ``file_id`` -- a write to the
        memo's own file changes the very frame states the memo bounds.
        Resynchronizes the memo's epoch on success so the next check is
        a single comparison.
        """
        if (
            self.cache.epoch == self._epoch_trust
            and memo.epoch >= self._epoch_floor
            and memo.epoch >= self._wtouched.get(file_id, -1)
        ):
            memo.epoch = self.cache.epoch
            return True
        return False

    def _note_benign_bump(self, file_id: int, pre_epoch: int,
                          allocated: int) -> None:
        """Record a fast-write commit in the epoch-trust chain.

        ``pre_epoch`` is the cache epoch captured before the commit's
        mutations; if it does not match the chain head, something
        foreign ran since the last fast write and the trust window
        restarts there.  ``allocated`` free frames were consumed, which
        shrinks every *other* write memo's eviction-free budget (their
        own commits already maintain theirs); the cap component of
        those budgets is per-owner and untouched, so the deduction is
        conservative.
        """
        epoch = self.cache.epoch
        if pre_epoch != self._epoch_trust:
            self._epoch_floor = pre_epoch
        self._epoch_trust = epoch
        self._wtouched[file_id] = epoch
        if allocated:
            for fid, m in self._wmemos.items():
                if fid != file_id:
                    m.budget -= allocated

    # ------------------------------------------------------------------
    # Resident-read fast path
    # ------------------------------------------------------------------
    def try_fast_read(self, file_id: int, offset: int, length: int,
                      run_end: int = 0):
        """Commit a fully-resident demand read scalar-side.

        Returns the hit penalty to hand to ``on_complete``, or None when
        the record needs the full cache path (miss, inflight block,
        oversized span, degraded mode, a frame table that would grow, or
        a prefetch that would issue).  Simulated time is untouched --
        this replaces only :meth:`BufferCache.read`'s classification
        machinery with its precomputed outcome, so it is valid even
        while other processes contend for the CPU.

        ``run_end`` is the exclusive byte end of the record's per-file
        sequential run (:meth:`TraceArray.stream_run_ends`).  When it
        reaches past this record, a successful classification also
        memoises the remaining span's bounds so the run's later records
        commit through :meth:`_commit_from_memo` without a numpy pass.
        """
        cache = self.cache
        if not self._fast_cache or cache.degraded or length <= 0:
            self._c_fallback.inc()
            return None
        memo = self._memos.get(file_id)
        if memo is not None:
            if (
                offset == memo.next_off
                and length == memo.length
                and (memo.epoch == cache.epoch
                     or self._memo_fresh(memo, file_id))
            ):
                penalty = self._commit_from_memo(cache, memo, file_id,
                                                 offset, length)
                if penalty is not None:
                    self._c_fast_reads.inc()
                    return penalty
            else:
                # Stale (a foreign mutation bumped the epoch) or the
                # stream seeked away; rebuild on the next classify.
                del self._memos[file_id]
        if self.skip_reads > 0:
            self.skip_reads -= 1
            self._c_skipped.inc()
            self._c_fallback.inc()
            return None
        penalty = self._classify_and_commit(cache, file_id, offset, length)
        self._win_attempts += 1
        if penalty is not None:
            self._win_hits += 1
            self._c_fast_reads.inc()
            end = offset + length
            if run_end > end:
                self._build_memo(cache, file_id, end, length, run_end)
        else:
            self._c_fallback.inc()
        if self._win_attempts >= 32:
            # Below ~38% success the attempt overhead outweighs the
            # saved classification passes; back off for a stretch.
            if self._win_hits * 8 < self._win_attempts * 3:
                self.skip_reads = 160
            self._win_attempts = 0
            self._win_hits = 0
        return penalty

    def _build_memo(self, cache, file_id, next_off, length, run_end):
        """One vectorized pass bounding how far the run stays fast.

        Scans the frame table once over the run's remaining span plus
        the widest read-ahead window any of its records can open, and
        records three byte bounds:

        * ``resident_until`` -- records ending at or before it cover
          only clean-``VALID`` blocks (a dirty or in-flight block
          truncates it; those records fall back to per-record
          classification, which handles mixed spans);
        * ``first_absent`` -- the first absent block's offset (or the
          frame-table end, which the per-record path also treats as a
          bail); a record whose read-ahead window would cross it must
          take the slow path so the prefetcher can issue;
        * the positions of set prefetch bits inside the resident span,
          consumed by a pointer walk as records commit.

        All bounds are immutable while ``cache.epoch`` holds, because
        every operation that can change them bumps it.
        """
        frames = cache._files.get(file_id)
        if frames is None:
            return
        cfg = cache.config
        file_end = cache._file_sizes.get(file_id, 0)
        span_end = run_end if run_end <= file_end else file_end
        if span_end < next_off + length:
            return  # the rest of the run would extend the inode
        bs = cfg.block_bytes
        st = frames.st
        a = next_off // bs
        read_ahead = cfg.read_ahead
        stream = None
        depth_bytes = 0
        wmax = span_end
        if read_ahead:
            stream = cache._streams.get(file_id)
            if stream is None or stream.next_offset != next_off:
                return
            depth_bytes = cfg.auto_depth(length) * length
            wmax = span_end + depth_bytes
            if wmax > file_end:
                wmax = file_end
        table_bytes = st.size * bs
        scan_last = (wmax - 1) // bs  # inclusive
        bounded = scan_last < st.size
        if not bounded:
            scan_last = st.size - 1
        if scan_last < a:
            return
        seg = st[a:scan_last + 1]
        bad = np.flatnonzero(seg != _VALID)
        if bad.size:
            resident_until = (a + int(bad[0])) * bs
            absent_rel = bad[seg[bad] == _ABSENT]
            if absent_rel.size:
                first_absent = (a + int(absent_rel[0])) * bs
            else:
                first_absent = wmax + 1 if bounded else table_bytes
        else:
            resident_until = (scan_last + 1) * bs
            first_absent = wmax + 1 if bounded else table_bytes
        if resident_until > span_end:
            resident_until = span_end
        if resident_until < next_off + length:
            return  # not even one more record commits fast
        rb = (resident_until - 1) // bs
        pf_rel = np.flatnonzero(frames.pf[a:rb + 1])
        nb_limit = cfg.n_blocks
        cap = cfg.max_blocks_per_process
        if cap is not None and cap < nb_limit:
            nb_limit = cap
        memo = _RunMemo()
        memo.epoch = cache.epoch
        memo.next_off = next_off
        memo.length = length
        memo.resident_until = resident_until
        memo.first_absent = first_absent
        memo.depth_bytes = depth_bytes
        memo.file_end = file_end
        memo.nb_limit = nb_limit
        memo.pf_pos = (pf_rel + a).tolist()
        memo.pf_ptr = 0
        memo.frames = frames
        memo.stream = stream
        self._memos[file_id] = memo
        self._c_runs.inc()

    def _commit_from_memo(self, cache, memo, file_id, offset, length):
        """Scalar-side commit of one run record against its memo.

        Mirrors :meth:`_classify_and_commit`'s all-clean commit branch;
        the checks that remain per record (span within the resident
        bound, block-count caps, the read-ahead window against the first
        absent block) are plain integer comparisons.
        """
        end = offset + length
        if end > memo.resident_until:
            del self._memos[file_id]
            return None
        cfg = cache.config
        bs = cfg.block_bytes
        a = offset // bs
        b = (end - 1) // bs
        if b - a + 1 > memo.nb_limit:
            del self._memos[file_id]
            return None
        stream = memo.stream
        advance = False
        we = 0
        if stream is not None:
            we = end + memo.depth_bytes
            if we > memo.file_end:
                we = memo.file_end
            start = stream.prefetch_until
            if start < end:
                start = end
            if start < we:
                if we > memo.first_absent:
                    # The window reaches an absent block (or runs off
                    # the frame table): the prefetcher must issue, which
                    # only the full path may do.
                    del self._memos[file_id]
                    return None
                advance = True
        # ---- commit (identical effects to the classify path) ---------
        frames = memo.frames
        stats = cache._stats
        stats.read_requests += 1
        stats.read_bytes += length
        self.metrics.demand_series.add(self.engine.now, length / MB)
        stats.block_hits += b - a + 1
        pf_pos = memo.pf_pos
        p = memo.pf_ptr
        if p < len(pf_pos) and pf_pos[p] <= b:
            q = p + 1
            n_pf = len(pf_pos)
            while q < n_pf and pf_pos[q] <= b:
                q += 1
            stats.readahead_hits += q - p
            frames.pf[a:b + 1] = False
            memo.pf_ptr = q
        cache._clean_touch(frames, np.arange(a, b + 1))
        if stream is not None:
            stream.next_offset = end
            stream.length = length
            if advance:
                stream.prefetch_until = we
        memo.next_off = end
        return cfg.hit_penalty_s(length)

    def _classify_and_commit(self, cache, file_id, offset, length):
        cfg = cache.config
        file_end = cache._file_sizes.get(file_id, 0)
        end = offset + length
        if end > file_end:
            return None  # would extend the inode; leave to the real path
        frames = cache._files.get(file_id)
        if frames is None:
            return None
        bs = cfg.block_bytes
        a = offset // bs
        b = (end - 1) // bs
        st = frames.st
        if b >= st.size:
            return None
        nb = b - a + 1
        if nb > cfg.n_blocks:
            return None
        cap = cfg.max_blocks_per_process
        if cap is not None and nb > cap:
            return None
        seg = st[a:b + 1]
        if seg.min() < _VALID:
            return None  # an absent or in-flight block in the span
        stream = None
        matched = False
        advance = False
        we = 0
        if cfg.read_ahead:
            stream = cache._streams.get(file_id)
            matched = stream is not None and offset == stream.next_offset
            if matched:
                we = end + cfg.auto_depth(length) * length
                if we > file_end:
                    we = file_end
                start = stream.prefetch_until
                if start < end:
                    start = end
                if start < we:
                    wlast = (we - 1) // bs
                    if wlast >= st.size:
                        return None
                    if st[start // bs:wlast + 1].min() == _ABSENT:
                        return None
                    advance = True
        # ---- commit --------------------------------------------------
        stats = cache._stats
        stats.read_requests += 1
        stats.read_bytes += length
        self.metrics.demand_series.add(self.engine.now, length / MB)
        stats.block_hits += nb
        pfseg = frames.pf[a:b + 1]
        npf = int(np.count_nonzero(pfseg))
        if npf:
            stats.readahead_hits += npf
            frames.pf[a:b + 1] = False
        if seg.max() == _VALID:
            # No dirty/flushing block in the span: every frame is clean
            # and the touch covers the whole range.
            cache._clean_touch(frames, np.arange(a, b + 1))
        else:
            touched = np.flatnonzero(seg == _VALID) + a
            if touched.size:
                cache._clean_touch(frames, touched)
        if cfg.read_ahead:
            if matched:
                stream.next_offset = end
                stream.length = length
                if advance:
                    # No absent block in the window, so the prefetcher
                    # marches straight to window_end without issuing.
                    stream.prefetch_until = we
            else:
                cache._streams[file_id] = _StreamState(
                    next_offset=end, length=length
                )
        return cfg.hit_penalty_s(length)

    # ------------------------------------------------------------------
    # Vectorized whole-run commit
    # ------------------------------------------------------------------
    # Fewer records than this and the planning pass costs more than the
    # per-record machinery it elides; more than _MAX_BULK and the numpy
    # temporaries stop fitting comfortably in cache.
    _MIN_BULK = 6
    _MAX_BULK = 2048

    def _bulk_plan(self, p):
        """Per-process bulk candidacy for the record at its cursor.

        Returns ``(memo, cursor, off0, length, mcap, d)`` or None.
        ``mcap`` is the number of consecutive records provably
        committable against the run memo (row-adjacent same-shape reads,
        span within the memo's resident and read-ahead bounds).  ``d``
        has ``mcap + 1`` entries: ``d[0]`` is the process's current
        pending compute and ``d[j]`` the compute it will owe after
        issuing record ``cursor + j - 1`` -- built with the scalar
        path's exact float association, ``(delta + fs) + penalty``,
        penalty elided for async records (their completion callback is a
        no-op).
        """
        cache = self.cache
        c = p._cursor
        fid = p._file_ids[c]
        if p._writes[c]:
            return None
        memo = self._memos.get(fid)
        if memo is None or (
            memo.epoch != cache.epoch and not self._memo_fresh(memo, fid)
        ):
            return None
        off0 = p._offsets[c]
        L = p._lengths[c]
        if memo.next_off != off0 or memo.length != L or L <= 0:
            return None
        cfg = cache.config
        if L // cfg.block_bytes + 1 > memo.nb_limit:
            return None  # a record could exceed the span cap mid-run
        bb = memo.resident_until
        if memo.stream is not None and memo.file_end > memo.first_absent:
            t = memo.first_absent - memo.depth_bytes
            if t < bb:
                bb = t  # past this, a read-ahead window must issue
        mcap = int(p._row_run_end[c]) - c
        km = (bb - off0) // L
        if km < mcap:
            mcap = int(km)
        if mcap > self._MAX_BULK:
            mcap = self._MAX_BULK
        if mcap < 1:
            return None
        fs = p._fs_overhead_s
        pen = cfg.hit_penalty_s(L)
        n = p._n_records
        d = np.empty(mcap + 1)
        d[0] = p._pending_compute
        hi = c + mcap + 1
        if hi <= n:
            body = p._np_deltas[c + 1:hi] + fs
        else:
            body = np.concatenate((p._np_deltas[c + 1:n], [0.0])) + fs
        body[~p._np_asyncs[c:c + mcap]] += pen
        d[1:] = body
        return memo, c, off0, L, mcap, d

    def _bulk_commit_proc(self, p, memo, c, off0, L, m):
        """Cache-side and replay-state effects of ``m`` run records.

        Mirrors ``m`` consecutive :meth:`_commit_from_memo` calls minus
        the LRU touches (the caller orders those) and the time-dependent
        series adds (the caller vectorizes those against the slice-end
        times).  Returns the per-record block bounds for both.
        """
        cache = self.cache
        bs = cache.config.block_bytes
        offs = off0 + L * np.arange(m, dtype=np.int64)
        a = offs // bs
        b = (offs + (L - 1)) // bs
        frames = memo.frames
        stats = cache._stats
        stats.read_requests += m
        stats.read_bytes += m * L
        stats.block_hits += int((b - a).sum()) + m
        b_last = int(b[-1])
        pf_pos = memo.pf_pos
        ptr = memo.pf_ptr
        if ptr < len(pf_pos) and pf_pos[ptr] <= b_last:
            q = bisect_right(pf_pos, b_last, ptr)
            stats.readahead_hits += q - ptr
            frames.pf[int(a[0]):b_last + 1] = False
            memo.pf_ptr = q
        end_last = int(offs[-1]) + L
        stream = memo.stream
        if stream is not None:
            stream.next_offset = end_last
            stream.length = L
            if memo.depth_bytes > 0:
                # Monotone window growth: the final prefetch mark equals
                # the last record's window end (the per-record advances
                # only ratchet toward it); with depth 0 no record ever
                # opens a window, so the mark must not move.
                we = end_last + memo.depth_bytes
                if we > memo.file_end:
                    we = memo.file_end
                if stream.prefetch_until < we:
                    stream.prefetch_until = we
        memo.next_off = end_last
        p._cursor = c + m
        p._pstats.n_ios += m
        return a, b, frames

    def _try_bulk(self, proc, cpu, when, until):
        """Classify and commit a whole clean-resident run in one pass.

        Emulates the full dispatch/slice/issue cycle for up to
        ``_MAX_BULK`` consecutive resident-read records -- solo, or two
        processes in strict round-robin alternation on one CPU -- and
        enters the event engine once, at the final slice end.  Every
        accumulator (clock, busy time, per-process CPU, binned series)
        is advanced with the exact float association the scalar path
        uses: running sums via ``np.cumsum`` (sequential accumulation),
        binned adds via ``np.add.at`` (unbuffered, in-order).  Declines
        (returning 0) whenever any cycle could deviate: another calendar
        entry before the final slice end, a slice that would hit quantum
        expiry, a busy interval crossing a bin boundary, or a record
        past the run memo's bounds.
        """
        if type(proc) is not BatchTraceProcess:
            return 0
        if not proc._bulk_eligible[proc._cursor]:
            return 0
        if not self._fast_cache or self.cache.degraded:
            return 0
        sched = self.scheduler
        ready = sched._ready
        nready = len(ready)
        if nready == 0:
            other = None
        elif nready == 1:
            other = ready[0]
            if type(other) is not BatchTraceProcess:
                return 0
            if not other._bulk_eligible[other._cursor]:
                return 0
        else:
            return 0
        plan0 = self._bulk_plan(proc)
        if plan0 is None:
            return 0
        memo0, c0, off0, L0, mcap0, d0 = plan0
        config = sched.config
        quantum = config.quantum_s
        min_bulk = self._MIN_BULK
        bad = np.flatnonzero((d0[:mcap0] <= 0.0) | (d0[:mcap0] > quantum))
        v0 = int(bad[0]) if bad.size else mcap0
        if other is not None:
            plan1 = self._bulk_plan(other)
            if plan1 is None:
                return 0
            memo1, c1, off1, L1, mcap1, d1 = plan1
            if memo1 is memo0:
                return 0  # same file: the two streams would interleave
            bad = np.flatnonzero((d1[:mcap1] <= 0.0) | (d1[:mcap1] > quantum))
            v1 = int(bad[0]) if bad.size else mcap1
            j_max = min(2 * v0, 2 * v1 + 1)
            sw = config.switch_overhead_s
        else:
            j_max = v0
            sw = 0.0
        if j_max < min_bulk:
            return 0
        # Interleaved slice sequence and the exact event-time chain:
        # e_k = ((e_{k-1} + sw) + d_k), reproduced by one sequential
        # cumsum over [when, d_1, sw, d_2, sw, ...].
        if other is not None:
            ds = np.empty(j_max)
            ds[0::2] = d0[:(j_max + 1) // 2]
            ds[1::2] = d1[:j_max // 2]
        else:
            ds = d0[:j_max]
        x = np.empty(2 * j_max)
        x[0] = when
        x[1::2] = ds
        x[2::2] = sw
        cs = np.cumsum(x)
        e = cs[1::2]
        # Time horizon: the per-record pump bails at t2 > until or
        # t2 >= next-entry; the next entry after our dispatch is the
        # smaller root child (the dispatch itself still heads the heap).
        heap = self.engine._heap
        if len(heap) >= 3:
            horizon = min(heap[1][0], heap[2][0])
        elif len(heap) == 2:
            horizon = heap[1][0]
        else:
            horizon = math.inf
        j = int(min(
            np.searchsorted(e, until, side="right"),
            np.searchsorted(e, horizon, side="left"),
            j_max,
        ))
        if j < min_bulk:
            return 0
        # Busy spreads must stay single-bin: add_spread's multi-segment
        # loop has its own rounding, so a slice crossing a bin edge
        # falls back to the per-record path.
        metrics = self.metrics
        busy = metrics.busy_series
        t0b = busy.t0
        bw = busy.bin_width
        tst = e[:j] - ds[:j]
        w = e[:j] - tst
        bi = ((tst - t0b) / bw).astype(np.int64)
        be = t0b + (bi + 1) * bw
        low = be <= tst
        if low.any():
            be = np.where(low, t0b + (bi + 2) * bw, be)
        cross = np.flatnonzero((w > 0.0) & (be < e[:j]))
        if cross.size:
            j = int(cross[0])
        # The cycle after the last record must owe compute, else its
        # slice-done would chain the next issue inside the same event.
        while j >= min_bulk:
            if other is None:
                nxt = d0[j]
            elif j & 1:
                nxt = d0[(j + 1) // 2]
            else:
                nxt = d1[j // 2]
            if nxt > 0.0:
                break
            j -= 1
        if j < min_bulk:
            return 0
        # ---- commit ---------------------------------------------------
        heapq.heappop(heap)  # our dispatch entry
        engine = self.engine
        ej = e[:j]
        dj = ds[:j]
        tst = tst[:j]
        w = w[:j]
        bi = bi[:j]
        # J dispatch + J slice events ran; J slice seqs plus J-1
        # follow-on dispatch seqs were allocated (the first dispatch's
        # seq predates the bulk; the last follow-on is scheduled for
        # real below).
        engine.advance_inline(float(ej[-1]), 2 * j, 2 * j - 1)
        m0 = (j + 1) // 2 if other is not None else j
        m1 = j // 2
        # Busy series, in the scalar path's add order: each slice's
        # spread, then (in pair mode) the following context switch's
        # point charge at the slice end.  (w*w)/w replicates the
        # single-bin add_spread's weight*(seg/duration) rounding.
        kept = w > 0.0
        if other is not None and sw > 0.0:
            seq_idx = np.empty(2 * j - 1, dtype=np.int64)
            seq_val = np.empty(2 * j - 1)
            seq_idx[0::2] = bi
            seq_idx[1::2] = ((ej[:j - 1] - t0b) / bw).astype(np.int64)
            wk = np.where(kept, w, 1.0)
            seq_val[0::2] = (wk * wk) / wk
            seq_val[1::2] = sw
            keep = np.ones(2 * j - 1, dtype=bool)
            keep[0::2] = kept
            busy.add_at(seq_idx[keep], seq_val[keep])
            metrics.switch_seconds = float(np.cumsum(np.concatenate(
                ([metrics.switch_seconds], np.full(j - 1, sw))))[-1])
            sched._c_switches.inc(j - 1)
        elif kept.all():
            busy.add_at(bi, (w * w) / w)
        else:
            wk = w[kept]
            busy.add_at(bi[kept], (wk * wk) / wk)
        metrics.busy_seconds = float(np.cumsum(np.concatenate(
            ([metrics.busy_seconds], dj)))[-1])
        dmd = metrics.demand_series
        didx = ((ej - dmd.t0) / dmd.bin_width).astype(np.int64)
        if other is not None:
            dval = np.empty(j)
            dval[0::2] = L0 / MB
            dval[1::2] = L1 / MB
        else:
            dval = np.full(j, L0 / MB)
        dmd.add_at(didx, dval)
        # Per-process accumulators (each folds its own slices, in order).
        a0, b0, frames0 = self._bulk_commit_proc(proc, memo0, c0, off0, L0, m0)
        proc._pending_compute = float(d0[m0])
        ps = proc._pstats
        if other is not None:
            dsp = dj[0::2]
        else:
            dsp = dj
        ps.cpu_seconds = float(np.cumsum(np.concatenate(
            ([ps.cpu_seconds], dsp)))[-1])
        cache = self.cache
        if other is None:
            cache._clean_touch(
                frames0, np.arange(int(a0[0]), int(b0[-1]) + 1)
            )
        else:
            a1, b1, frames1 = self._bulk_commit_proc(
                other, memo1, c1, off1, L1, m1
            )
            other._pending_compute = float(d1[m1])
            ps1 = other._pstats
            ps1.cpu_seconds = float(np.cumsum(np.concatenate(
                ([ps1.cpu_seconds], dj[1::2])))[-1])
            # LRU order is digest-visible through eviction victims, and
            # the two files' touches interleave record by record -- so
            # touch per record, in issue order, not per file.
            touch = cache._clean_touch
            ar = np.arange
            for k in range(j):
                i = k >> 1
                if k & 1:
                    touch(frames1, ar(a1[i], b1[i] + 1))
                else:
                    touch(frames0, ar(a0[i], b0[i] + 1))
        # Scheduler tail: leave the real machinery to schedule the
        # follow-on dispatch (and charge its switch) exactly as if the
        # last emulated slice-done had just returned.
        last = proc if (other is None or (j & 1)) else other
        if other is not None:
            if last is other:
                ready[0] = proc
            sched._running[cpu] = last
            sched._last_on_cpu[cpu] = last
        sched.dispatches += j - 1
        sched._c_dispatches.inc(j - 1)
        sched._g_ready.set_max(2 if other is not None else 1)
        sched._release(cpu)
        ready.append(last)
        sched._maybe_dispatch()
        self._c_bulk.inc()
        self._c_fast_reads.inc(j)
        return j

    # ------------------------------------------------------------------
    # Sequential-write fast path
    # ------------------------------------------------------------------
    def try_fast_write(self, file_id: int, offset: int, length: int,
                       owner: int, run_end: int = 0):
        """Absorb a write-behind write directly into the frame tables.

        Returns the hit penalty (the writer continues immediately, as
        write-behind always lets it), or None when the record needs
        :meth:`BufferCache.write`: write-through (completion is
        asynchronous), degraded mode, a span that would extend the inode
        or grow the frame table, an oversized request, or an allocation
        that would evict or recycle frames -- eviction ordering belongs
        to the slow path.  The flush itself is always delegated to
        :meth:`BufferCache.issue_disk_write` /
        :meth:`BufferCache.schedule_delayed_flush`, so device submit
        order -- and with it the fault injector's RNG stream -- is
        untouched.
        """
        cache = self.cache
        cfg = cache.config
        if (
            not self._fast_cache
            or cache.degraded
            or not cfg.write_behind
            or length <= 0
        ):
            self._c_write_bailouts.inc()
            return None
        memo = self._wmemos.get(file_id)
        if memo is not None:
            if (
                offset == memo.next_off
                and length == memo.length
                and owner == memo.owner
                and (memo.epoch == cache.epoch
                     or self._memo_fresh(memo, file_id))
            ):
                penalty = self._commit_write_from_memo(
                    cache, memo, file_id, offset, length, owner
                )
                if penalty is not None:
                    self._c_fast_writes.inc()
                    return penalty
            else:
                del self._wmemos[file_id]
        if self.skip_writes > 0:
            self.skip_writes -= 1
            self._c_write_bailouts.inc()
            return None
        penalty = self._classify_and_commit_write(
            cache, file_id, offset, length, owner
        )
        self._wwin_attempts += 1
        if penalty is not None:
            self._wwin_hits += 1
            self._c_fast_writes.inc()
            end = offset + length
            if run_end > end:
                self._build_write_memo(
                    cache, file_id, end, length, run_end, owner
                )
        else:
            self._c_write_bailouts.inc()
        if self._wwin_attempts >= 32:
            # Same back-off economics as the read guard: when eviction
            # pressure makes most attempts bail, stop paying for the
            # classification scans for a stretch.  Skipping an attempt
            # and having it bail are indistinguishable.
            if self._wwin_hits * 8 < self._wwin_attempts * 3:
                self.skip_writes = 160
            self._wwin_attempts = 0
            self._wwin_hits = 0
        return penalty

    def _classify_and_commit_write(self, cache, file_id, offset, length,
                                   owner):
        """One-record classification + commit for an eviction-free write.

        Mirrors :meth:`BufferCache.write` + ``_PendingWrite.start`` for
        the case where every absent frame fits without eviction: stats,
        demand series, dirty allocation, prefetch-bit clears and the
        flush hand-off are identical by construction.  The generation
        span is snapshotted *after* allocation, which equals the slow
        path's before-allocation snapshot patched with the new
        generations, because no eviction can have bumped a present
        frame's generation in between.
        """
        cfg = cache.config
        end = offset + length
        if end > cache._file_sizes.get(file_id, 0):
            return None  # would extend the inode; leave to the real path
        frames = cache._files.get(file_id)
        if frames is None:
            return None
        bs = cfg.block_bytes
        first = offset // bs
        last = (end - 1) // bs
        st = frames.st
        if last >= st.size:
            return None  # frame table would grow
        nb = last - first + 1
        cap = cfg.max_blocks_per_process
        if nb > cfg.n_blocks or (cap is not None and nb > cap):
            return None  # oversized: the bypass path owns it
        seg = st[first:last + 1]
        if seg.all():
            absent = None
            needed = 0
        else:
            absent = np.flatnonzero(seg == _ABSENT) + first
            needed = int(absent.size)
            if needed > cfg.n_blocks - cache._resident:
                return None  # would evict
            if (
                cap is not None
                and cache._owner_counts.get(owner, 0) + needed > cap
            ):
                return None  # would recycle the owner's own frames
        # ---- commit (identical effects to BufferCache.write) ----------
        stats = cache._stats
        stats.write_requests += 1
        stats.write_bytes += length
        self.metrics.demand_series.add(self.engine.now, length / MB)
        if needed:
            frames.st[absent] = _DIRTY
            frames.own[absent] = owner
            frames.pf[absent] = False
            frames.gen[absent] += 1
            counts = cache._owner_counts
            counts[owner] = counts.get(owner, 0) + needed
            cache._resident += needed
        if needed != nb:
            # Some frames were present: their prefetch bits are spent,
            # exactly as the slow path clears them post-allocation.
            frames.pf[first:last + 1] = False
        pre_epoch = cache.epoch
        cache.epoch += 1
        gen_span = frames.gen[first:last + 1].copy()
        run = _Run(file_id, np.arange(first, last + 1), gen_span)
        stats.writes_absorbed += 1
        if cfg.flush_delay_s > 0:
            cache.schedule_delayed_flush(file_id, offset, length, run)
        else:
            cache.issue_disk_write(file_id, offset, length, run)
        self._note_benign_bump(file_id, pre_epoch, needed)
        return cfg.hit_penalty_s(length)

    def _build_write_memo(self, cache, file_id, next_off, length, run_end,
                          owner):
        """One vectorized pass bounding how far the write run absorbs fast.

        Scans the frame table once over the run's remaining span and
        records the byte bound at which its classification flips -- the
        first non-absent frame for an allocating run, the first absent
        frame for an overwrite run -- plus the frame budget the run may
        allocate before eviction or an ownership-cap recycle triggers.
        Records beyond either bound fall back to per-record
        classification (which handles mixed spans) or to the slow path.
        """
        frames = cache._files.get(file_id)
        if frames is None:
            return
        cfg = cache.config
        file_end = cache._file_sizes.get(file_id, 0)
        span_end = run_end if run_end <= file_end else file_end
        if span_end < next_off + length:
            return  # the rest of the run would extend the inode
        bs = cfg.block_bytes
        # Worst-case blocks one record can cover; oversized requests
        # belong to the bypass path and must not commit here.
        nb_max = (length - 1) // bs + 2
        cap = cfg.max_blocks_per_process
        if nb_max > cfg.n_blocks or (cap is not None and nb_max > cap):
            return
        st = frames.st
        prev_last = (next_off - 1) // bs
        scan_from = prev_last + 1
        scan_last = (span_end - 1) // bs
        if scan_last >= st.size:
            scan_last = st.size - 1  # past the table: the slow path grows it
        if scan_last < scan_from:
            return
        seg = st[scan_from:scan_last + 1]
        alloc = seg[0] == _ABSENT
        bad = np.flatnonzero(seg != _ABSENT if alloc else seg == _ABSENT)
        if bad.size:
            absorb_until = (scan_from + int(bad[0])) * bs
        else:
            absorb_until = (scan_last + 1) * bs
        if absorb_until > span_end:
            absorb_until = span_end
        if absorb_until < next_off + length:
            return  # not even one more record commits fast
        budget = cfg.n_blocks - cache._resident
        if cap is not None:
            allowed = cap - cache._owner_counts.get(owner, 0)
            if allowed < budget:
                budget = allowed
        memo = _WriteMemo()
        memo.epoch = cache.epoch
        memo.next_off = next_off
        memo.length = length
        memo.absorb_until = absorb_until
        memo.alloc = bool(alloc)
        memo.budget = budget
        memo.prev_last = prev_last
        memo.owner = owner
        memo.frames = frames
        self._wmemos[file_id] = memo
        self._c_runs.inc()

    def _commit_write_from_memo(self, cache, memo, file_id, offset, length,
                                owner):
        """Scalar-side commit of one write-run record against its memo.

        The remaining per-record checks are integer comparisons: the
        span against the absorb bound, the allocation against the frame
        budget.  The flush hand-off still goes through the real cache
        entry points; the memo's epoch is resynchronized afterwards
        because nothing foreign runs during the commit.
        """
        end = offset + length
        if end > memo.absorb_until:
            del self._wmemos[file_id]
            return None
        cfg = cache.config
        bs = cfg.block_bytes
        first = offset // bs
        last = (end - 1) // bs
        frames = memo.frames
        nb = last - first + 1
        if memo.alloc:
            a0 = first + 1 if first == memo.prev_last else first
            needed = last - a0 + 1
            if needed > memo.budget:
                del self._wmemos[file_id]
                return None
        else:
            a0 = first
            needed = 0
        # ---- commit (identical effects to the classify path) ----------
        stats = cache._stats
        stats.write_requests += 1
        stats.write_bytes += length
        self.metrics.demand_series.add(self.engine.now, length / MB)
        if needed > 0:
            absent = np.arange(a0, last + 1)
            frames.st[absent] = _DIRTY
            frames.own[absent] = owner
            frames.pf[absent] = False
            frames.gen[absent] += 1
            counts = cache._owner_counts
            counts[owner] = counts.get(owner, 0) + needed
            cache._resident += needed
            memo.budget -= needed
        if needed != nb:
            # The boundary block (or, on an overwrite run, the whole
            # span) was already framed by this kernel's own commits;
            # its prefetch bit is clear, but mirror the slow path's
            # unconditional post-allocation clear anyway.
            frames.pf[first:last + 1] = False
        pre_epoch = cache.epoch
        cache.epoch += 1
        gen_span = frames.gen[first:last + 1].copy()
        run = _Run(file_id, np.arange(first, last + 1), gen_span)
        stats.writes_absorbed += 1
        if cfg.flush_delay_s > 0:
            cache.schedule_delayed_flush(file_id, offset, length, run)
        else:
            cache.issue_disk_write(file_id, offset, length, run)
        self._note_benign_bump(file_id, pre_epoch, needed)
        memo.next_off = end
        memo.prev_last = last
        memo.epoch = cache.epoch
        return cfg.hit_penalty_s(length)


class BatchTraceProcess(TraceProcess):
    """A :class:`TraceProcess` whose I/O consults the kernel first.

    Only :meth:`_submit` is overridden: demand reads and writes are
    offered to the fast paths and fall back to the full cache
    untouched.  The replay loop, blocking discipline and accounting are
    the base class's.
    """

    def __init__(self, *args, kernel: BatchKernel, **kwargs):
        super().__init__(*args, **kwargs)
        self._kernel = kernel
        # Exclusive byte end of each record's per-file sequential run,
        # decoded to a plain list like the other replay columns.  The
        # kernel uses it to bound the span one classification pass can
        # memoise for the run's remaining records.
        self._run_ends: list[int] = self.trace.stream_run_ends().tolist()
        # Bulk-commit columns: exclusive *record-index* end of each
        # record's row-adjacent run (same file/size/direction, strictly
        # sequential rows -- the stretch the kernel may emulate without
        # a shape change), plus numpy views of the compute deltas and
        # async flags for vectorized pending-compute chains.
        n = self._n_records
        starts = self.trace.sequential_runs()
        if n:
            rid = np.zeros(n, dtype=np.int64)
            rid[starts[1:]] = 1
            self._row_run_end = np.concatenate(
                (starts[1:], [n])
            )[np.cumsum(rid)]
        else:
            self._row_run_end = np.zeros(0, dtype=np.int64)
        self._np_deltas = np.array(self._deltas_s, dtype=float)
        self._np_asyncs = np.array(self._asyncs, dtype=bool)
        # O(1) bulk-commit gate, indexed by cursor: True only where a
        # row-adjacent read run long enough to possibly clear _MIN_BULK
        # starts or continues (>= 3 records: the pair-mode minimum, at
        # least ceil(_MIN_BULK / 2) per process).  Length n + 1 so the
        # final dispatch (cursor == n, trailing compute) indexes False
        # instead of out of bounds.  Workloads that never run 3 reads
        # back to back -- venus alternates read/write per record -- pay
        # one boolean load per dispatch instead of a planning pass.
        eligible = np.zeros(n + 1, dtype=bool)
        if n:
            run_left = self._row_run_end - np.arange(n, dtype=np.int64)
            eligible[:n] = (run_left >= 3) & ~np.array(
                self._writes, dtype=bool
            )
        self._bulk_eligible = eligible

    def _submit(self, file_id, offset, length, is_write, on_done) -> None:
        # on_cpu_available advanced the cursor before submitting, so
        # the issuing record is cursor - 1.
        if is_write:
            penalty = self._kernel.try_fast_write(
                file_id, offset, length, self.process_id,
                self._run_ends[self._cursor - 1],
            )
        else:
            penalty = self._kernel.try_fast_read(
                file_id, offset, length, self._run_ends[self._cursor - 1]
            )
        if penalty is not None:
            (on_done if on_done is not None else _noop)(penalty)
            return
        callback = on_done if on_done is not None else _noop
        if is_write:
            self.cache.write(file_id, offset, length, self.process_id, callback)
        else:
            self.cache.read(file_id, offset, length, self.process_id, callback)
