"""Run-level batch simulation kernel (``REPRO_ENGINE_IMPL=batch``).

The event engine spends most of a warm-cache run on ceremony: every
trace record whose data is resident costs a dispatch event, a
quantum-slice event, a full cache classification pass and an LRU touch
-- even though the *outcome* of that machinery is fully determined the
moment the record is issued.  This kernel exploits the trace's dominant
regularity (the paper's constant-size sequential runs, exposed by
:meth:`TraceArray.sequential_runs`) to advance whole non-interacting
stretches cheaply while producing **bit-identical results**, digest for
digest, against the event-at-a-time engine.

Two cooperating layers:

* **Chain pump.**  The engine calls :meth:`BatchKernel.pump` between
  calendar events -- never from inside one, so every callback's trailing
  effects (frame-waiter kicks, drain checks, retry bookkeeping) land
  before the next dispatch exactly as they do under the event engine.
  When the next due event is a scheduler dispatch or quantum slice whose
  whole chain completes strictly before the following calendar entry,
  the pump pops it and runs the *real* ``_slice_done`` body inline,
  accounting the elided events through :meth:`Engine.advance_inline` so
  clock, sequence numbers and ``events_run`` (all digest-visible) match
  the event engine bit for bit.  The round-robin alternation of multiple
  CPU-bound processes -- the Figure-8 workload is two venus copies
  sharing one CPU -- proceeds without touching the heap.

* **Run-level resident-read fast path.**  Demand reads whose span is
  wholly resident (and whose read-ahead window holds no absent block, so
  the prefetcher would not issue I/O) skip the cache's allocation
  machinery: :meth:`BatchKernel.try_fast_read` classifies the span
  against the columnar frame tables, commits the hit statistics,
  prefetch-bit clears, LRU touch and stream advance directly, and hands
  back the hit penalty.  Classification is *per run*, not per record:
  when a record opens a per-file sequential run
  (:meth:`TraceArray.stream_run_ends`), one vectorized pass over the
  frame table bounds how far the run stays clean-resident
  (``resident_until``), where the first absent block sits (the bound the
  read-ahead window must not cross), and which blocks carry prefetch
  bits.  The bounds are memoised against :attr:`BufferCache.epoch` -- a
  mutation counter every slow-path operation bumps -- so each subsequent
  record of the run commits with a handful of scalar comparisons, no
  numpy classification at all.  The kernel's own commits deliberately do
  not bump the epoch: between bumps the frame states it cached cannot
  change, because evictions, settles, dirtying and prefetch issue all
  live on the slow paths.

The kernel **falls back to the event engine** at every interaction
point: another calendar entry (disk completion, flush deadline, fault
cut, async completion, another CPU's slice) due at or before the
emulated horizon, an event budget or tick grid in force, a degraded or
legacy cache, write records, oversized spans, or any block that is not
resident.  Fault injection draws randomness only at device submits,
which resident hits never reach, so batching cannot perturb the
injector's RNG stream.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.sim.cache import BufferCache, _StreamState, _ABSENT, _VALID
from repro.sim.procmodel import TraceProcess, _noop
from repro.util.units import MB


class _RunMemo:
    """Cached classification bounds for one file's active run.

    Valid while :attr:`BufferCache.epoch` equals :attr:`epoch`; see
    :meth:`BatchKernel._build_memo` for the field semantics.  Plain
    attribute record -- every field is assigned exactly once at build
    time except the rolling ``next_off`` / ``pf_ptr`` cursors.
    """

    __slots__ = (
        "epoch", "next_off", "length", "resident_until", "first_absent",
        "depth_bytes", "file_end", "nb_limit", "pf_pos", "pf_ptr",
        "frames", "stream",
    )


class BatchKernel:
    """Shared per-simulation state for the batch engine."""

    def __init__(self, engine, scheduler, metrics, cache, config, *, obs=None):
        self.engine = engine
        self.scheduler = scheduler
        self.metrics = metrics
        self.cache = cache
        # The fast read path reads the production cache's frame tables
        # directly; any other implementation (legacy) gets the chain
        # pump only.
        self._fast_cache = type(cache) is BufferCache
        # Instruments resolved once at wiring time (the disabled-obs
        # path must stay lookup-free per event, like the rest of sim/).
        reg = obs
        if reg is None:
            from repro.obs.registry import get_registry

            reg = get_registry()
        self._c_chains = reg.counter("sim.batch.chains")
        self._c_events_elided = reg.counter("sim.batch.events_elided")
        self._c_fast_reads = reg.counter("sim.batch.fast_reads")
        self._c_bailouts = reg.counter("sim.batch.bailouts")
        self._c_skipped = reg.counter("sim.batch.fast_reads_skipped")
        self._c_runs = reg.counter("sim.batch.runs_fast_pathed")
        self._c_fallback = reg.counter("sim.batch.events_fallback")
        #: per-file run memos, valid while ``cache.epoch`` is unchanged
        self._memos: dict[int, _RunMemo] = {}
        # Adaptive guard: on miss-dominated workloads most fast-read
        # attempts fail and their classification pass is pure overhead.
        # When a window of attempts succeeds too rarely the kernel stops
        # *attempting* for a stretch, then probes again.  Skipping an
        # attempt and having it fail are indistinguishable (both take
        # the full cache path), so the guard cannot perturb results.
        self._win_attempts = 0
        self._win_hits = 0
        self.skip_reads = 0
        # Pin the scheduler's event callbacks to single bound-method
        # objects so heap entries can be recognized by identity.
        self._dispatch_fn = scheduler._run_slice
        self._slice_fn = scheduler._slice_done
        scheduler._run_slice = self._dispatch_fn
        scheduler._slice_done = self._slice_fn

    # ------------------------------------------------------------------
    # Chain pump
    # ------------------------------------------------------------------
    def pump(self) -> None:
        """Emulate due scheduler chains between calendar events.

        Called by :meth:`Engine.run` at the top of its loop, where no
        event callback is mid-flight.  Each iteration handles the
        earliest calendar entry when it belongs to the scheduler:

        * a *dispatch* (``_run_slice``) whose quantum slice would end
          strictly before the next calendar entry and within the run's
          ``until`` bound is elided entirely -- the clock jumps to the
          slice end and the real ``_slice_done`` body runs inline
          (consume, busy accounting, preemption or record issue, next
          dispatch).  The dispatch event already consumed its sequence
          number when it was scheduled, so only the never-scheduled
          slice event's is accounted;

        * a *slice expiry* (``_slice_done``) is simply run inline at its
          due time -- it is the next event regardless, and keeping it in
          the pump lets the following dispatch be elided too.

        Everything else -- ties included, conservatively -- returns
        control to the engine loop.
        """
        engine = self.engine
        heap = engine._heap
        if (
            not heap
            or engine.run_max_events is not None
            or engine.tick_s is not None
        ):
            return
        sched = self.scheduler
        dispatch_fn = self._dispatch_fn
        slice_fn = self._slice_fn
        slice_done = self._slice_fn
        cancelled = engine._cancelled
        until = engine.run_until
        config = sched.config
        advance = engine.advance_inline
        pop = heapq.heappop
        push = heapq.heappush
        chains = 0
        elided = 0
        while heap:
            item = heap[0]
            fn = item[2]
            if fn is dispatch_fn:
                when = item[0]
                if when > until or item[1] in cancelled:
                    break
                proc, cpu = item[3]
                slice_s = min(config.quantum_s, proc.compute_remaining())
                if slice_s > 0:
                    t2 = when + slice_s
                    pop(heap)
                    if t2 > until or (heap and t2 >= heap[0][0]):
                        # The slice would land at or past the next
                        # calendar entry (whose callback may change the
                        # ready queue first) or past the run bound; put
                        # the dispatch back for the real machinery.
                        push(heap, item)
                        self._c_bailouts.inc()
                        break
                    # Dispatch event ran (seq already allocated at
                    # schedule time) + slice event ran (never
                    # scheduled): two events, one fresh seq.
                    advance(t2, 2, 1)
                    chains += 1
                    elided += 2
                    slice_done(proc, cpu, slice_s)
                else:
                    # Zero compute: the real chain is the dispatch event
                    # alone, with the slice-done body inline at its time.
                    pop(heap)
                    advance(when, 1, 0)
                    chains += 1
                    elided += 1
                    slice_done(proc, cpu, 0.0)
            elif fn is slice_fn:
                when = item[0]
                if when > until or item[1] in cancelled:
                    break
                pop(heap)
                advance(when, 1, 0)
                elided += 1
                proc, cpu, slice_s = item[3]
                slice_done(proc, cpu, slice_s)
            else:
                break
        if chains:
            self._c_chains.inc(chains)
        if elided:
            self._c_events_elided.inc(elided)

    # ------------------------------------------------------------------
    # Resident-read fast path
    # ------------------------------------------------------------------
    def try_fast_read(self, file_id: int, offset: int, length: int,
                      run_end: int = 0):
        """Commit a fully-resident demand read scalar-side.

        Returns the hit penalty to hand to ``on_complete``, or None when
        the record needs the full cache path (miss, inflight block,
        oversized span, degraded mode, a frame table that would grow, or
        a prefetch that would issue).  Simulated time is untouched --
        this replaces only :meth:`BufferCache.read`'s classification
        machinery with its precomputed outcome, so it is valid even
        while other processes contend for the CPU.

        ``run_end`` is the exclusive byte end of the record's per-file
        sequential run (:meth:`TraceArray.stream_run_ends`).  When it
        reaches past this record, a successful classification also
        memoises the remaining span's bounds so the run's later records
        commit through :meth:`_commit_from_memo` without a numpy pass.
        """
        cache = self.cache
        if not self._fast_cache or cache.degraded or length <= 0:
            self._c_fallback.inc()
            return None
        memo = self._memos.get(file_id)
        if memo is not None:
            if (
                memo.epoch == cache.epoch
                and offset == memo.next_off
                and length == memo.length
            ):
                penalty = self._commit_from_memo(cache, memo, file_id,
                                                 offset, length)
                if penalty is not None:
                    self._c_fast_reads.inc()
                    return penalty
            else:
                # Stale (a slow-path mutation bumped the epoch) or the
                # stream seeked away; rebuild on the next classify.
                del self._memos[file_id]
        if self.skip_reads > 0:
            self.skip_reads -= 1
            self._c_skipped.inc()
            self._c_fallback.inc()
            return None
        penalty = self._classify_and_commit(cache, file_id, offset, length)
        self._win_attempts += 1
        if penalty is not None:
            self._win_hits += 1
            self._c_fast_reads.inc()
            end = offset + length
            if run_end > end:
                self._build_memo(cache, file_id, end, length, run_end)
        else:
            self._c_fallback.inc()
        if self._win_attempts >= 32:
            # Below ~38% success the attempt overhead outweighs the
            # saved classification passes; back off for a stretch.
            if self._win_hits * 8 < self._win_attempts * 3:
                self.skip_reads = 160
            self._win_attempts = 0
            self._win_hits = 0
        return penalty

    def _build_memo(self, cache, file_id, next_off, length, run_end):
        """One vectorized pass bounding how far the run stays fast.

        Scans the frame table once over the run's remaining span plus
        the widest read-ahead window any of its records can open, and
        records three byte bounds:

        * ``resident_until`` -- records ending at or before it cover
          only clean-``VALID`` blocks (a dirty or in-flight block
          truncates it; those records fall back to per-record
          classification, which handles mixed spans);
        * ``first_absent`` -- the first absent block's offset (or the
          frame-table end, which the per-record path also treats as a
          bail); a record whose read-ahead window would cross it must
          take the slow path so the prefetcher can issue;
        * the positions of set prefetch bits inside the resident span,
          consumed by a pointer walk as records commit.

        All bounds are immutable while ``cache.epoch`` holds, because
        every operation that can change them bumps it.
        """
        frames = cache._files.get(file_id)
        if frames is None:
            return
        cfg = cache.config
        file_end = cache._file_sizes.get(file_id, 0)
        span_end = run_end if run_end <= file_end else file_end
        if span_end < next_off + length:
            return  # the rest of the run would extend the inode
        bs = cfg.block_bytes
        st = frames.st
        a = next_off // bs
        read_ahead = cfg.read_ahead
        stream = None
        depth_bytes = 0
        wmax = span_end
        if read_ahead:
            stream = cache._streams.get(file_id)
            if stream is None or stream.next_offset != next_off:
                return
            depth_bytes = cfg.auto_depth(length) * length
            wmax = span_end + depth_bytes
            if wmax > file_end:
                wmax = file_end
        table_bytes = st.size * bs
        scan_last = (wmax - 1) // bs  # inclusive
        bounded = scan_last < st.size
        if not bounded:
            scan_last = st.size - 1
        if scan_last < a:
            return
        seg = st[a:scan_last + 1]
        bad = np.flatnonzero(seg != _VALID)
        if bad.size:
            resident_until = (a + int(bad[0])) * bs
            absent_rel = bad[seg[bad] == _ABSENT]
            if absent_rel.size:
                first_absent = (a + int(absent_rel[0])) * bs
            else:
                first_absent = wmax + 1 if bounded else table_bytes
        else:
            resident_until = (scan_last + 1) * bs
            first_absent = wmax + 1 if bounded else table_bytes
        if resident_until > span_end:
            resident_until = span_end
        if resident_until < next_off + length:
            return  # not even one more record commits fast
        rb = (resident_until - 1) // bs
        pf_rel = np.flatnonzero(frames.pf[a:rb + 1])
        nb_limit = cfg.n_blocks
        cap = cfg.max_blocks_per_process
        if cap is not None and cap < nb_limit:
            nb_limit = cap
        memo = _RunMemo()
        memo.epoch = cache.epoch
        memo.next_off = next_off
        memo.length = length
        memo.resident_until = resident_until
        memo.first_absent = first_absent
        memo.depth_bytes = depth_bytes
        memo.file_end = file_end
        memo.nb_limit = nb_limit
        memo.pf_pos = (pf_rel + a).tolist()
        memo.pf_ptr = 0
        memo.frames = frames
        memo.stream = stream
        self._memos[file_id] = memo
        self._c_runs.inc()

    def _commit_from_memo(self, cache, memo, file_id, offset, length):
        """Scalar-side commit of one run record against its memo.

        Mirrors :meth:`_classify_and_commit`'s all-clean commit branch;
        the checks that remain per record (span within the resident
        bound, block-count caps, the read-ahead window against the first
        absent block) are plain integer comparisons.
        """
        end = offset + length
        if end > memo.resident_until:
            del self._memos[file_id]
            return None
        cfg = cache.config
        bs = cfg.block_bytes
        a = offset // bs
        b = (end - 1) // bs
        if b - a + 1 > memo.nb_limit:
            del self._memos[file_id]
            return None
        stream = memo.stream
        advance = False
        we = 0
        if stream is not None:
            we = end + memo.depth_bytes
            if we > memo.file_end:
                we = memo.file_end
            start = stream.prefetch_until
            if start < end:
                start = end
            if start < we:
                if we > memo.first_absent:
                    # The window reaches an absent block (or runs off
                    # the frame table): the prefetcher must issue, which
                    # only the full path may do.
                    del self._memos[file_id]
                    return None
                advance = True
        # ---- commit (identical effects to the classify path) ---------
        frames = memo.frames
        stats = cache._stats
        stats.read_requests += 1
        stats.read_bytes += length
        self.metrics.demand_series.add(self.engine.now, length / MB)
        stats.block_hits += b - a + 1
        pf_pos = memo.pf_pos
        p = memo.pf_ptr
        if p < len(pf_pos) and pf_pos[p] <= b:
            q = p + 1
            n_pf = len(pf_pos)
            while q < n_pf and pf_pos[q] <= b:
                q += 1
            stats.readahead_hits += q - p
            frames.pf[a:b + 1] = False
            memo.pf_ptr = q
        cache._clean_touch(frames, np.arange(a, b + 1))
        if stream is not None:
            stream.next_offset = end
            stream.length = length
            if advance:
                stream.prefetch_until = we
        memo.next_off = end
        return cfg.hit_penalty_s(length)

    def _classify_and_commit(self, cache, file_id, offset, length):
        cfg = cache.config
        file_end = cache._file_sizes.get(file_id, 0)
        end = offset + length
        if end > file_end:
            return None  # would extend the inode; leave to the real path
        frames = cache._files.get(file_id)
        if frames is None:
            return None
        bs = cfg.block_bytes
        a = offset // bs
        b = (end - 1) // bs
        st = frames.st
        if b >= st.size:
            return None
        nb = b - a + 1
        if nb > cfg.n_blocks:
            return None
        cap = cfg.max_blocks_per_process
        if cap is not None and nb > cap:
            return None
        seg = st[a:b + 1]
        if seg.min() < _VALID:
            return None  # an absent or in-flight block in the span
        stream = None
        matched = False
        advance = False
        we = 0
        if cfg.read_ahead:
            stream = cache._streams.get(file_id)
            matched = stream is not None and offset == stream.next_offset
            if matched:
                we = end + cfg.auto_depth(length) * length
                if we > file_end:
                    we = file_end
                start = stream.prefetch_until
                if start < end:
                    start = end
                if start < we:
                    wlast = (we - 1) // bs
                    if wlast >= st.size:
                        return None
                    if st[start // bs:wlast + 1].min() == _ABSENT:
                        return None
                    advance = True
        # ---- commit --------------------------------------------------
        stats = cache._stats
        stats.read_requests += 1
        stats.read_bytes += length
        self.metrics.demand_series.add(self.engine.now, length / MB)
        stats.block_hits += nb
        pfseg = frames.pf[a:b + 1]
        npf = int(np.count_nonzero(pfseg))
        if npf:
            stats.readahead_hits += npf
            frames.pf[a:b + 1] = False
        if seg.max() == _VALID:
            # No dirty/flushing block in the span: every frame is clean
            # and the touch covers the whole range.
            cache._clean_touch(frames, np.arange(a, b + 1))
        else:
            touched = np.flatnonzero(seg == _VALID) + a
            if touched.size:
                cache._clean_touch(frames, touched)
        if cfg.read_ahead:
            if matched:
                stream.next_offset = end
                stream.length = length
                if advance:
                    # No absent block in the window, so the prefetcher
                    # marches straight to window_end without issuing.
                    stream.prefetch_until = we
            else:
                cache._streams[file_id] = _StreamState(
                    next_offset=end, length=length
                )
        return cfg.hit_penalty_s(length)


class BatchTraceProcess(TraceProcess):
    """A :class:`TraceProcess` whose reads consult the kernel first.

    Only :meth:`_submit` is overridden: demand reads are offered to the
    fast path and fall back to the full cache untouched.  The replay
    loop, blocking discipline and accounting are the base class's.
    """

    def __init__(self, *args, kernel: BatchKernel, **kwargs):
        super().__init__(*args, **kwargs)
        self._kernel = kernel
        # Exclusive byte end of each record's per-file sequential run,
        # decoded to a plain list like the other replay columns.  The
        # kernel uses it to bound the span one classification pass can
        # memoise for the run's remaining records.
        self._run_ends: list[int] = self.trace.stream_run_ends().tolist()

    def _submit(self, file_id, offset, length, is_write, on_done) -> None:
        if not is_write:
            # on_cpu_available advanced the cursor before submitting, so
            # the issuing record is cursor - 1.
            penalty = self._kernel.try_fast_read(
                file_id, offset, length, self._run_ends[self._cursor - 1]
            )
            if penalty is not None:
                (on_done if on_done is not None else _noop)(penalty)
                return
        callback = on_done if on_done is not None else _noop
        if is_write:
            self.cache.write(file_id, offset, length, self.process_id, callback)
        else:
            self.cache.read(file_id, offset, length, self.process_id, callback)
