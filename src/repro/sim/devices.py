"""Disk service-time model (section 6.1's "simple disk model").

"The disk model, like the scheduler, is a simple one.  Since ours were
logical traces and we did not model the file system, we could not use
physical block numbers.  Thus, seek times could only be approximated.
There was no queueing at the disks, so the completion time of a specific
I/O was dependent only on the location of the I/O and how 'close' the
I/O was to the previous I/O."

Faithfully to that description:

* **no queueing** -- every request's service time is computed
  independently of how many requests are outstanding (the simplification
  the paper itself blames for Figure 6's unsmoothed peaks);
* **closeness** -- each file id tracks the end offset of its previous
  access; a request starting exactly there is *sequential* (no seek, no
  rotational delay -- the head is streaming); anything else pays a seek
  that grows with the logical distance plus a sampled rotational delay;
* the access-time distribution is *constant* (independent of load),
  sampled from a seeded generator for reproducibility.
"""

from __future__ import annotations

import numpy as np

from repro.obs.registry import get_registry
from repro.sim.config import DiskConfig
from repro.util.rng import derive_rng


class DiskModel:
    """Per-file position-tracking service-time calculator."""

    def __init__(self, config: DiskConfig, *, seed: int = 0, obs=None):
        self.config = config
        self._rng = derive_rng(seed, "disk")
        self._position: dict[int, int] = {}
        self.requests = 0
        self.sequential_requests = 0
        self.busy_seconds = 0.0  # sum of service times (device-seconds)
        #: device-seconds per position key (spindle, or file with n_disks=0);
        #: only tracked while an enabled registry is active, so the default
        #: hot path stays unchanged.
        self.busy_by_device: dict[int, float] = {}
        reg = obs if obs is not None else get_registry()
        self._per_device = reg.enabled
        self._h_seek = reg.histogram("sim.disk.seek_distance_bytes")

    def _position_key(self, file_id: int) -> int:
        """Which head position a file's accesses move.

        With ``n_disks == 0`` every file gets its own position (the
        logical-trace simplification); otherwise files hash onto a
        finite set of spindles, so interleaved streams on the same disk
        break each other's sequentiality.
        """
        if self.config.n_disks > 0:
            return file_id % self.config.n_disks
        return file_id

    def service_time(self, file_id: int, offset: int, length: int) -> float:
        """Seconds from issue to completion for one request."""
        if length <= 0:
            raise ValueError("length must be positive")
        cfg = self.config
        file_id = self._position_key(file_id)
        last_end = self._position.get(file_id)
        transfer = length / cfg.bandwidth_bytes_per_sec
        self.requests += 1
        if last_end is not None and offset == last_end:
            # Streaming: no positioning cost at all.
            self.sequential_requests += 1
            service = cfg.base_overhead_s + transfer
        else:
            if last_end is None:
                distance = cfg.seek_span_bytes  # first touch: full seek
            else:
                distance = abs(offset - last_end)
            self._h_seek.observe(distance)
            frac = min(1.0, distance / cfg.seek_span_bytes)
            seek = cfg.min_seek_s + (cfg.max_seek_s - cfg.min_seek_s) * frac
            rotation = float(self._rng.uniform(0.0, cfg.rotation_period_s))
            service = cfg.base_overhead_s + seek + rotation + transfer
        self._position[file_id] = offset + length
        self.busy_seconds += service
        if self._per_device:
            self.busy_by_device[file_id] = (
                self.busy_by_device.get(file_id, 0.0) + service
            )
        return service

    def add_busy(self, file_id: int, seconds: float) -> None:
        """Charge extra device-busy time (injected latency spikes).

        Keeps ``busy_seconds`` honest when the fault layer stretches a
        request beyond its modelled service time; does not move the head
        or count a request.
        """
        if seconds <= 0:
            return
        self.busy_seconds += seconds
        if self._per_device:
            key = self._position_key(file_id)
            self.busy_by_device[key] = self.busy_by_device.get(key, 0.0) + seconds

    @property
    def sequential_fraction(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.sequential_requests / self.requests
