"""Simulation metrics and results.

Everything the figures and claims need: CPU busy/idle time (Figure 8 and
the utilization claims), disk-traffic-over-wall-time series (Figures 6
and 7), cache hit accounting (the "speed-matching buffer, not a locality
cache" contrast with the BSD study), and per-process completion times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.timeseries import BinnedSeries, RateSeries
from repro.util.units import MB


@dataclass
class CacheStats:
    """Counts from the buffer cache."""

    read_requests: int = 0
    read_bytes: int = 0
    write_requests: int = 0
    write_bytes: int = 0
    #: demand-read blocks found resident
    block_hits: int = 0
    #: demand-read blocks absent (disk reads issued)
    block_misses: int = 0
    #: demand-read blocks found in flight (prefetch or another's miss)
    block_inflight_hits: int = 0
    #: resident hits on blocks brought in by the prefetcher
    readahead_hits: int = 0
    prefetch_issued: int = 0
    prefetch_blocks: int = 0
    #: writes absorbed by write-behind (returned before disk)
    writes_absorbed: int = 0
    #: delayed-write extents whose file was deleted before the flush
    #: fired (Sprite's temporary-file win, section 2.1)
    writes_cancelled: int = 0
    #: requests that had to wait for a free buffer frame
    frame_stalls: int = 0
    #: requests too large for the cache (or the owner's cap) that went
    #: straight to the disk
    bypass_requests: int = 0

    @property
    def block_requests(self) -> int:
        return self.block_hits + self.block_misses + self.block_inflight_hits

    @property
    def hit_fraction(self) -> float:
        """Fraction of demand-read blocks served without a new disk read."""
        total = self.block_requests
        if total == 0:
            return 0.0
        return (self.block_hits + self.block_inflight_hits) / total

    @property
    def resident_hit_fraction(self) -> float:
        total = self.block_requests
        return self.block_hits / total if total else 0.0


@dataclass
class FaultStats:
    """Counts from the fault-injection and recovery layers.

    All zeros in a fault-free run -- the digest only folds these in when
    ``any_faults`` is true, so fault-free results hash identically to
    pre-fault-layer builds.
    """

    #: injector verdicts
    injected_errors: int = 0
    injected_slowdowns: int = 0
    #: recovery-layer outcomes
    timeouts: int = 0
    retries: int = 0
    #: requests that succeeded after at least one retry
    recovered: int = 0
    #: most attempts any single request consumed (1 = first try)
    max_attempts: int = 0
    failed_reads: int = 0
    failed_writes: int = 0
    failed_read_bytes: int = 0
    failed_write_bytes: int = 0
    #: dirty extents re-queued after a failed write-behind flush
    reflushes: int = 0
    #: write-behind data dropped: flush retries exhausted, or dirty at crash
    lost_bytes: int = 0
    #: requests routed around a failed SSD straight to disk
    degraded_requests: int = 0
    crashed: bool = False
    crash_time_s: float | None = None
    degraded_at_s: float | None = None

    @property
    def any_faults(self) -> bool:
        """Did anything at all deviate from the fault-free path?"""
        return bool(
            self.injected_errors
            or self.injected_slowdowns
            or self.timeouts
            or self.retries
            or self.reflushes
            or self.lost_bytes
            or self.degraded_requests
            or self.crashed
            or self.degraded_at_s is not None
        )


@dataclass
class ProcessStats:
    """Per-process outcome."""

    process_id: int
    cpu_seconds: float = 0.0
    blocked_seconds: float = 0.0
    finish_time: float | None = None
    n_ios: int = 0

    @property
    def finished(self) -> bool:
        return self.finish_time is not None


@dataclass
class Metrics:
    """Mutable accumulator the simulator components write into."""

    traffic_bin_s: float = 1.0
    busy_seconds: float = 0.0
    switch_seconds: float = 0.0
    interrupt_seconds: float = 0.0
    cache: CacheStats = field(default_factory=CacheStats)
    faults: FaultStats = field(default_factory=FaultStats)
    processes: dict[int, ProcessStats] = field(default_factory=dict)
    disk_read_series: BinnedSeries = field(init=False)
    disk_write_series: BinnedSeries = field(init=False)
    demand_series: BinnedSeries = field(init=False)
    busy_series: BinnedSeries = field(init=False)

    def __post_init__(self) -> None:
        self.disk_read_series = BinnedSeries(self.traffic_bin_s)
        self.disk_write_series = BinnedSeries(self.traffic_bin_s)
        self.demand_series = BinnedSeries(self.traffic_bin_s)
        self.busy_series = BinnedSeries(self.traffic_bin_s)

    def record_busy(self, t_start: float, t_end: float) -> None:
        """Attribute a CPU busy interval to the busy-time series."""
        if t_end > t_start:
            self.busy_series.add_spread(t_start, t_end, t_end - t_start)

    def record_busy_point(self, t: float, seconds: float) -> None:
        """Attribute short system CPU (interrupts, switches) at time t."""
        if seconds > 0:
            self.busy_series.add(t, seconds)

    def process(self, pid: int) -> ProcessStats:
        if pid not in self.processes:
            self.processes[pid] = ProcessStats(pid)
        return self.processes[pid]

    def record_disk_transfer(
        self, *, is_write: bool, t_start: float, t_end: float, nbytes: int
    ) -> None:
        series = self.disk_write_series if is_write else self.disk_read_series
        series.add_spread(t_start, t_end, nbytes / MB)

    def record_demand(self, t: float, nbytes: int) -> None:
        self.demand_series.add(t, nbytes / MB)


@dataclass
class SimulationResult:
    """Immutable outcome of one simulation run.

    ``wall_seconds`` is when the simulation fully drained (including
    write-behind flushes still in flight after the last process exited);
    ``completion_seconds`` is when the last process finished, which is
    the window idle time and utilization are measured over -- a CPU with
    no processes left has nothing to be idle *from*.
    """

    wall_seconds: float
    completion_seconds: float
    n_cpus: int
    busy_seconds: float
    switch_seconds: float
    interrupt_seconds: float
    cache: CacheStats
    processes: dict[int, ProcessStats]
    disk_read_rate: RateSeries
    disk_write_rate: RateSeries
    demand_rate: RateSeries
    busy_rate: RateSeries
    disk_sequential_fraction: float
    #: sum of all disk service times (device-seconds of positioning +
    #: transfer) -- the load the I/O system carried
    disk_busy_seconds: float
    events_run: int
    faults: FaultStats = field(default_factory=FaultStats)

    @property
    def idle_seconds(self) -> float:
        """Processor time with nothing to run (the Figure 8 quantity).

        Summed across CPUs: with n CPUs the available processor time over
        the completion window is ``n * completion_seconds``.
        """
        return max(
            0.0,
            self.n_cpus * self.completion_seconds - self.accounted_busy_seconds,
        )

    @property
    def accounted_busy_seconds(self) -> float:
        return self.busy_seconds + self.switch_seconds + self.interrupt_seconds

    @property
    def utilization(self) -> float:
        """Fraction of the completion window the CPUs were busy."""
        if self.completion_seconds == 0:
            return 0.0
        return min(
            1.0,
            self.accounted_busy_seconds / (self.n_cpus * self.completion_seconds),
        )

    def utilization_after(self, warmup_seconds: float) -> float:
        """CPU utilization excluding a cold-start window.

        The paper's full-length runs amortize the first data-set sweep's
        compulsory misses over hundreds of cycles; scaled-down replays do
        not, so steady-state claims (the >99% SSD utilizations) are
        checked on the post-warm-up window.
        """
        if warmup_seconds >= self.completion_seconds:
            return self.utilization
        rates = self.busy_rate.rates
        times = self.busy_rate.times
        mask = (times >= warmup_seconds) & (times < self.completion_seconds)
        busy = float((rates[mask] * self.busy_rate.bin_width).sum())
        window = (self.completion_seconds - warmup_seconds) * self.n_cpus
        return min(1.0, busy / window) if window > 0 else 0.0

    @property
    def disk_rate(self) -> RateSeries:
        """Combined read+write disk traffic in MB/s over wall time."""
        import numpy as np

        r, w = self.disk_read_rate, self.disk_write_rate
        n = max(r.rates.size, w.rates.size)
        rates = np.zeros(n)
        rates[: r.rates.size] += r.rates
        rates[: w.rates.size] += w.rates
        times = np.arange(n) * r.bin_width
        return RateSeries(times, rates, r.bin_width)

    @property
    def goodput_bytes(self) -> int:
        """Application bytes that actually made it: requested minus failed.

        Under faults some reads are reported failed and some write-behind
        data is dropped (flush retries exhausted, or dirty at a crash);
        this is the delivered remainder -- the numerator of any
        "utilization under faults" curve.
        """
        total = self.cache.read_bytes + self.cache.write_bytes
        # failed_write_bytes is a device-level count; the application-level
        # write loss is lost_bytes (what the cache actually dropped).
        lost = self.faults.failed_read_bytes + self.faults.lost_bytes
        return max(0, total - lost)

    def digest(self) -> str:
        """SHA-256 over every scalar and series in the result.

        Two runs are the same simulation iff their digests match -- the
        determinism contract the parallel sweep runner is tested against
        (serial and pooled execution must be bit-identical).
        """
        import hashlib
        import struct

        h = hashlib.sha256()

        def f(x: float) -> None:
            h.update(struct.pack("<d", float(x)))

        def i(x: int) -> None:
            h.update(struct.pack("<q", int(x)))

        f(self.wall_seconds)
        f(self.completion_seconds)
        i(self.n_cpus)
        f(self.busy_seconds)
        f(self.switch_seconds)
        f(self.interrupt_seconds)
        f(self.disk_sequential_fraction)
        f(self.disk_busy_seconds)
        i(self.events_run)
        for name in (
            "read_requests", "read_bytes", "write_requests", "write_bytes",
            "block_hits", "block_misses", "block_inflight_hits",
            "readahead_hits", "prefetch_issued", "prefetch_blocks",
            "writes_absorbed", "writes_cancelled", "frame_stalls",
            "bypass_requests",
        ):
            i(getattr(self.cache, name))
        if self.faults.any_faults:
            # Folded in only when something deviated, so fault-free runs
            # keep the pre-fault-layer digest (golden tables stay valid).
            for name in (
                "injected_errors", "injected_slowdowns", "timeouts",
                "retries", "recovered", "max_attempts",
                "failed_reads", "failed_writes",
                "failed_read_bytes", "failed_write_bytes",
                "reflushes", "lost_bytes", "degraded_requests",
            ):
                i(getattr(self.faults, name))
            i(1 if self.faults.crashed else 0)
            f(-1.0 if self.faults.crash_time_s is None else self.faults.crash_time_s)
            f(-1.0 if self.faults.degraded_at_s is None else self.faults.degraded_at_s)
        for pid in sorted(self.processes):
            p = self.processes[pid]
            i(pid)
            f(p.cpu_seconds)
            f(p.blocked_seconds)
            f(-1.0 if p.finish_time is None else p.finish_time)
            i(p.n_ios)
        for series in (
            self.disk_read_rate, self.disk_write_rate,
            self.demand_rate, self.busy_rate,
        ):
            f(series.bin_width)
            h.update(series.rates.astype("<f8").tobytes())
        return h.hexdigest()

    def summary(self) -> str:
        lines = [
            f"wall time: {self.wall_seconds:.2f} s",
            f"CPU busy:  {self.accounted_busy_seconds:.2f} s "
            f"(utilization {self.utilization:.1%})",
            f"CPU idle:  {self.idle_seconds:.2f} s",
            f"cache hit fraction: {self.cache.hit_fraction:.1%} "
            f"(resident {self.cache.resident_hit_fraction:.1%})",
            f"disk traffic: read {self.disk_read_rate.total:.1f} MB, "
            f"write {self.disk_write_rate.total:.1f} MB "
            f"(sequential fraction {self.disk_sequential_fraction:.1%})",
        ]
        if self.faults.any_faults:
            fs = self.faults
            lines.append(
                f"faults: {fs.injected_errors} errors, "
                f"{fs.injected_slowdowns} slowdowns, {fs.timeouts} timeouts; "
                f"{fs.retries} retries ({fs.recovered} recovered, "
                f"max {fs.max_attempts} attempts); "
                f"lost {fs.lost_bytes / MB:.2f} MB, "
                f"goodput {self.goodput_bytes / MB:.1f} MB"
            )
            if fs.crashed:
                lines.append(f"CRASHED at {fs.crash_time_s:.2f} s")
            if fs.degraded_at_s is not None:
                lines.append(
                    f"degraded mode (SSD bypassed) from {fs.degraded_at_s:.2f} s "
                    f"({fs.degraded_requests} requests rerouted)"
                )
        for pid in sorted(self.processes):
            p = self.processes[pid]
            finish = f"{p.finish_time:.2f}" if p.finish_time is not None else "DNF"
            lines.append(
                f"process {pid}: cpu {p.cpu_seconds:.2f} s, "
                f"blocked {p.blocked_seconds:.2f} s, finished at {finish} s"
            )
        return "\n".join(lines)
