"""Simulator configuration.

One :class:`SimConfig` captures every knob section 6 describes:

* the scheduler's quantum and overheads ("a simple round-robin scheduler
  with a quantum that can be specified each time it is run.  The
  process-switching overhead, file system code overhead, and interrupt
  service time are also parameters");
* the buffer cache's size, block size, read-ahead and write-behind
  policies, and the optional per-process buffer-ownership cap whose
  failure section 6.2 reports;
* whether the cache is *main memory* (free hits) or the *SSD* ("we
  treated it as a huge main-memory cache, and added per-block penalties
  for cache hits ... approximately 1 us per kilobyte transferred (at
  1 GB/sec), with some additional overhead to set up the transfer");
* the disk model's timing constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass, replace

from repro.util.units import KB, MB


def _config_dict(obj) -> dict:
    """A plain dict of a config dataclass in declared field order.

    Field order is the dataclass declaration order (not ``sorted``) so the
    serialized form is stable across Python versions and refactors that
    merely reorder keyword arguments at call sites.  Values are left as
    the native ints/floats/bools/None; callers that need a drift-proof
    text form (cache keys, golden fixtures) should render floats with
    ``float.hex`` -- see :mod:`repro.exec.keys`.
    """
    out = {}
    for f in fields(obj):
        value = getattr(obj, f.name)
        out[f.name] = _config_dict(value) if is_dataclass(value) else value
    return out


@dataclass(frozen=True)
class DiskConfig:
    """Analytic disk-timing model (no queueing, per the paper)."""

    bandwidth_bytes_per_sec: float = 9.6 * MB
    #: fixed controller/OS overhead per request
    base_overhead_s: float = 1.0e-3
    #: seek cost when the request is not sequential with the previous
    #: access to the same file; scales with logical distance up to max.
    min_seek_s: float = 5.0e-3
    max_seek_s: float = 25.0e-3
    #: logical distance at which seek cost saturates at max_seek_s
    seek_span_bytes: int = 1024 * MB
    #: full platter rotation ("the Cray Y-MP disks seek relatively
    #: slowly"; DD-49-class drives rotate in ~16.7 ms)
    rotation_period_s: float = 16.7e-3
    #: number of spindles files are spread over; 0 = one disk per file
    #: (the logical-trace default: "it was impossible to map requests to
    #: individual disks"), a positive value hashes files onto that many
    #: disks so their head positions interfere
    n_disks: int = 0

    def mean_positioning_s(self) -> float:
        """Average non-sequential positioning cost (seek + half turn)."""
        return (
            self.base_overhead_s
            + (self.min_seek_s + self.max_seek_s) / 2
            + self.rotation_period_s / 2
        )

    def to_dict(self) -> dict:
        """Deterministic plain-dict form (stable field order)."""
        return _config_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DiskConfig":
        return cls(**data)


@dataclass(frozen=True)
class CacheConfig:
    """Buffer cache geometry and policies."""

    size_bytes: int = 32 * MB
    block_bytes: int = 4 * KB
    read_ahead: bool = True
    write_behind: bool = True
    #: None = unlimited; otherwise the per-process buffer-ownership cap
    #: (the 6.2 experiment that "actually worsened CPU utilization")
    max_blocks_per_process: int | None = None
    #: read-ahead depth in requests; None = auto (deeper when buffer
    #: space allows, reproducing "the cache did not have enough buffer
    #: space to allow full read-ahead")
    read_ahead_depth: int | None = None
    #: Sprite-style delayed writes (section 2.1): dirty data sits in the
    #: cache this long before the flush is issued, so short-lived files
    #: can be deleted without ever reaching the disk.  0 = flush
    #: immediately (the paper's write-behind).  The paper argues delay
    #: buys nothing for supercomputer workloads -- "iterations take
    #: hundreds of seconds and files are hundreds of megabytes long".
    flush_delay_s: float = 0.0
    #: SSD-as-cache hit penalties; zero for a main-memory cache
    hit_setup_s: float = 0.0
    hit_per_kb_s: float = 0.0

    @property
    def n_blocks(self) -> int:
        return max(1, self.size_bytes // self.block_bytes)

    def hit_penalty_s(self, nbytes: int) -> float:
        if self.hit_setup_s == 0.0 and self.hit_per_kb_s == 0.0:
            return 0.0
        return self.hit_setup_s + self.hit_per_kb_s * (nbytes / KB)

    def auto_depth(self, request_bytes: int) -> int:
        """Read-ahead depth achievable for a stream of this request size.

        Depth grows with the buffer space per stream: roughly one request
        of look-ahead per 16 requests' worth of cache, clamped to [1, 8].
        """
        if self.read_ahead_depth is not None:
            return self.read_ahead_depth
        request_bytes = max(request_bytes, self.block_bytes)
        depth = self.size_bytes // (16 * request_bytes)
        return int(min(8, max(1, depth)))

    def to_dict(self) -> dict:
        """Deterministic plain-dict form (stable field order)."""
        return _config_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CacheConfig":
        return cls(**data)


@dataclass(frozen=True)
class FaultConfig:
    """Deterministic, seeded device-fault injection.

    The paper's simulator assumes perfectly reliable devices; this layer
    models the three failure modes a host-side buffering system actually
    meets (transient I/O errors, slow-device latency spikes, and a crash
    that loses whatever write-behind had not yet made durable).  All
    rates default to zero, in which case the injector draws *no* random
    numbers and the simulation is bit-identical to a build without the
    fault layer.
    """

    #: probability a device request fails with a transient error
    error_rate: float = 0.0
    #: probability a device request suffers a latency spike
    slow_rate: float = 0.0
    #: service-time multiplier for a spiked request
    slow_factor: float = 8.0
    #: simulated crash instant: the run stops, and dirty (unflushed)
    #: cache bytes are counted as lost -- the data-at-risk metric.
    #: None = never crash.  A crash time past natural completion is a
    #: no-op (the run drained first).
    crash_at_s: float | None = None
    #: instant the cache device (the SSD) fails: its dirty contents are
    #: lost, residency is dropped, and every later request bypasses the
    #: cache straight to disk (degraded mode).  None = never.
    ssd_fail_at_s: float | None = None
    #: fault-stream seed; None derives it from the simulation seed, so
    #: repeated runs of one config replay the identical fault schedule
    seed: int | None = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.error_rate <= 1.0):
            raise ValueError(f"error_rate must be in [0,1]: {self.error_rate}")
        if not (0.0 <= self.slow_rate <= 1.0):
            raise ValueError(f"slow_rate must be in [0,1]: {self.slow_rate}")
        if self.error_rate + self.slow_rate > 1.0:
            raise ValueError("error_rate + slow_rate must not exceed 1")
        if self.slow_factor < 1.0:
            raise ValueError(f"slow_factor must be >= 1: {self.slow_factor}")

    @property
    def injects(self) -> bool:
        """True when per-request fault decisions are needed at all."""
        return self.error_rate > 0.0 or self.slow_rate > 0.0

    @property
    def enabled(self) -> bool:
        """True when any fault mechanism is configured."""
        return (
            self.injects
            or self.crash_at_s is not None
            or self.ssd_fail_at_s is not None
        )

    def to_dict(self) -> dict:
        """Deterministic plain-dict form (stable field order)."""
        return _config_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultConfig":
        return cls(**data)


@dataclass(frozen=True)
class RecoveryConfig:
    """Retry/backoff policy for transient device failures.

    A failed (or timed-out) device request is retried up to
    ``max_retries`` times with exponential backoff: retry *k* waits
    ``min(backoff_cap_s, backoff_base_s * backoff_factor**k *
    (1 + backoff_jitter * u))`` where ``u`` is a seeded uniform draw.
    ``backoff_jitter`` is clamped to ``backoff_factor - 1`` so the delay
    sequence stays monotone non-decreasing up to the cap (the property
    the chaos suite pins).
    """

    max_retries: int = 3
    backoff_base_s: float = 2e-3
    backoff_factor: float = 2.0
    backoff_cap_s: float = 0.25
    #: jitter fraction in [0, backoff_factor - 1]; 0 = deterministic
    backoff_jitter: float = 0.5
    #: per-request deadline: an attempt whose service time would exceed
    #: this is abandoned at the deadline and counts as a failed attempt.
    #: None = no timeout (the default, and the bit-identical fast path).
    timeout_s: float | None = None
    #: times a dirty extent is re-queued for flushing after its disk
    #: write permanently failed (write-behind's last line of defence);
    #: beyond this the dirty bytes are dropped and counted as lost
    max_reflushes: int = 2
    #: delay before a failed flush extent is re-queued
    reflush_delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {self.max_retries}")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1: {self.backoff_factor}")
        if not (0.0 <= self.backoff_jitter <= self.backoff_factor - 1.0):
            raise ValueError(
                "backoff_jitter must be in [0, backoff_factor - 1] to keep "
                f"backoff monotone: {self.backoff_jitter}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive: {self.timeout_s}")
        if self.max_reflushes < 0:
            raise ValueError(f"max_reflushes must be >= 0: {self.max_reflushes}")
        if self.reflush_delay_s < 0:
            raise ValueError("reflush_delay_s must be >= 0")

    def to_dict(self) -> dict:
        """Deterministic plain-dict form (stable field order)."""
        return _config_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RecoveryConfig":
        return cls(**data)


#: SSD penalties from section 6.3: ~1 us/KB at 1 GB/s plus setup.
SSD_HIT_SETUP_S = 50e-6
SSD_HIT_PER_KB_S = 1e-6


def ssd_cache(size_bytes: int, *, block_bytes: int = 32 * KB, **kw) -> CacheConfig:
    """A CacheConfig modelling the SSD as a huge cache with hit penalties."""
    return CacheConfig(
        size_bytes=size_bytes,
        block_bytes=block_bytes,
        hit_setup_s=SSD_HIT_SETUP_S,
        hit_per_kb_s=SSD_HIT_PER_KB_S,
        **kw,
    )


@dataclass(frozen=True)
class SchedulerConfig:
    """Round-robin CPU scheduling parameters."""

    #: identical processors sharing one ready queue (the paper models 1;
    #: the Y-MP had 8 -- see the n+1-rule experiment)
    n_cpus: int = 1
    quantum_s: float = 0.05
    switch_overhead_s: float = 20e-6
    interrupt_service_s: float = 30e-6
    #: per-I/O file system code CPU charged by the simulator on top of
    #: the trace's own process-time deltas (which already include the
    #: traced system's library path); default 0 to avoid double counting.
    fs_overhead_s: float = 0.0

    def to_dict(self) -> dict:
        """Deterministic plain-dict form (stable field order)."""
        return _config_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SchedulerConfig":
        return cls(**data)


@dataclass(frozen=True)
class SimConfig:
    """Everything one simulation run needs."""

    cache: CacheConfig = field(default_factory=CacheConfig)
    disk: DiskConfig = field(default_factory=DiskConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)
    seed: int = 0
    #: wall-clock bin width for the disk-traffic series (the figures)
    traffic_bin_s: float = 1.0

    def with_cache(self, **changes) -> "SimConfig":
        return replace(self, cache=replace(self.cache, **changes))

    def with_scheduler(self, **changes) -> "SimConfig":
        return replace(self, scheduler=replace(self.scheduler, **changes))

    def with_disk(self, **changes) -> "SimConfig":
        return replace(self, disk=replace(self.disk, **changes))

    def with_faults(self, **changes) -> "SimConfig":
        return replace(self, faults=replace(self.faults, **changes))

    def with_recovery(self, **changes) -> "SimConfig":
        return replace(self, recovery=replace(self.recovery, **changes))

    def with_seed(self, seed: int) -> "SimConfig":
        return replace(self, seed=seed)

    def to_dict(self) -> dict:
        """Deterministic nested-dict form (stable field order throughout)."""
        return _config_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SimConfig":
        data = dict(data)
        # Pre-fault-layer dicts lack the faults/recovery sections; they
        # deserialize to the disabled defaults (the identical simulation).
        faults = data.pop("faults", None)
        recovery = data.pop("recovery", None)
        return cls(
            cache=CacheConfig.from_dict(data.pop("cache")),
            disk=DiskConfig.from_dict(data.pop("disk")),
            scheduler=SchedulerConfig.from_dict(data.pop("scheduler")),
            faults=FaultConfig.from_dict(faults) if faults else FaultConfig(),
            recovery=(
                RecoveryConfig.from_dict(recovery) if recovery else RecoveryConfig()
            ),
            **data,
        )
