"""Discrete-event engine.

A minimal calendar: callbacks scheduled at absolute times, executed in
nondecreasing time order with FIFO tie-breaking (a monotonically
increasing sequence number).  Everything in the simulator -- quantum
expiry, disk completion, flusher progress -- is one of these events.

Clock contract
--------------
``run(until=t)`` always leaves ``now == t`` (unless an event callback
raised), even when the calendar drained early or the next event lies
beyond ``t``.  Callers that interleave ``run(until=...)`` with
``schedule(delay, ...)`` therefore compute delays from a fresh clock; an
earlier version left ``now`` stuck at the last executed event, silently
shifting every subsequently scheduled event backwards.

Event times are floats.  Chains of ``schedule(self.now + delay)``
accumulate floating-point error relative to the trace's 10 microsecond
integer tick base -- after millions of events the accumulated time can
drift past an exact ``until`` boundary and drop the event that should
land on it.  Passing ``tick_s`` snaps every scheduled time to the
nearest multiple of the tick, which resets the error at every event
instead of letting it accumulate (grid multiples are fixed points of the
snap, so times never move backwards).
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.obs.registry import get_registry
from repro.util.errors import SimulationError


class Engine:
    """Event calendar and simulated clock."""

    def __init__(self, *, tick_s: float | None = None, obs=None) -> None:
        if tick_s is not None and tick_s <= 0:
            raise SimulationError(f"tick_s must be positive, got {tick_s}")
        self.now: float = 0.0
        self.tick_s = tick_s
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._events_run = 0
        reg = obs if obs is not None else get_registry()
        self._c_events = reg.counter("sim.engine.events_run")
        self._c_advanced = reg.counter("sim.engine.time_advanced_s")
        self._g_heap = reg.gauge("sim.engine.heap_depth")

    def schedule_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute time ``when`` (>= now)."""
        if self.tick_s is not None:
            when = round(when / self.tick_s) * self.tick_s
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event at {when} before now={self.now}"
            )
        heapq.heappush(self._heap, (when, self._seq, fn))
        self._seq += 1
        self._g_heap.set_max(len(self._heap))

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule_at(self.now + delay, fn)

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def events_run(self) -> int:
        return self._events_run

    def run(
        self,
        *,
        max_events: int | None = None,
        until: float | None = None,
        advance_clock: bool = True,
    ) -> None:
        """Drain the calendar.

        Stops when empty, after ``max_events`` (a runaway guard), or when
        the next event lies beyond ``until``.  On a normal return with
        ``until`` given, the clock is advanced to ``until`` even if no
        event landed there (see the module docstring's clock contract).
        ``advance_clock=False`` suppresses that final jump: segmented
        callers (the crash/degrade cuts in ``SimulatedSystem.run``) probe
        whether the simulation drained *before* the cut without moving
        ``now`` past the last real event.
        """
        t0 = self.now
        e0 = self._events_run
        try:
            while self._heap:
                if max_events is not None and self._events_run >= max_events:
                    raise SimulationError(
                        f"event budget exhausted after {self._events_run} events"
                    )
                when, _, fn = self._heap[0]
                if until is not None and when > until:
                    break
                heapq.heappop(self._heap)
                if when < self.now:
                    raise SimulationError("event queue went backwards")
                self.now = when
                self._events_run += 1
                fn()
            if until is not None and advance_clock and self.now < until:
                self.now = until
        finally:
            self._c_events.inc(self._events_run - e0)
            self._c_advanced.add(self.now - t0)
