"""Discrete-event engine.

A minimal calendar: callbacks scheduled at absolute times, executed in
nondecreasing time order with FIFO tie-breaking (a monotonically
increasing sequence number).  Everything in the simulator -- quantum
expiry, disk completion, flusher progress -- is one of these events.

Clock contract
--------------
``run(until=t)`` always leaves ``now == t`` (unless an event callback
raised), even when the calendar drained early or the next event lies
beyond ``t``.  Callers that interleave ``run(until=...)`` with
``schedule(delay, ...)`` therefore compute delays from a fresh clock; an
earlier version left ``now`` stuck at the last executed event, silently
shifting every subsequently scheduled event backwards.

Event times are floats.  Chains of ``schedule(self.now + delay)``
accumulate floating-point error relative to the trace's 10 microsecond
integer tick base -- after millions of events the accumulated time can
drift past an exact ``until`` boundary and drop the event that should
land on it.  Passing ``tick_s`` snaps every scheduled time to the
nearest multiple of the tick, which resets the error at every event
instead of letting it accumulate (grid multiples are fixed points of the
snap, so times never move backwards).

Allocation discipline
---------------------
The calendar runs millions of events per simulation, so the per-event
cost is kept to one preallocated tuple: callbacks take their arguments
through ``schedule(delay, fn, *args)`` instead of capturing them in a
closure (callers previously allocated a fresh lambda per event, which
dominated the scheduler's profile).  The heap entry is ``(when, seq,
fn, args)``; ``seq`` is unique, so ``fn``/``args`` never take part in
heap comparisons.  Cancellation is lazy: :meth:`cancel` records the
entry's sequence number and the run loop discards it -- without running
it, counting it, or advancing the clock -- when it reaches the top.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable

from repro.obs.registry import get_registry
from repro.util.errors import SimulationError


class Engine:
    """Event calendar and simulated clock."""

    def __init__(self, *, tick_s: float | None = None, obs=None) -> None:
        if tick_s is not None and tick_s <= 0:
            raise SimulationError(f"tick_s must be positive, got {tick_s}")
        self.now: float = 0.0
        self.tick_s = tick_s
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._seq = 0
        self._events_run = 0
        self._cancelled: set[int] = set()
        # Bounds of the innermost active run() -- published so that batch
        # kernels emulating event chains inline (see repro.sim.batch) can
        # tell how far they may advance the clock without running past a
        # stop condition the caller asked for.  Outside run() they hold
        # their idle defaults.
        self.run_until: float = math.inf
        self.run_max_events: int | None = None
        self.run_active: bool = False
        # Optional batch-kernel hook, called at the top of each run()
        # iteration -- i.e. strictly *between* events, never from inside
        # a callback -- so emulated chains can never overtake a
        # callback's trailing effects.  None under the event engine.
        # ``pump_watch`` is an optional pair of callback identities the
        # pump acts on (the scheduler's dispatch and slice-expiry
        # methods): when set, run() invokes the pump only while one of
        # them heads the calendar, turning the per-event hook cost into
        # two pointer comparisons on the iterations -- the vast majority
        # in miss-heavy phases -- where the pump would bail immediately.
        self.pump: Callable[[], None] | None = None
        self.pump_watch: tuple[Callable, Callable] | None = None
        reg = obs if obs is not None else get_registry()
        self._c_events = reg.counter("sim.engine.events_run")
        self._c_advanced = reg.counter("sim.engine.time_advanced_s")
        self._g_heap = reg.gauge("sim.engine.heap_depth")

    def schedule_at(self, when: float, fn: Callable[..., None], *args) -> int:
        """Run ``fn(*args)`` at absolute time ``when`` (>= now).

        Returns a handle usable with :meth:`cancel`.
        """
        if self.tick_s is not None:
            when = round(when / self.tick_s) * self.tick_s
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event at {when} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (when, seq, fn, args))
        self._g_heap.set_max(len(self._heap))
        return seq

    def schedule(self, delay: float, fn: Callable[..., None], *args) -> int:
        """Run ``fn(*args)`` after ``delay`` seconds of simulated time.

        Returns a handle usable with :meth:`cancel`.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def cancel(self, handle: int) -> None:
        """Drop a scheduled event.  O(1); the entry is discarded when it
        surfaces, without running, being counted, or advancing the clock.
        """
        self._cancelled.add(handle)

    @property
    def pending(self) -> int:
        return len(self._heap)

    def next_event_time(self) -> float:
        """Time of the earliest calendar entry, or +inf when empty.

        Cancelled entries still pending discard are *included*: treating
        them as live only makes the bound conservative, which is what the
        batch kernel's advance barrier needs.
        """
        return self._heap[0][0] if self._heap else math.inf

    def advance_inline(self, when: float, count: int, seqs: int | None = None) -> None:
        """Account ``count`` events as if they ran, ending at ``when``.

        The batch kernel uses this to replace heap push/pop cycles whose
        outcome it has computed directly: the clock jumps to the chain's
        end time and the counters advance so ``events_run`` -- which is
        part of the result digest -- matches the event-at-a-time engine
        exactly.  ``seqs`` is the number of *sequence numbers* the real
        engine would have allocated over the same stretch; it differs
        from ``count`` when some elided events were already scheduled
        (their seq was consumed at schedule time) -- passing the right
        value keeps every future tie-break identical to the event
        engine.  Defaults to ``count`` (no elided event ever scheduled).
        Callers must guarantee ``when`` does not run past the earliest
        calendar entry or the active run() bounds.
        """
        if when < self.now:
            raise SimulationError(
                f"cannot advance inline to {when} before now={self.now}"
            )
        self.now = when
        self._seq += count if seqs is None else seqs
        self._events_run += count

    @property
    def events_run(self) -> int:
        return self._events_run

    def run(
        self,
        *,
        max_events: int | None = None,
        until: float | None = None,
        advance_clock: bool = True,
    ) -> None:
        """Drain the calendar.

        Stops when empty, after ``max_events`` (a runaway guard), or when
        the next event lies beyond ``until``.  On a normal return with
        ``until`` given, the clock is advanced to ``until`` even if no
        event landed there (see the module docstring's clock contract).
        ``advance_clock=False`` suppresses that final jump: segmented
        callers (the crash/degrade cuts in ``SimulatedSystem.run``) probe
        whether the simulation drained *before* the cut without moving
        ``now`` past the last real event.
        """
        t0 = self.now
        e0 = self._events_run
        heap = self._heap
        heappop = heapq.heappop
        cancelled = self._cancelled
        self.run_until = math.inf if until is None else until
        self.run_max_events = max_events
        self.run_active = True
        pump = self.pump
        if pump is not None and self.pump_watch is not None:
            watch_a, watch_b = self.pump_watch
        else:
            watch_a = watch_b = None
        try:
            while heap:
                if pump is not None:
                    fn = heap[0][2]
                    if watch_a is None or fn is watch_a or fn is watch_b:
                        pump()
                        if not heap:
                            break
                if max_events is not None and self._events_run >= max_events:
                    raise SimulationError(
                        f"event budget exhausted after {self._events_run} events"
                    )
                item = heap[0]
                when = item[0]
                if until is not None and when > until:
                    break
                heappop(heap)
                if cancelled and item[1] in cancelled:
                    cancelled.discard(item[1])
                    continue
                if when < self.now:
                    raise SimulationError("event queue went backwards")
                self.now = when
                self._events_run += 1
                item[2](*item[3])
            if until is not None and advance_clock and self.now < until:
                self.now = until
        finally:
            self.run_until = math.inf
            self.run_max_events = None
            self.run_active = False
            self._c_events.inc(self._events_run - e0)
            self._c_advanced.add(self.now - t0)
