"""Discrete-event engine.

A minimal calendar: callbacks scheduled at absolute times, executed in
nondecreasing time order with FIFO tie-breaking (a monotonically
increasing sequence number).  Everything in the simulator -- quantum
expiry, disk completion, flusher progress -- is one of these events.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.util.errors import SimulationError


class Engine:
    """Event calendar and simulated clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._events_run = 0

    def schedule_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event at {when} before now={self.now}"
            )
        heapq.heappush(self._heap, (when, self._seq, fn))
        self._seq += 1

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule_at(self.now + delay, fn)

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def events_run(self) -> int:
        return self._events_run

    def run(self, *, max_events: int | None = None, until: float | None = None) -> None:
        """Drain the calendar.

        Stops when empty, after ``max_events`` (a runaway guard), or when
        the next event lies beyond ``until``.
        """
        while self._heap:
            if max_events is not None and self._events_run >= max_events:
                raise SimulationError(
                    f"event budget exhausted after {self._events_run} events"
                )
            when, _, fn = self._heap[0]
            if until is not None and when > until:
                return
            heapq.heappop(self._heap)
            if when < self.now:
                raise SimulationError("event queue went backwards")
            self.now = when
            self._events_run += 1
            fn()
