"""Reference buffer cache: per-block bookkeeping, retained for testing.

This is the pre-optimization implementation of :mod:`repro.sim.cache`,
kept verbatim as the semantic reference.  The production cache coalesces
block runs through the LRU and allocator; this one pays O(blocks) dict
and ``OrderedDict`` operations per request.  The differential digest
tests (``tests/sim/test_hotpath_differential.py``) replay identical
workloads through both and assert bit-identical
:meth:`~repro.sim.metrics.SimulationResult.digest` values, so any
behavioral drift in the fast path is caught against this file.  Select
it at run time with ``REPRO_CACHE_IMPL=legacy`` or
``SimulatedSystem(..., cache_impl="legacy")``.

The cache sits between the trace-replay processes and the disk model:

* demand **reads** are satisfied from resident blocks (free for a
  main-memory cache, per-KB penalty for the SSD), from blocks already in
  flight (a previous miss or a prefetch), or by issuing disk reads for
  the missing block runs;
* **read-ahead** watches each file for the sequential same-size pattern
  ("an I/O request was not only sequential with the previous I/O, but
  was also the same size.  Thus, prefetching the amount of data just
  read allowed the application to continue without waiting, but did not
  fill the cache with data that would be unused for some time") and keeps
  up to ``depth`` requests of look-ahead in flight, where the default
  depth grows with available buffer space;
* **write-behind** lets the writer continue as soon as the data is in
  cache frames ("it was easy to allow a process to continue executing
  while written data had not yet gone to disk"); a flusher pushes dirty
  extents to disk immediately but asynchronously.  With write-behind off,
  writes block until the disk write completes;
* frames are recycled LRU among clean resident blocks; requests that
  cannot get frames (everything dirty or in flight) park until a frame
  frees -- the contention behind section 6.2's buffer-hogging
  observation.  An optional per-process ownership cap reproduces the
  failed mitigation ("a limit on the number of buffers a process could
  own did not relieve the problem, and actually worsened CPU
  utilization").

Implementation note: requests are decomposed into 4-8 KB blocks, so a
single venus-sized request touches ~100 frames.  The hot paths therefore
allocate/evict/settle *runs* of blocks per call and complete disk reads
with one per-run callback, not per-block closures.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro.obs.registry import get_registry
from repro.sim.config import CacheConfig, FaultConfig, RecoveryConfig
from repro.sim.devices import DiskModel
from repro.sim.events import Engine
from repro.sim.faults import FaultInjector
from repro.sim.metrics import Metrics
from repro.sim.recovery import RecoveringDevice
from repro.util.errors import SimulationError


class BlockState(Enum):
    READING = 0  #: disk read in flight; frame pinned
    VALID = 1  #: clean resident; evictable
    DIRTY = 2  #: written, awaiting flush start
    FLUSHING = 3  #: disk write in flight; frame pinned


_READING = BlockState.READING
_VALID = BlockState.VALID
_DIRTY = BlockState.DIRTY
_FLUSHING = BlockState.FLUSHING


class Block:
    """One cache frame's contents."""

    __slots__ = ("key", "state", "owner", "prefetched", "waiters")

    def __init__(self, key: tuple[int, int], state: BlockState, owner: int):
        self.key = key
        self.state = state
        self.owner = owner
        self.prefetched = False
        self.waiters: list[Callable[[], None]] | None = None


class _DelayedFlush:
    """A dirty extent waiting out its Sprite-style delay."""

    __slots__ = ("file_id", "offset", "length", "blocks", "cancelled")

    def __init__(
        self, file_id: int, offset: int, length: int, blocks: list[Block]
    ):
        self.file_id = file_id
        self.offset = offset
        self.length = length
        self.blocks = blocks
        self.cancelled = False


@dataclass
class _StreamState:
    """Per-file sequential-pattern tracking for the prefetcher."""

    next_offset: int  # end of the last demand read
    length: int  # last demand request size
    prefetch_until: int = 0  # exclusive end of issued prefetch


class BufferCache:
    """Block cache over one disk model."""

    def __init__(
        self,
        config: CacheConfig,
        engine: Engine,
        disk: DiskModel,
        metrics: Metrics,
        *,
        file_sizes: dict[int, int] | None = None,
        device: RecoveringDevice | None = None,
        obs=None,
    ):
        self.config = config
        self.engine = engine
        self.disk = disk
        self.metrics = metrics
        if device is None:
            # No fault plan: a passthrough device, bit-identical to the
            # old inline disk calls.
            device = RecoveringDevice(
                disk,
                engine,
                FaultInjector(FaultConfig()),
                RecoveryConfig(),
                metrics,
                obs=obs,
            )
        self.device = device
        self.recovery = device.config
        #: SSD failed: bypass the cache, fall through to the disk
        self.degraded = False
        reg = obs if obs is not None else get_registry()
        self._c_evictions = reg.counter("sim.cache.evictions")
        self._c_parks = reg.counter("sim.cache.frame_wait_parks")
        self._g_wb_queue = reg.gauge("sim.cache.writebehind_queue_depth")
        self._blocks: dict[tuple[int, int], Block] = {}
        self._clean_lru: OrderedDict[tuple[int, int], Block] = OrderedDict()
        self._frame_waiters: deque[Callable[[], bool]] = deque()
        self._owner_counts: dict[int, int] = {}
        self._streams: dict[int, _StreamState] = {}
        #: known file sizes, bounding prefetch past end-of-file
        self._file_sizes = dict(file_sizes or {})
        self.outstanding_flushes = 0
        self._delayed_flushes: dict[int, list["_DelayedFlush"]] = {}
        self.on_drained: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    # Public request API
    # ------------------------------------------------------------------
    def read(
        self,
        file_id: int,
        offset: int,
        length: int,
        owner: int,
        on_complete: Callable[[], None],
    ) -> None:
        """Demand read.

        ``on_complete(cpu_penalty_s)`` fires (synchronously for resident
        data) once all bytes are available; its argument is the SSD
        copy-through cost the caller must charge as CPU time.
        """
        if length <= 0:
            raise SimulationError("read length must be positive")
        stats = self.metrics.cache
        stats.read_requests += 1
        stats.read_bytes += length
        self.metrics.record_demand(self.engine.now, length)
        self._note_file_size(file_id, offset + length)

        if self.degraded:
            self.metrics.faults.degraded_requests += 1
            self._bypass_read(file_id, offset, length, on_complete)
            return
        if self._oversized(offset, length, owner):
            self._bypass_read(file_id, offset, length, on_complete)
            return
        pending = _PendingRead(self, file_id, offset, length, owner, on_complete)
        if not pending.start():
            self.park_for_frames(pending.start)
        self._after_demand_read(file_id, offset, length, owner)

    def write(
        self,
        file_id: int,
        offset: int,
        length: int,
        owner: int,
        on_complete: Callable[[], None],
    ) -> None:
        """Demand write; completion timing depends on the write policy."""
        if length <= 0:
            raise SimulationError("write length must be positive")
        stats = self.metrics.cache
        stats.write_requests += 1
        stats.write_bytes += length
        self.metrics.record_demand(self.engine.now, length)
        self._note_file_size(file_id, offset + length)

        if self.degraded:
            self.metrics.faults.degraded_requests += 1
            self._bypass_write(file_id, offset, length, on_complete)
            return
        if self._oversized(offset, length, owner):
            self._bypass_write(file_id, offset, length, on_complete)
            return
        pending = _PendingWrite(self, file_id, offset, length, owner, on_complete)
        if not pending.start():
            self.park_for_frames(pending.start)

    # ------------------------------------------------------------------
    # Oversized-request bypass
    # ------------------------------------------------------------------
    def _oversized(self, offset: int, length: int, owner: int) -> bool:
        """True when the request can never be framed: bigger than the
        cache itself, or bigger than the owner's buffer cap.  Such
        requests go straight to the disk (the classic bypass), otherwise
        they would park forever.
        """
        first, last = self._block_span(offset, length)
        needed = last - first + 1
        if needed > self.config.n_blocks:
            return True
        cap = self.config.max_blocks_per_process
        return cap is not None and needed > cap

    def _bypass_read(
        self, file_id: int, offset: int, length: int, on_complete
    ) -> None:
        self.metrics.cache.bypass_requests += 1
        # Degraded requests never touched the (failed) SSD, so no
        # copy-through penalty.
        penalty = 0.0 if self.degraded else self.config.hit_penalty_s(length)
        # A failed read still unblocks the requester: the I/O is
        # *reported* failed (device counters) rather than lost.
        self.device.submit(
            file_id,
            offset,
            length,
            is_write=False,
            on_done=lambda ok: on_complete(penalty),
        )

    def _bypass_write(
        self, file_id: int, offset: int, length: int, on_complete
    ) -> None:
        self.metrics.cache.bypass_requests += 1
        penalty = 0.0 if self.degraded else self.config.hit_penalty_s(length)
        if self.config.write_behind:
            # The device streams straight from the writer's memory; the
            # writer continues once the transfer is handed off.
            self.outstanding_flushes += 1
            self._g_wb_queue.set_max(self.outstanding_flushes)

            def finished(ok: bool) -> None:
                if not ok:
                    # No cache frames to re-flush from: the data is gone.
                    self.metrics.faults.lost_bytes += length
                self.outstanding_flushes -= 1
                if self.outstanding_flushes == 0 and self.on_drained is not None:
                    self.on_drained()

            self.device.submit(
                file_id, offset, length, is_write=True, on_done=finished
            )
            on_complete(penalty)
        else:
            self.device.submit(
                file_id,
                offset,
                length,
                is_write=True,
                on_done=lambda ok: on_complete(penalty),
            )

    # ------------------------------------------------------------------
    # Geometry / bookkeeping
    # ------------------------------------------------------------------
    def _block_span(self, offset: int, length: int) -> tuple[int, int]:
        """(first_block, last_block) covering [offset, offset+length)."""
        bs = self.config.block_bytes
        return offset // bs, (offset + length - 1) // bs

    def _note_file_size(self, file_id: int, end: int) -> None:
        if end > self._file_sizes.get(file_id, 0):
            self._file_sizes[file_id] = end

    @property
    def resident_blocks(self) -> int:
        return len(self._blocks)

    def owner_blocks(self, owner: int) -> int:
        return self._owner_counts.get(owner, 0)

    def make_valid(self, block: Block) -> None:
        """Transition a block to clean-resident and put it at MRU."""
        if block.state is _VALID:
            self._clean_lru.move_to_end(block.key)
            return
        block.state = _VALID
        self._clean_lru[block.key] = block

    def make_unclean(self, block: Block, state: BlockState) -> None:
        """Transition a block out of the evictable pool."""
        if block.state is _VALID:
            self._clean_lru.pop(block.key, None)
        block.state = state

    # ------------------------------------------------------------------
    # Frame management
    # ------------------------------------------------------------------
    def _over_cap(self, owner: int, extra: int) -> bool:
        cap = self.config.max_blocks_per_process
        return cap is not None and self.owner_blocks(owner) + extra > cap

    def try_allocate_run(
        self, keys: list[tuple[int, int]], owner: int, state: BlockState
    ) -> list[Block] | None:
        """Install a run of absent blocks, evicting clean LRU as needed.

        All-or-nothing: returns None (no side effects) when not enough
        frames can be freed.  With an ownership cap, an over-cap process
        may only recycle its *own* clean frames.
        """
        needed = len(keys)
        if needed == 0:
            return []
        capped = self._over_cap(owner, needed)
        if capped:
            victims: list[Block] = []
            cap = self.config.max_blocks_per_process
            assert cap is not None
            allowed_new = max(0, cap - self.owner_blocks(owner))
            must_recycle = needed - allowed_new
            for block in self._clean_lru.values():
                if len(victims) >= must_recycle:
                    break
                if block.owner == owner:
                    victims.append(block)
            if len(victims) < must_recycle:
                return None
        else:
            free = self.config.n_blocks - len(self._blocks)
            must_evict = needed - free
            if must_evict > 0:
                if must_evict > len(self._clean_lru):
                    return None
                victims = []
                for block in self._clean_lru.values():
                    victims.append(block)
                    if len(victims) >= must_evict:
                        break
            else:
                victims = []

        if victims:
            self._c_evictions.inc(len(victims))
        for victim in victims:
            self._drop(victim)
        blocks = []
        counts = self._owner_counts
        counts[owner] = counts.get(owner, 0) + needed
        for key in keys:
            block = Block(key, state, owner)
            self._blocks[key] = block
            if state is _VALID:
                self._clean_lru[key] = block
            blocks.append(block)
        return blocks

    def _drop(self, block: Block) -> None:
        self._clean_lru.pop(block.key, None)
        del self._blocks[block.key]
        self._owner_counts[block.owner] = self._owner_counts.get(block.owner, 1) - 1

    def park_for_frames(self, retry: Callable[[], bool]) -> None:
        """Queue a retry closure to run when frames may be available."""
        self.metrics.cache.frame_stalls += 1
        self._c_parks.inc()
        self._frame_waiters.append(retry)

    def _kick_frame_waiters(self) -> None:
        n = len(self._frame_waiters)
        for _ in range(n):
            retry = self._frame_waiters.popleft()
            if not retry():
                self._frame_waiters.append(retry)

    # ------------------------------------------------------------------
    # Disk interaction
    # ------------------------------------------------------------------
    def issue_disk_read(
        self,
        file_id: int,
        offset: int,
        length: int,
        blocks: list[Block],
        on_done: Callable[[], None] | None = None,
    ) -> None:
        """One disk read covering ``blocks``; marks them VALID on arrival.

        When the device reports failure (retries exhausted), the READING
        frames are abandoned -- dropped from the cache so a later demand
        read retries from disk -- and any waiters are released anyway:
        the requester's I/O is reported failed, not lost.
        """

        def arrive(ok: bool) -> None:
            for block in blocks:
                # A write may have overwritten the block while the read
                # was in flight (state FLUSHING); only READING blocks
                # settle to VALID (or, on failure, get abandoned).
                if block.state is _READING:
                    if ok:
                        self.make_valid(block)
                    else:
                        self._drop(block)
                if block.waiters:
                    waiters, block.waiters = block.waiters, None
                    for w in waiters:
                        w()
            if on_done is not None:
                on_done()
            if self._frame_waiters:
                self._kick_frame_waiters()

        self.device.submit(file_id, offset, length, is_write=False, on_done=arrive)

    def issue_disk_write(
        self,
        file_id: int,
        offset: int,
        length: int,
        blocks: list[Block],
        on_done: Callable[[], None] | None = None,
        *,
        reflush: int = 0,
    ) -> None:
        """One disk write covering ``blocks``; they become clean on finish.

        When the device reports failure, blocks still dirty-in-flight are
        re-queued (back to DIRTY, re-flushed after ``reflush_delay_s``) up
        to ``max_reflushes`` times; past that the data is dropped and
        counted as lost.  The ``outstanding_flushes`` latch is held across
        the whole retry saga so the drain callback cannot fire while a
        re-flush is pending.
        """
        for block in blocks:
            self.make_unclean(block, _FLUSHING)
        self.outstanding_flushes += 1
        self._g_wb_queue.set_max(self.outstanding_flushes)

        def finished(ok: bool) -> None:
            if not ok:
                live = [
                    b
                    for b in blocks
                    if b.state is _FLUSHING and self._blocks.get(b.key) is b
                ]
                if live and reflush < self.recovery.max_reflushes:
                    self.metrics.faults.reflushes += 1
                    for b in live:
                        b.state = _DIRTY

                    def redo() -> None:
                        self.outstanding_flushes -= 1
                        still = [
                            b
                            for b in live
                            if b.state is _DIRTY and self._blocks.get(b.key) is b
                        ]
                        self._issue_flush_runs(
                            file_id, still, on_done, reflush=reflush + 1
                        )

                    # Latch stays held until redo() runs (decrement and
                    # re-issue are back to back, so drain cannot slip in).
                    self.engine.schedule(self.recovery.reflush_delay_s, redo)
                    return
                if live:
                    # Retries and re-flushes exhausted: write-behind data
                    # is dropped -- this is the data-at-risk turning into
                    # data lost.
                    self.metrics.faults.lost_bytes += (
                        len(live) * self.config.block_bytes
                    )
                    for b in live:
                        self._drop(b)
            else:
                for block in blocks:
                    if block.state is _FLUSHING and block.key in self._blocks:
                        self.make_valid(block)
            self.outstanding_flushes -= 1
            if on_done is not None:
                on_done()
            if self._frame_waiters:
                self._kick_frame_waiters()
            if self.outstanding_flushes == 0 and self.on_drained is not None:
                self.on_drained()

        self.device.submit(file_id, offset, length, is_write=True, on_done=finished)

    def _issue_flush_runs(
        self,
        file_id: int,
        blocks: list[Block],
        on_done: Callable[[], None] | None,
        *,
        reflush: int = 0,
    ) -> None:
        """Flush a (possibly sparse) set of dirty blocks as contiguous runs.

        Used when only part of an extent still needs writing -- a re-flush
        after failure, or a delayed flush some of whose blocks were
        already flushed by an overlapping extent.  ``on_done`` rides on
        the last run; with no runs at all it fires synchronously along
        with the drain check the skipped write would have performed.
        """
        if not blocks:
            if on_done is not None:
                on_done()
            if self.outstanding_flushes == 0 and self.on_drained is not None:
                self.on_drained()
            return
        bs = self.config.block_bytes
        blocks = sorted(blocks, key=lambda b: b.key[1])
        runs: list[list[Block]] = [[blocks[0]]]
        for block in blocks[1:]:
            if block.key[1] == runs[-1][-1].key[1] + 1:
                runs[-1].append(block)
            else:
                runs.append([block])
        for i, run in enumerate(runs):
            run_off = run[0].key[1] * bs
            run_len = len(run) * bs
            done = on_done if i == len(runs) - 1 else None
            self.issue_disk_write(
                file_id, run_off, run_len, run, done, reflush=reflush
            )

    # ------------------------------------------------------------------
    # Delayed writes (Sprite-style, section 2.1)
    # ------------------------------------------------------------------
    def schedule_delayed_flush(
        self, file_id: int, offset: int, length: int, blocks: list[Block]
    ) -> None:
        """Hold dirty blocks for ``flush_delay_s`` before flushing.

        If :meth:`discard_file` removes the file before the delay
        expires -- a compiler temporary deleted young -- the disk write
        never happens: "temporary files which exist for less than 30
        seconds ... [are] never written to disk".
        """
        for block in blocks:
            self.make_unclean(block, _DIRTY)
        handle = _DelayedFlush(file_id, offset, length, blocks)
        self._delayed_flushes.setdefault(file_id, []).append(handle)
        self.outstanding_flushes += 1  # keeps drain accounting honest
        self._g_wb_queue.set_max(self.outstanding_flushes)

        def fire() -> None:
            self.outstanding_flushes -= 1
            pending = self._delayed_flushes.get(file_id)
            if pending and handle in pending:
                pending.remove(handle)
            if handle.cancelled:
                if self.outstanding_flushes == 0 and self.on_drained is not None:
                    self.on_drained()
                return
            # Only blocks still DIRTY belong to this flush.  A block that
            # was rewritten during the delay is owned by the *newer*
            # delayed extent (state DIRTY but re-queued -- identity still
            # holds, so it stays here and the newer flush finds it
            # FLUSHING and skips it); one that was already flushed or
            # evicted is FLUSHING/VALID/absent and writing it again would
            # double-count the bytes in the write statistics.
            live = [
                b
                for b in blocks
                if b.state is _DIRTY and self._blocks.get(b.key) is b
            ]
            if len(live) == len(blocks):
                # Whole extent intact: one contiguous write, exactly as
                # originally queued.
                self.issue_disk_write(file_id, offset, length, live)
            else:
                self._issue_flush_runs(file_id, live, None)

        self.engine.schedule(self.config.flush_delay_s, fire)

    def discard_file(self, file_id: int) -> int:
        """Drop a deleted file: cancel its pending delayed flushes and
        free its resident clean/dirty frames.  Returns the number of
        cancelled flush extents (blocks already FLUSHING are beyond
        recall and complete normally).
        """
        cancelled = 0
        for handle in self._delayed_flushes.get(file_id, []):
            if not handle.cancelled:
                handle.cancelled = True
                cancelled += 1
                self.metrics.cache.writes_cancelled += 1
        for key in [k for k in self._blocks if k[0] == file_id]:
            block = self._blocks[key]
            if block.state in (_VALID, _DIRTY):
                self._drop(block)
        self._streams.pop(file_id, None)
        if cancelled:
            self._kick_frame_waiters()
        return cancelled

    # ------------------------------------------------------------------
    # Faults: data at risk, degraded mode
    # ------------------------------------------------------------------
    def dirty_bytes(self) -> int:
        """Write-behind bytes not yet safely on disk (data at risk).

        DIRTY blocks are waiting for their flush; FLUSHING blocks are in
        flight but unacknowledged.  A crash at this instant loses exactly
        this many bytes.
        """
        n = sum(
            1 for b in self._blocks.values() if b.state in (_DIRTY, _FLUSHING)
        )
        return n * self.config.block_bytes

    def enter_degraded(self) -> None:
        """The SSD died: dump its contents, route everything to disk.

        Resident clean data is simply gone (re-readable from disk);
        resident dirty data is lost with the device.  Blocks with disk
        transfers in flight (READING/FLUSHING) settle normally -- those
        transfers were already streaming.  Subsequent read/write requests
        bypass the cache entirely.
        """
        if self.degraded:
            return
        self.degraded = True
        self.metrics.faults.degraded_at_s = self.engine.now
        lost = 0
        for block in list(self._blocks.values()):
            if block.state is _DIRTY:
                lost += 1
                self._drop(block)
            elif block.state is _VALID:
                self._drop(block)
        self.metrics.faults.lost_bytes += lost * self.config.block_bytes
        # Parked requests retry through their original (cache-mediated)
        # closure; the pool just emptied, so let them finish that way.
        self._kick_frame_waiters()

    # ------------------------------------------------------------------
    # Read-ahead
    # ------------------------------------------------------------------
    def _after_demand_read(
        self, file_id: int, offset: int, length: int, owner: int
    ) -> None:
        if not self.config.read_ahead:
            return
        stream = self._streams.get(file_id)
        end = offset + length
        if stream is not None and offset == stream.next_offset:
            stream.next_offset = end
            stream.length = length
            self._prefetch(file_id, stream, owner)
        else:
            self._streams[file_id] = _StreamState(next_offset=end, length=length)

    def _prefetch(self, file_id: int, stream: _StreamState, owner: int) -> None:
        depth = self.config.auto_depth(stream.length)
        window_end = stream.next_offset + depth * stream.length
        file_end = self._file_sizes.get(file_id, 0)
        window_end = min(window_end, file_end)
        start = max(stream.prefetch_until, stream.next_offset)
        bs = self.config.block_bytes
        while start < window_end:
            length = min(stream.length, window_end - start)
            first, last = self._block_span(start, length)
            # Only prefetch runs of absent blocks; stop growing the window
            # when frames are unavailable (prefetch never parks).
            absent = [
                (file_id, b)
                for b in range(first, last + 1)
                if (file_id, b) not in self._blocks
            ]
            if absent:
                blocks = self.try_allocate_run(absent, owner, _READING)
                if blocks is None:
                    break
                for block in blocks:
                    block.prefetched = True
                run_off = absent[0][1] * bs
                run_len = (absent[-1][1] - absent[0][1] + 1) * bs
                self.metrics.cache.prefetch_issued += 1
                self.metrics.cache.prefetch_blocks += len(blocks)
                self.issue_disk_read(file_id, run_off, run_len, blocks)
            start += length
            stream.prefetch_until = start


class _PendingRead:
    """State machine for one demand read."""

    __slots__ = (
        "cache",
        "file_id",
        "offset",
        "length",
        "owner",
        "on_complete",
        "outstanding",
        "counted",
    )

    def __init__(
        self,
        cache: BufferCache,
        file_id: int,
        offset: int,
        length: int,
        owner: int,
        on_complete: Callable[[], None],
    ):
        self.cache = cache
        self.file_id = file_id
        self.offset = offset
        self.length = length
        self.owner = owner
        self.on_complete = on_complete
        self.outstanding = 0
        self.counted = False  # stats recorded once, even across retries

    def start(self) -> bool:
        """Classify blocks and issue disk reads; False to retry later."""
        cache = self.cache
        blocks_map = cache._blocks
        clean_lru = cache._clean_lru
        stats = cache.metrics.cache
        first, last = cache._block_span(self.offset, self.length)
        fid = self.file_id

        missing_runs: list[list[tuple[int, int]]] = []
        run: list[tuple[int, int]] | None = None
        wait_blocks: list[Block] = []
        n_hit = n_miss = n_inflight = n_ra_hit = 0

        for b in range(first, last + 1):
            key = (fid, b)
            block = blocks_map.get(key)
            if block is None:
                n_miss += 1
                if run is None:
                    run = [key]
                    missing_runs.append(run)
                else:
                    run.append(key)
                continue
            run = None
            if block.state is _READING:
                n_inflight += 1
                wait_blocks.append(block)
            else:
                n_hit += 1
                if block.prefetched:
                    n_ra_hit += 1
                    block.prefetched = False
                if block.state is _VALID:
                    clean_lru.move_to_end(key)

        # Allocate every missing run up front; all-or-nothing.
        allocated: list[tuple[list[tuple[int, int]], list[Block]]] = []
        for keys in missing_runs:
            blocks = cache.try_allocate_run(keys, self.owner, _READING)
            if blocks is None:
                for _, done in allocated:
                    for blk in done:
                        cache._drop(blk)
                return False
            allocated.append((keys, blocks))

        if not self.counted:
            stats.block_hits += n_hit
            stats.block_misses += n_miss
            stats.block_inflight_hits += n_inflight
            stats.readahead_hits += n_ra_hit
            self.counted = True

        self.outstanding = len(allocated) + len(wait_blocks)

        for block in wait_blocks:
            if block.waiters is None:
                block.waiters = []
            block.waiters.append(self._one_arrived)
        bs = cache.config.block_bytes
        for keys, blocks in allocated:
            run_off = keys[0][1] * bs
            run_len = (keys[-1][1] - keys[0][1] + 1) * bs
            cache.issue_disk_read(fid, run_off, run_len, blocks, self._one_arrived)

        if self.outstanding == 0:
            self._finish()
        return True

    def _one_arrived(self) -> None:
        self.outstanding -= 1
        if self.outstanding == 0:
            self._finish()

    def _finish(self) -> None:
        # Completion is synchronous; the SSD's per-KB penalty is *CPU*
        # time, not a sleep -- "I/Os to and from the SSD are done without
        # suspending the process" -- so it is handed to the caller to
        # charge as computation.
        self.on_complete(self.cache.config.hit_penalty_s(self.length))


class _PendingWrite:
    """State machine for one demand write."""

    __slots__ = ("cache", "file_id", "offset", "length", "owner", "on_complete")

    def __init__(
        self,
        cache: BufferCache,
        file_id: int,
        offset: int,
        length: int,
        owner: int,
        on_complete: Callable[[], None],
    ):
        self.cache = cache
        self.file_id = file_id
        self.offset = offset
        self.length = length
        self.owner = owner
        self.on_complete = on_complete

    def start(self) -> bool:
        cache = self.cache
        blocks_map = cache._blocks
        first, last = cache._block_span(self.offset, self.length)
        fid = self.file_id

        present: list[Block] = []
        absent: list[tuple[int, int]] = []
        for b in range(first, last + 1):
            key = (fid, b)
            block = blocks_map.get(key)
            if block is None:
                absent.append(key)
            else:
                present.append(block)
        new_blocks = cache.try_allocate_run(absent, self.owner, _VALID)
        if new_blocks is None:
            return False
        for block in present:
            block.prefetched = False
        blocks = present + new_blocks

        if cache.config.write_behind:
            # Data lands in the cache; the writer continues immediately,
            # paying only the (SSD) copy-in penalty as CPU; the flush
            # happens behind its back (optionally after a Sprite-style
            # delay, during which a deleted file escapes the disk).
            cache.metrics.cache.writes_absorbed += 1
            if cache.config.flush_delay_s > 0:
                cache.schedule_delayed_flush(fid, self.offset, self.length, blocks)
            else:
                cache.issue_disk_write(fid, self.offset, self.length, blocks)
            self.on_complete(cache.config.hit_penalty_s(self.length))
        else:
            # Write-through: the writer waits for the disk; the copy-in
            # penalty is charged on wake-up.
            penalty = cache.config.hit_penalty_s(self.length)
            cache.issue_disk_write(
                fid,
                self.offset,
                self.length,
                blocks,
                lambda: self.on_complete(penalty),
            )
        return True
