"""The buffer cache: read-ahead, write-behind, LRU frames, SSD penalties.

This is the object under study in section 6.  It sits between the
trace-replay processes and the disk model:

* demand **reads** are satisfied from resident blocks (free for a
  main-memory cache, per-KB penalty for the SSD), from blocks already in
  flight (a previous miss or a prefetch), or by issuing disk reads for
  the missing block runs;
* **read-ahead** watches each file for the sequential same-size pattern
  ("an I/O request was not only sequential with the previous I/O, but
  was also the same size.  Thus, prefetching the amount of data just
  read allowed the application to continue without waiting, but did not
  fill the cache with data that would be unused for some time") and keeps
  up to ``depth`` requests of look-ahead in flight, where the default
  depth grows with available buffer space;
* **write-behind** lets the writer continue as soon as the data is in
  cache frames ("it was easy to allow a process to continue executing
  while written data had not yet gone to disk"); a flusher pushes dirty
  extents to disk immediately but asynchronously.  With write-behind off,
  writes block until the disk write completes;
* frames are recycled LRU among clean resident blocks; requests that
  cannot get frames (everything dirty or in flight) park until a frame
  frees -- the contention behind section 6.2's buffer-hogging
  observation.  An optional per-process ownership cap reproduces the
  failed mitigation ("a limit on the number of buffers a process could
  own did not relieve the problem, and actually worsened CPU
  utilization").

Hot-path structure: columnar frames, run-coalesced bookkeeping
--------------------------------------------------------------
Requests are decomposed into 4-8 KB blocks, so a single venus-sized
request touches ~100 frames.  Representing each frame as a Python object
(the approach kept verbatim in :mod:`repro.sim.cache_legacy`) makes the
simulator allocate and destroy millions of objects per run; this
implementation stores frame metadata in per-file numpy columns instead:

* ``st`` -- block state (absent / reading / valid / dirty / flushing),
* ``own`` -- owning process, ``pf`` -- prefetched flag,
* ``gen`` -- a generation counter bumped on every allocate/drop, which
  replaces the legacy per-object identity checks: an in-flight disk
  completion only settles positions whose generation still matches its
  allocation snapshot, exactly as the legacy closures only settled
  ``Block`` objects still present in the block map,
* ``nid`` -- id of the clean-LRU run node currently holding the block.

Classification, allocation, eviction, settle and flush are then slice
operations over ``(first_block, n_blocks)`` extents instead of per-block
loops.  The clean-LRU is a doubly-linked list of :class:`_CleanRun`
nodes, one per run of blocks that became evictable together; eviction
pops whole nodes off the LRU head, splitting at most one per allocation.
Per-block LRU order is preserved by construction -- runs enter in
ascending block order, and partial touches extract a slice to the MRU
end while the remainder keeps its node's place -- so eviction victims,
hence the disk request sequence and the seeded rotational-delay RNG
stream, are bit-identical to the legacy implementation (asserted by the
differential digest tests in ``tests/sim/test_hotpath_differential.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Callable

import numpy as np

from repro.obs.registry import get_registry
from repro.sim.config import CacheConfig, FaultConfig, RecoveryConfig
from repro.sim.devices import DiskModel
from repro.sim.events import Engine
from repro.sim.faults import FaultInjector
from repro.sim.metrics import Metrics
from repro.sim.recovery import RecoveringDevice
from repro.util.errors import SimulationError


class BlockState(Enum):
    """Block lifecycle states (exported for API compatibility; the
    columnar hot path stores them as small ints in the ``st`` column)."""

    READING = 1  #: disk read in flight; frame pinned
    VALID = 2  #: clean resident; evictable
    DIRTY = 3  #: written, awaiting flush start
    FLUSHING = 4  #: disk write in flight; frame pinned


_ABSENT = 0
_READING = BlockState.READING.value
_VALID = BlockState.VALID.value
_DIRTY = BlockState.DIRTY.value
_FLUSHING = BlockState.FLUSHING.value


class _FileFrames:
    """Columnar frame metadata for one file, grown on demand."""

    __slots__ = ("st", "own", "pf", "gen", "nid")

    def __init__(self, n_blocks: int):
        self.st = np.zeros(n_blocks, dtype=np.uint8)
        self.own = np.zeros(n_blocks, dtype=np.int64)
        self.pf = np.zeros(n_blocks, dtype=bool)
        self.gen = np.zeros(n_blocks, dtype=np.int64)
        self.nid = np.full(n_blocks, -1, dtype=np.int64)

    def grow(self, n_blocks: int) -> None:
        old = self.st.size
        extra = n_blocks - old
        self.st = np.concatenate([self.st, np.zeros(extra, dtype=np.uint8)])
        self.own = np.concatenate([self.own, np.zeros(extra, dtype=np.int64)])
        self.pf = np.concatenate([self.pf, np.zeros(extra, dtype=bool)])
        self.gen = np.concatenate([self.gen, np.zeros(extra, dtype=np.int64)])
        self.nid = np.concatenate([self.nid, np.full(extra, -1, dtype=np.int64)])


class _Run:
    """Handle to a set of frames captured at allocation time.

    ``idx`` holds ascending block numbers (possibly with gaps, for
    prefetch over partially-resident spans); ``gen`` is the generation
    snapshot.  Disk completions act only on positions whose current
    generation still equals the snapshot -- the columnar equivalent of
    the legacy ``self._blocks.get(b.key) is b`` identity checks.
    """

    __slots__ = ("fid", "idx", "gen")

    def __init__(self, fid: int, idx: np.ndarray, gen: np.ndarray):
        self.fid = fid
        self.idx = idx
        self.gen = gen


class _CleanRun:
    """A run of clean blocks occupying one slot of the LRU list.

    ``idx`` is in per-block LRU order (ascending block numbers for
    blocks that entered together).  Eviction takes whole nodes off the
    LRU head, slicing the last one when only part of it is needed.
    """

    __slots__ = ("fid", "idx", "id", "prev", "next")

    def __init__(self, fid: int, idx: np.ndarray, node_id: int):
        self.fid = fid
        self.idx = idx
        self.id = node_id
        self.prev: _CleanRun | None = None
        self.next: _CleanRun | None = None


class _DelayedFlush:
    """A dirty extent waiting out its Sprite-style delay."""

    __slots__ = ("file_id", "offset", "length", "run", "cancelled")

    def __init__(self, file_id: int, offset: int, length: int, run: _Run):
        self.file_id = file_id
        self.offset = offset
        self.length = length
        self.run = run
        self.cancelled = False


@dataclass(slots=True)
class _StreamState:
    """Per-file sequential-pattern tracking for the prefetcher."""

    next_offset: int  # end of the last demand read
    length: int  # last demand request size
    prefetch_until: int = 0  # exclusive end of issued prefetch


class BufferCache:
    """Block cache over one disk model."""

    def __init__(
        self,
        config: CacheConfig,
        engine: Engine,
        disk: DiskModel,
        metrics: Metrics,
        *,
        file_sizes: dict[int, int] | None = None,
        device: RecoveringDevice | None = None,
        obs=None,
    ):
        self.config = config
        self.engine = engine
        self.disk = disk
        self.metrics = metrics
        if device is None:
            # No fault plan: a passthrough device, bit-identical to the
            # old inline disk calls.
            device = RecoveringDevice(
                disk,
                engine,
                FaultInjector(FaultConfig()),
                RecoveryConfig(),
                metrics,
                obs=obs,
            )
        self.device = device
        self.recovery = device.config
        #: SSD failed: bypass the cache, fall through to the disk
        self.degraded = False
        reg = obs if obs is not None else get_registry()
        self._c_evictions = reg.counter("sim.cache.evictions")
        self._c_parks = reg.counter("sim.cache.frame_wait_parks")
        self._g_wb_queue = reg.gauge("sim.cache.writebehind_queue_depth")
        # Hot-path locals: resolved once so the per-request code performs
        # zero registry lookups and no repeated attribute chains.
        self._stats = metrics.cache
        self._record_demand = metrics.record_demand
        #: Mutation epoch: bumped whenever block states, prefetch bits,
        #: stream state, frame-table geometry or known file sizes change
        #: through the full (slow) request paths.  The batch kernel
        #: (:mod:`repro.sim.batch`) memoises whole-run classifications
        #: keyed by this counter: while it holds, nothing the memo
        #: depends on can have changed, because the kernel's own fast
        #: commits deliberately do not bump it.  Over-bumping is always
        #: safe (it only forces a re-classification), so the increment
        #: sites err on the side of coverage.
        self.epoch = 0
        self._files: dict[int, _FileFrames] = {}
        self._resident = 0
        self._lru_head: _CleanRun | None = None
        self._lru_tail: _CleanRun | None = None
        self._clean_count = 0
        self._next_node_id = 0
        self._nodes: dict[int, _CleanRun] = {}
        #: waiters keyed by (file_id, block, generation): callbacks of
        #: demand reads overlapping a block whose disk read is in flight
        self._waiters: dict[tuple[int, int, int], list[Callable[[], None]]] = {}
        self._frame_waiters: deque[Callable[[], bool]] = deque()
        self._owner_counts: dict[int, int] = {}
        self._streams: dict[int, _StreamState] = {}
        #: known file sizes, bounding prefetch past end-of-file
        self._file_sizes = dict(file_sizes or {})
        self.outstanding_flushes = 0
        self._delayed_flushes: dict[int, list["_DelayedFlush"]] = {}
        self.on_drained: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    # Public request API
    # ------------------------------------------------------------------
    def read(
        self,
        file_id: int,
        offset: int,
        length: int,
        owner: int,
        on_complete: Callable[[], None],
    ) -> None:
        """Demand read.

        ``on_complete(cpu_penalty_s)`` fires (synchronously for resident
        data) once all bytes are available; its argument is the SSD
        copy-through cost the caller must charge as CPU time.
        """
        if length <= 0:
            raise SimulationError("read length must be positive")
        stats = self._stats
        stats.read_requests += 1
        stats.read_bytes += length
        self._record_demand(self.engine.now, length)
        if offset + length > self._file_sizes.get(file_id, 0):
            self._file_sizes[file_id] = offset + length
            self.epoch += 1

        if self.degraded:
            self.metrics.faults.degraded_requests += 1
            self._bypass_read(file_id, offset, length, on_complete)
            return
        if self._oversized(offset, length, owner):
            self._bypass_read(file_id, offset, length, on_complete)
            return
        pending = _PendingRead(self, file_id, offset, length, owner, on_complete)
        if not pending.start():
            self.park_for_frames(pending.start)
        self._after_demand_read(file_id, offset, length, owner)

    def write(
        self,
        file_id: int,
        offset: int,
        length: int,
        owner: int,
        on_complete: Callable[[], None],
    ) -> None:
        """Demand write; completion timing depends on the write policy."""
        if length <= 0:
            raise SimulationError("write length must be positive")
        stats = self._stats
        stats.write_requests += 1
        stats.write_bytes += length
        self._record_demand(self.engine.now, length)
        if offset + length > self._file_sizes.get(file_id, 0):
            self._file_sizes[file_id] = offset + length
            self.epoch += 1

        if self.degraded:
            self.metrics.faults.degraded_requests += 1
            self._bypass_write(file_id, offset, length, on_complete)
            return
        if self._oversized(offset, length, owner):
            self._bypass_write(file_id, offset, length, on_complete)
            return
        pending = _PendingWrite(self, file_id, offset, length, owner, on_complete)
        if not pending.start():
            self.park_for_frames(pending.start)

    # ------------------------------------------------------------------
    # Oversized-request bypass
    # ------------------------------------------------------------------
    def _oversized(self, offset: int, length: int, owner: int) -> bool:
        """True when the request can never be framed: bigger than the
        cache itself, or bigger than the owner's buffer cap.  Such
        requests go straight to the disk (the classic bypass), otherwise
        they would park forever.
        """
        first, last = self._block_span(offset, length)
        needed = last - first + 1
        if needed > self.config.n_blocks:
            return True
        cap = self.config.max_blocks_per_process
        return cap is not None and needed > cap

    def _bypass_read(
        self, file_id: int, offset: int, length: int, on_complete
    ) -> None:
        self._stats.bypass_requests += 1
        # Degraded requests never touched the (failed) SSD, so no
        # copy-through penalty.
        penalty = 0.0 if self.degraded else self.config.hit_penalty_s(length)
        # A failed read still unblocks the requester: the I/O is
        # *reported* failed (device counters) rather than lost.
        self.device.submit(
            file_id,
            offset,
            length,
            is_write=False,
            on_done=lambda ok: on_complete(penalty),
        )

    def _bypass_write(
        self, file_id: int, offset: int, length: int, on_complete
    ) -> None:
        self._stats.bypass_requests += 1
        penalty = 0.0 if self.degraded else self.config.hit_penalty_s(length)
        if self.config.write_behind:
            # The device streams straight from the writer's memory; the
            # writer continues once the transfer is handed off.
            self.outstanding_flushes += 1
            self._g_wb_queue.set_max(self.outstanding_flushes)

            def finished(ok: bool) -> None:
                if not ok:
                    # No cache frames to re-flush from: the data is gone.
                    self.metrics.faults.lost_bytes += length
                self.outstanding_flushes -= 1
                if self.outstanding_flushes == 0 and self.on_drained is not None:
                    self.on_drained()

            self.device.submit(
                file_id, offset, length, is_write=True, on_done=finished
            )
            on_complete(penalty)
        else:
            self.device.submit(
                file_id,
                offset,
                length,
                is_write=True,
                on_done=lambda ok: on_complete(penalty),
            )

    # ------------------------------------------------------------------
    # Geometry / bookkeeping
    # ------------------------------------------------------------------
    def _block_span(self, offset: int, length: int) -> tuple[int, int]:
        """(first_block, last_block) covering [offset, offset+length)."""
        bs = self.config.block_bytes
        return offset // bs, (offset + length - 1) // bs

    def _file(self, file_id: int, n_blocks: int) -> _FileFrames:
        """The file's frame columns, grown to cover ``n_blocks``."""
        frames = self._files.get(file_id)
        if frames is None:
            bs = self.config.block_bytes
            hint = -(-self._file_sizes.get(file_id, 0) // bs)
            frames = _FileFrames(max(n_blocks, hint, 64))
            self._files[file_id] = frames
            self.epoch += 1
        elif frames.st.size < n_blocks:
            frames.grow(max(n_blocks, 2 * frames.st.size))
            self.epoch += 1
        return frames

    @property
    def resident_blocks(self) -> int:
        return self._resident

    def owner_blocks(self, owner: int) -> int:
        return self._owner_counts.get(owner, 0)

    def _drop_frames(self, frames: _FileFrames, idx: np.ndarray) -> None:
        """Free frames (state -> absent, generation bumped) and settle
        the owner accounting.  The clean-LRU is NOT touched: callers
        either evicted via the LRU already or are dropping pinned
        (reading/dirty/flushing) frames that were never on it.
        """
        counts = self._owner_counts
        n = idx.size
        if n == 1:
            first_owner = int(frames.own[int(idx[0])])
            counts[first_owner] = counts.get(first_owner, 1) - 1
            frames.st[idx] = _ABSENT
            frames.gen[idx] += 1
            self._resident -= 1
            self.epoch += 1
            return
        own = frames.own[idx]
        first_owner = int(own[0])
        if own[-1] == first_owner and (own == first_owner).all():
            # Runs are allocated by a single process, so most nodes are
            # single-owner; only write-extent settles can mix owners.
            counts[first_owner] = counts.get(first_owner, n) - n
        else:
            owners, counts_per = np.unique(own, return_counts=True)
            for owner, n in zip(owners, counts_per):
                counts[int(owner)] = counts.get(int(owner), int(n)) - int(n)
        frames.st[idx] = _ABSENT
        frames.gen[idx] += 1
        self._resident -= idx.size
        self.epoch += 1

    # ------------------------------------------------------------------
    # Clean-LRU run structure
    # ------------------------------------------------------------------
    def _lru_append(self, node: _CleanRun) -> None:
        """Link ``node`` at the MRU (tail) end."""
        tail = self._lru_tail
        node.prev = tail
        node.next = None
        if tail is None:
            self._lru_head = node
        else:
            tail.next = node
        self._lru_tail = node

    def _lru_unlink(self, node: _CleanRun) -> None:
        prev, nxt = node.prev, node.next
        if prev is None:
            self._lru_head = nxt
        else:
            prev.next = nxt
        if nxt is None:
            self._lru_tail = prev
        else:
            nxt.prev = prev
        node.prev = node.next = None

    def _clean_append(self, frames: _FileFrames, fid: int, idx: np.ndarray) -> None:
        """Make frames clean-resident as one MRU run (O(1) list ops)."""
        node_id = self._next_node_id
        self._next_node_id = node_id + 1
        node = _CleanRun(fid, idx, node_id)
        self._nodes[node_id] = node
        frames.st[idx] = _VALID
        frames.nid[idx] = node_id
        self._lru_append(node)
        self._clean_count += idx.size
        self.epoch += 1

    def _clean_touch(self, frames: _FileFrames, idx: np.ndarray) -> None:
        """Move already-clean frames to MRU, preserving per-block order.

        ``idx`` is in encounter (ascending block) order.  Runs of
        consecutive frames sharing a node move together: a whole node is
        relinked in O(1); a partial slice is extracted to a new MRU node
        while the remainder keeps the node's LRU position -- exactly the
        per-block order the legacy ``move_to_end`` loop produced.
        """
        nids = frames.nid[idx]
        n = nids.size
        if n == 0:
            return
        nodes = self._nodes
        # Group boundaries (consecutive equal node ids): one vectorized
        # pass for wide spans, a plain-list scan for narrow ones (where
        # the numpy call overhead would dominate).
        if n > 16:
            starts = np.flatnonzero(nids[1:] != nids[:-1]) + 1
            bounds = [0, *starts.tolist(), n]
        elif n > 1:
            lst = nids.tolist()
            bounds = [0]
            bounds += [i for i in range(1, n) if lst[i] != lst[i - 1]]
            bounds.append(n)
        else:
            bounds = [0, n]
        for k in range(len(bounds) - 1):
            i = bounds[k]
            j = bounds[k + 1]
            node = nodes[int(nids[i])]
            group = idx[i:j]
            if j - i == node.idx.size:
                if node is not self._lru_tail:
                    self._lru_unlink(node)
                    self._lru_append(node)
            else:
                node.idx = np.setdiff1d(node.idx, group, assume_unique=True)
                node_id = self._next_node_id
                self._next_node_id = node_id + 1
                new_node = _CleanRun(node.fid, group, node_id)
                nodes[node_id] = new_node
                frames.nid[group] = node_id
                self._lru_append(new_node)

    def _clean_remove(self, frames: _FileFrames, idx: np.ndarray) -> None:
        """Take specific clean frames out of the LRU (state untouched by
        this call; callers transition it right after).  Remaining frames
        of each affected node keep their relative order and the node
        keeps its LRU position.
        """
        nids = frames.nid[idx]
        n = nids.size
        if n == 0:
            return
        nodes = self._nodes
        if n > 1:
            starts = np.flatnonzero(nids[1:] != nids[:-1]) + 1
            bounds = [0, *starts.tolist(), n]
        else:
            bounds = [0, n]
        for k in range(len(bounds) - 1):
            i = bounds[k]
            j = bounds[k + 1]
            node = nodes[int(nids[i])]
            if j - i == node.idx.size:
                self._lru_unlink(node)
                del nodes[node.id]
            else:
                node.idx = np.setdiff1d(node.idx, idx[i:j], assume_unique=True)
        self._clean_count -= n

    # ------------------------------------------------------------------
    # Frame management
    # ------------------------------------------------------------------
    def _over_cap(self, owner: int, extra: int) -> bool:
        cap = self.config.max_blocks_per_process
        return cap is not None and self.owner_blocks(owner) + extra > cap

    def try_allocate_run(
        self, fid: int, idx: np.ndarray, owner: int, state: int
    ) -> _Run | None:
        """Install a run of absent frames, evicting clean LRU as needed.

        All-or-nothing: returns None (no side effects) when not enough
        frames can be freed.  With an ownership cap, an over-cap process
        may only recycle its *own* clean frames.  Eviction pops whole
        runs off the LRU head (splitting at most one), so the per-request
        cost is O(runs), not O(blocks).
        """
        needed = idx.size
        frames = self._files[fid]
        if needed == 0:
            return _Run(fid, idx, frames.gen[idx].copy())
        counts = self._owner_counts
        nodes = self._nodes
        if self._over_cap(owner, needed):
            cap = self.config.max_blocks_per_process
            assert cap is not None
            allowed_new = max(0, cap - counts.get(owner, 0))
            must_recycle = needed - allowed_new
            # Scan runs from the LRU head collecting this owner's clean
            # frames in per-block LRU order (node order, then in-node
            # order -- the order the legacy per-block scan visited).
            victims: list[tuple[_CleanRun, np.ndarray]] = []
            n_found = 0
            node = self._lru_head
            while node is not None and n_found < must_recycle:
                vf = self._files[node.fid]
                mine = node.idx[vf.own[node.idx] == owner]
                if mine.size:
                    take = min(mine.size, must_recycle - n_found)
                    victims.append((node, mine[:take]))
                    n_found += take
                node = node.next
            if n_found < must_recycle:
                return None
            self._c_evictions.inc(n_found)
            for node, vidx in victims:
                vframes = self._files[node.fid]
                if vidx.size == node.idx.size:
                    self._lru_unlink(node)
                    del nodes[node.id]
                else:
                    node.idx = np.setdiff1d(node.idx, vidx, assume_unique=True)
                self._drop_frames(vframes, vidx)
            self._clean_count -= n_found
        else:
            must_evict = needed - (self.config.n_blocks - self._resident)
            if must_evict > 0:
                if must_evict > self._clean_count:
                    return None
                self._c_evictions.inc(must_evict)
                node = self._lru_head
                remaining = must_evict
                while remaining:
                    k = node.idx.size
                    vframes = self._files[node.fid]
                    if k <= remaining:
                        self._drop_frames(vframes, node.idx)
                        remaining -= k
                        nxt = node.next
                        self._lru_unlink(node)
                        del nodes[node.id]
                        node = nxt
                    else:
                        self._drop_frames(vframes, node.idx[:remaining])
                        node.idx = node.idx[remaining:]
                        remaining = 0
                self._clean_count -= must_evict

        frames.st[idx] = state
        frames.own[idx] = owner
        frames.pf[idx] = False
        gen = frames.gen[idx] + 1
        frames.gen[idx] = gen
        counts[owner] = counts.get(owner, 0) + needed
        self._resident += needed
        self.epoch += 1
        if state == _VALID:
            self._clean_append(frames, fid, idx)
        return _Run(fid, idx, gen)

    def park_for_frames(self, retry: Callable[[], bool]) -> None:
        """Queue a retry closure to run when frames may be available."""
        self._stats.frame_stalls += 1
        self._c_parks.inc()
        self._frame_waiters.append(retry)

    def _kick_frame_waiters(self) -> None:
        n = len(self._frame_waiters)
        for _ in range(n):
            retry = self._frame_waiters.popleft()
            if not retry():
                self._frame_waiters.append(retry)

    # ------------------------------------------------------------------
    # Disk interaction
    # ------------------------------------------------------------------
    def _fire_waiters(self, run: _Run) -> None:
        """Release demand reads waiting on frames of ``run``, in
        ascending block order (the order the legacy per-block loop fired
        them).  Generation matching scopes the firing to this run's
        incarnation of each block, like the legacy per-object waiter
        lists; the state may have moved on (e.g. overwritten to
        flushing) and the waiters are still released -- their data is in
        the cache either way.
        """
        fid = run.fid
        idx = run.idx
        lo = int(idx[0])
        hi = int(idx[-1])
        # Runs are usually gap-free; then membership is index arithmetic
        # instead of a searchsorted call per candidate key.
        contiguous = idx.size == hi - lo + 1
        matched: list[tuple[int, tuple[int, int, int]]] = []
        for key in self._waiters:
            kf, kb, kg = key
            if kf != fid or kb < lo or kb > hi:
                continue
            if contiguous:
                if run.gen[kb - lo] == kg:
                    matched.append((kb, key))
                continue
            pos = int(np.searchsorted(idx, kb))
            if pos < idx.size and idx[pos] == kb and run.gen[pos] == kg:
                matched.append((kb, key))
        matched.sort()
        for _, key in matched:
            for waiter in self._waiters.pop(key):
                waiter()

    def issue_disk_read(
        self,
        file_id: int,
        offset: int,
        length: int,
        run: _Run,
        on_done: Callable[[], None] | None = None,
    ) -> None:
        """One disk read covering ``run``; frames settle VALID on arrival.

        When the device reports failure (retries exhausted), the reading
        frames are abandoned -- dropped from the cache so a later demand
        read retries from disk -- and any waiters are released anyway:
        the requester's I/O is reported failed, not lost.
        """

        def arrive(ok: bool) -> None:
            # A write may have overwritten frames while the read was in
            # flight (state flushing); only still-reading frames of this
            # allocation settle to VALID (or, on failure, get abandoned).
            frames = self._files[file_id]
            idx = run.idx
            live = idx[
                (frames.gen[idx] == run.gen) & (frames.st[idx] == _READING)
            ]
            if ok:
                if live.size:
                    self._clean_append(frames, file_id, live)
            elif live.size:
                self._drop_frames(frames, live)
            if self._waiters:
                self._fire_waiters(run)
            if on_done is not None:
                on_done()
            if self._frame_waiters:
                self._kick_frame_waiters()

        self.device.submit(file_id, offset, length, is_write=False, on_done=arrive)

    def issue_disk_write(
        self,
        file_id: int,
        offset: int,
        length: int,
        run: _Run,
        on_done: Callable[[], None] | None = None,
        *,
        reflush: int = 0,
    ) -> None:
        """One disk write covering ``run``; frames become clean on finish.

        When the device reports failure, frames still dirty-in-flight are
        re-queued (back to dirty, re-flushed after ``reflush_delay_s``) up
        to ``max_reflushes`` times; past that the data is dropped and
        counted as lost.  The ``outstanding_flushes`` latch is held across
        the whole retry saga so the drain callback cannot fire while a
        re-flush is pending.
        """
        frames = self._files[file_id]
        idx = run.idx
        alive = idx[frames.gen[idx] == run.gen]
        clean = alive[frames.st[alive] == _VALID]
        if clean.size:
            self._clean_remove(frames, clean)
        frames.st[alive] = _FLUSHING
        self.epoch += 1
        self.outstanding_flushes += 1
        self._g_wb_queue.set_max(self.outstanding_flushes)

        def finished(ok: bool) -> None:
            frames = self._files[file_id]
            mask = (frames.gen[idx] == run.gen) & (frames.st[idx] == _FLUSHING)
            live = idx[mask]
            if not ok:
                if live.size and reflush < self.recovery.max_reflushes:
                    self.metrics.faults.reflushes += 1
                    frames.st[live] = _DIRTY
                    self.epoch += 1
                    live_gen = run.gen[mask]

                    def redo() -> None:
                        self.outstanding_flushes -= 1
                        f2 = self._files[file_id]
                        still_mask = (f2.gen[live] == live_gen) & (
                            f2.st[live] == _DIRTY
                        )
                        self._issue_flush_runs(
                            file_id,
                            _Run(file_id, live[still_mask], live_gen[still_mask]),
                            on_done,
                            reflush=reflush + 1,
                        )

                    # Latch stays held until redo() runs (decrement and
                    # re-issue are back to back, so drain cannot slip in).
                    self.engine.schedule(self.recovery.reflush_delay_s, redo)
                    return
                if live.size:
                    # Retries and re-flushes exhausted: write-behind data
                    # is dropped -- this is the data-at-risk turning into
                    # data lost.
                    self.metrics.faults.lost_bytes += (
                        int(live.size) * self.config.block_bytes
                    )
                    self._drop_frames(frames, live)
            elif live.size:
                self._clean_append(frames, file_id, live)
            self.outstanding_flushes -= 1
            if on_done is not None:
                on_done()
            if self._frame_waiters:
                self._kick_frame_waiters()
            if self.outstanding_flushes == 0 and self.on_drained is not None:
                self.on_drained()

        self.device.submit(file_id, offset, length, is_write=True, on_done=finished)

    def _issue_flush_runs(
        self,
        file_id: int,
        run: _Run,
        on_done: Callable[[], None] | None,
        *,
        reflush: int = 0,
    ) -> None:
        """Flush a (possibly sparse) set of dirty frames as contiguous runs.

        Used when only part of an extent still needs writing -- a re-flush
        after failure, or a delayed flush some of whose frames were
        already flushed by an overlapping extent.  ``on_done`` rides on
        the last run; with no runs at all it fires synchronously along
        with the drain check the skipped write would have performed.
        """
        idx = run.idx
        if idx.size == 0:
            if on_done is not None:
                on_done()
            if self.outstanding_flushes == 0 and self.on_drained is not None:
                self.on_drained()
            return
        bs = self.config.block_bytes
        cut = np.flatnonzero(np.diff(idx) > 1) + 1
        starts = np.concatenate([[0], cut, [idx.size]])
        n_runs = starts.size - 1
        for i in range(n_runs):
            a, b = int(starts[i]), int(starts[i + 1])
            sub = _Run(file_id, idx[a:b], run.gen[a:b])
            run_off = int(idx[a]) * bs
            run_len = (b - a) * bs
            done = on_done if i == n_runs - 1 else None
            self.issue_disk_write(
                file_id, run_off, run_len, sub, done, reflush=reflush
            )

    # ------------------------------------------------------------------
    # Delayed writes (Sprite-style, section 2.1)
    # ------------------------------------------------------------------
    def schedule_delayed_flush(
        self, file_id: int, offset: int, length: int, run: _Run
    ) -> None:
        """Hold dirty frames for ``flush_delay_s`` before flushing.

        If :meth:`discard_file` removes the file before the delay
        expires -- a compiler temporary deleted young -- the disk write
        never happens: "temporary files which exist for less than 30
        seconds ... [are] never written to disk".
        """
        frames = self._files[file_id]
        idx = run.idx
        alive = idx[frames.gen[idx] == run.gen]
        clean = alive[frames.st[alive] == _VALID]
        if clean.size:
            self._clean_remove(frames, clean)
        frames.st[alive] = _DIRTY
        self.epoch += 1
        handle = _DelayedFlush(file_id, offset, length, run)
        self._delayed_flushes.setdefault(file_id, []).append(handle)
        self.outstanding_flushes += 1  # keeps drain accounting honest
        self._g_wb_queue.set_max(self.outstanding_flushes)

        def fire() -> None:
            self.outstanding_flushes -= 1
            pending = self._delayed_flushes.get(file_id)
            if pending and handle in pending:
                pending.remove(handle)
            if handle.cancelled:
                if self.outstanding_flushes == 0 and self.on_drained is not None:
                    self.on_drained()
                return
            # Only frames still dirty in this run's incarnation belong to
            # this flush.  A frame rewritten during the delay is owned by
            # the *newer* delayed extent (same generation, so it stays
            # here, and the newer flush finds it flushing and skips it);
            # one already flushed or evicted is flushing/valid/absent and
            # writing it again would double-count the bytes in the write
            # statistics.
            f2 = self._files[file_id]
            live = idx[(f2.gen[idx] == run.gen) & (f2.st[idx] == _DIRTY)]
            if live.size == idx.size:
                # Whole extent intact: one contiguous write, exactly as
                # originally queued.
                self.issue_disk_write(file_id, offset, length, run)
            else:
                self._issue_flush_runs(
                    file_id, _Run(file_id, live, f2.gen[live].copy()), None
                )

        self.engine.schedule(self.config.flush_delay_s, fire)

    def discard_file(self, file_id: int) -> int:
        """Drop a deleted file: cancel its pending delayed flushes and
        free its resident clean/dirty frames.  Returns the number of
        cancelled flush extents (frames already flushing are beyond
        recall and complete normally).
        """
        cancelled = 0
        for handle in self._delayed_flushes.get(file_id, []):
            if not handle.cancelled:
                handle.cancelled = True
                cancelled += 1
                self._stats.writes_cancelled += 1
        frames = self._files.get(file_id)
        if frames is not None:
            clean = np.flatnonzero(frames.st == _VALID)
            if clean.size:
                self._clean_remove(frames, clean)
            gone = np.flatnonzero((frames.st == _VALID) | (frames.st == _DIRTY))
            if gone.size:
                self._drop_frames(frames, gone)
        self._streams.pop(file_id, None)
        self.epoch += 1
        if cancelled:
            self._kick_frame_waiters()
        return cancelled

    # ------------------------------------------------------------------
    # Faults: data at risk, degraded mode
    # ------------------------------------------------------------------
    def dirty_bytes(self) -> int:
        """Write-behind bytes not yet safely on disk (data at risk).

        Dirty frames are waiting for their flush; flushing frames are in
        flight but unacknowledged.  A crash at this instant loses exactly
        this many bytes.
        """
        n = sum(
            int(np.count_nonzero((f.st == _DIRTY) | (f.st == _FLUSHING)))
            for f in self._files.values()
        )
        return n * self.config.block_bytes

    def enter_degraded(self) -> None:
        """The SSD died: dump its contents, route everything to disk.

        Resident clean data is simply gone (re-readable from disk);
        resident dirty data is lost with the device.  Frames with disk
        transfers in flight (reading/flushing) settle normally -- those
        transfers were already streaming.  Subsequent read/write requests
        bypass the cache entirely.
        """
        if self.degraded:
            return
        self.degraded = True
        self.epoch += 1
        self.metrics.faults.degraded_at_s = self.engine.now
        lost = 0
        for frames in self._files.values():
            clean = np.flatnonzero(frames.st == _VALID)
            if clean.size:
                self._clean_remove(frames, clean)
            dirty = np.flatnonzero(frames.st == _DIRTY)
            lost += int(dirty.size)
            gone = np.flatnonzero((frames.st == _VALID) | (frames.st == _DIRTY))
            if gone.size:
                self._drop_frames(frames, gone)
        self.metrics.faults.lost_bytes += lost * self.config.block_bytes
        # Parked requests retry through their original (cache-mediated)
        # closure; the pool just emptied, so let them finish that way.
        self._kick_frame_waiters()

    # ------------------------------------------------------------------
    # Read-ahead
    # ------------------------------------------------------------------
    def _after_demand_read(
        self, file_id: int, offset: int, length: int, owner: int
    ) -> None:
        if not self.config.read_ahead:
            return
        self.epoch += 1
        stream = self._streams.get(file_id)
        end = offset + length
        if stream is not None and offset == stream.next_offset:
            stream.next_offset = end
            stream.length = length
            self._prefetch(file_id, stream, owner)
        else:
            self._streams[file_id] = _StreamState(next_offset=end, length=length)

    def _prefetch(self, file_id: int, stream: _StreamState, owner: int) -> None:
        depth = self.config.auto_depth(stream.length)
        window_end = stream.next_offset + depth * stream.length
        file_end = self._file_sizes.get(file_id, 0)
        window_end = min(window_end, file_end)
        start = max(stream.prefetch_until, stream.next_offset)
        bs = self.config.block_bytes
        while start < window_end:
            length = min(stream.length, window_end - start)
            first, last = self._block_span(start, length)
            frames = self._file(file_id, last + 1)
            # Only prefetch runs of absent blocks; stop growing the window
            # when frames are unavailable (prefetch never parks).
            absent = (
                np.flatnonzero(frames.st[first:last + 1] == _ABSENT) + first
            )
            if absent.size:
                run = self.try_allocate_run(file_id, absent, owner, _READING)
                if run is None:
                    break
                frames.pf[absent] = True
                run_off = int(absent[0]) * bs
                run_len = (int(absent[-1]) - int(absent[0]) + 1) * bs
                self._stats.prefetch_issued += 1
                self._stats.prefetch_blocks += int(absent.size)
                self.issue_disk_read(file_id, run_off, run_len, run)
            start += length
            stream.prefetch_until = start


class _PendingRead:
    """State machine for one demand read."""

    __slots__ = (
        "cache",
        "file_id",
        "offset",
        "length",
        "owner",
        "on_complete",
        "outstanding",
        "counted",
    )

    def __init__(
        self,
        cache: BufferCache,
        file_id: int,
        offset: int,
        length: int,
        owner: int,
        on_complete: Callable[[], None],
    ):
        self.cache = cache
        self.file_id = file_id
        self.offset = offset
        self.length = length
        self.owner = owner
        self.on_complete = on_complete
        self.outstanding = 0
        self.counted = False  # stats recorded once, even across retries

    def start(self) -> bool:
        """Classify the span and issue disk reads; False to retry later."""
        cache = self.cache
        cache.epoch += 1  # clears prefetch bits / touches LRU below
        stats = cache._stats
        first, last = cache._block_span(self.offset, self.length)
        fid = self.file_id
        frames = cache._file(fid, last + 1)
        seg = frames.st[first:last + 1]
        span = seg.size

        if not seg.any():
            # Cold read: the whole span is one missing run.
            n_miss = span
            n_hit = n_inflight = n_ra_hit = 0
            missing: list[np.ndarray] = [np.arange(first, last + 1)]
            reading = _EMPTY_IDX
        else:
            absent = np.flatnonzero(seg == _ABSENT)
            reading = np.flatnonzero(seg == _READING) + first
            n_miss = int(absent.size)
            n_inflight = int(reading.size)
            n_hit = span - n_miss - n_inflight
            if n_hit:
                resident = np.flatnonzero(seg >= _VALID) + first
                pf_hits = resident[frames.pf[resident]]
                n_ra_hit = int(pf_hits.size)
                if n_ra_hit:
                    frames.pf[pf_hits] = False
                touched = resident[frames.st[resident] == _VALID]
                if touched.size:
                    cache._clean_touch(frames, touched)
            else:
                n_ra_hit = 0
            if n_miss:
                cut = np.flatnonzero(np.diff(absent) > 1) + 1
                missing = [
                    part + first for part in np.split(absent, cut)
                ]
            else:
                missing = []

        # Allocate every missing run up front; all-or-nothing.
        allocated: list[_Run] = []
        for idx in missing:
            run = cache.try_allocate_run(fid, idx, self.owner, _READING)
            if run is None:
                for done in allocated:
                    cache._drop_frames(frames, done.idx)
                return False
            allocated.append(run)

        if not self.counted:
            stats.block_hits += n_hit
            stats.block_misses += n_miss
            stats.block_inflight_hits += n_inflight
            stats.readahead_hits += n_ra_hit
            self.counted = True

        self.outstanding = len(allocated) + n_inflight

        if n_inflight:
            waiters = cache._waiters
            gens = frames.gen[reading]
            for b, g in zip(reading, gens):
                key = (fid, int(b), int(g))
                lst = waiters.get(key)
                if lst is None:
                    waiters[key] = [self._one_arrived]
                else:
                    lst.append(self._one_arrived)
        bs = cache.config.block_bytes
        for run in allocated:
            run_off = int(run.idx[0]) * bs
            run_len = int(run.idx.size) * bs
            cache.issue_disk_read(fid, run_off, run_len, run, self._one_arrived)

        if self.outstanding == 0:
            self._finish()
        return True

    def _one_arrived(self) -> None:
        self.outstanding -= 1
        if self.outstanding == 0:
            self._finish()

    def _finish(self) -> None:
        # Completion is synchronous; the SSD's per-KB penalty is *CPU*
        # time, not a sleep -- "I/Os to and from the SSD are done without
        # suspending the process" -- so it is handed to the caller to
        # charge as computation.
        self.on_complete(self.cache.config.hit_penalty_s(self.length))


_EMPTY_IDX = np.empty(0, dtype=np.int64)


class _PendingWrite:
    """State machine for one demand write."""

    __slots__ = ("cache", "file_id", "offset", "length", "owner", "on_complete")

    def __init__(
        self,
        cache: BufferCache,
        file_id: int,
        offset: int,
        length: int,
        owner: int,
        on_complete: Callable[[], None],
    ):
        self.cache = cache
        self.file_id = file_id
        self.offset = offset
        self.length = length
        self.owner = owner
        self.on_complete = on_complete

    def start(self) -> bool:
        cache = self.cache
        cache.epoch += 1  # dirties frames / clears prefetch bits below
        first, last = cache._block_span(self.offset, self.length)
        fid = self.file_id
        frames = cache._file(fid, last + 1)
        seg = frames.st[first:last + 1]
        # Snapshot the whole span's generations before allocating: if the
        # allocation evicts one of this request's own present frames, its
        # bumped generation no longer matches and the extent write treats
        # it as dead (the legacy dead-Block ride-along case).
        gen_span = frames.gen[first:last + 1].copy()
        if seg.any():
            absent = np.flatnonzero(seg == _ABSENT) + first
        else:
            absent = np.arange(first, last + 1)
        # New frames go straight to dirty: every write path immediately
        # transitions them out of the clean pool anyway, and nothing
        # observes the LRU between allocation and that transition, so
        # skipping the clean-LRU round trip changes no behavior.
        new_run = cache.try_allocate_run(fid, absent, self.owner, _DIRTY)
        if new_run is None:
            return False
        if absent.size != seg.size:
            present = np.flatnonzero(frames.st[first:last + 1] != _ABSENT) + first
            frames.pf[present] = False
        gen_span[absent - first] = new_run.gen
        run = _Run(fid, np.arange(first, last + 1), gen_span)

        if cache.config.write_behind:
            # Data lands in the cache; the writer continues immediately,
            # paying only the (SSD) copy-in penalty as CPU; the flush
            # happens behind its back (optionally after a Sprite-style
            # delay, during which a deleted file escapes the disk).
            cache._stats.writes_absorbed += 1
            if cache.config.flush_delay_s > 0:
                cache.schedule_delayed_flush(fid, self.offset, self.length, run)
            else:
                cache.issue_disk_write(fid, self.offset, self.length, run)
            self.on_complete(cache.config.hit_penalty_s(self.length))
        else:
            # Write-through: the writer waits for the disk; the copy-in
            # penalty is charged on wake-up.
            penalty = cache.config.hit_penalty_s(self.length)
            cache.issue_disk_write(
                fid,
                self.offset,
                self.length,
                run,
                lambda: self.on_complete(penalty),
            )
        return True
