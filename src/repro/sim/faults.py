"""Deterministic, seeded fault injection for the simulated devices.

The paper's Figure 8 headline (one or two I/O-intensive jobs saturate a
Cray CPU given a 32 MW SSD with read-ahead + write-behind) is derived
under perfectly reliable devices.  This module supplies the failure
path: a :class:`FaultInjector` makes a seeded per-request decision --
OK, transient ERROR, or SLOW (a latency spike) -- that the recovery
layer (:mod:`repro.sim.recovery`) turns into retries, backoff, timeouts
and, eventually, reported failures.

Determinism contract
--------------------
* the injector owns a private RNG stream derived from ``(seed,
  "faults")`` -- it never touches the disk model's rotational-latency
  stream, so enabling faults does not perturb the fault-free draws;
* with ``error_rate == slow_rate == 0`` the injector draws *nothing*
  and every decision is the shared OK singleton: a zero-rate plan is
  bit-identical to no plan at all;
* decisions are drawn in device-request order, which the event engine
  makes deterministic, so one ``(config, seed)`` pair always produces
  the identical fault schedule.

A :class:`FaultPlan` is the serializable form -- a (faults, recovery)
config pair loadable from JSON (``repro simulate --fault-plan plan.json``)
or from a compact inline spec (``--faults error=0.05,slow=0.1``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from enum import Enum
from pathlib import Path

from repro.sim.config import FaultConfig, RecoveryConfig, SimConfig
from repro.util.rng import derive_rng


class FaultKind(Enum):
    OK = 0  #: the request completes normally
    ERROR = 1  #: transient error after the full service time
    SLOW = 2  #: the request completes, ``slow_factor`` times slower


@dataclass(frozen=True)
class FaultDecision:
    """One per-request verdict from the injector."""

    kind: FaultKind
    slow_factor: float = 1.0


#: Shared verdicts; OK is what every request gets on the fast path.
OK_DECISION = FaultDecision(FaultKind.OK)
ERROR_DECISION = FaultDecision(FaultKind.ERROR)


class FaultInjector:
    """Seeded per-request fault decisions over one device.

    ``seed`` is the simulation seed; ``config.seed`` overrides it so a
    fault schedule can be varied independently of the disk's rotational
    draws (or pinned while the workload seed sweeps).
    """

    def __init__(self, config: FaultConfig, *, seed: int = 0):
        self.config = config
        base = config.seed if config.seed is not None else seed
        self._rng = derive_rng(base, "faults")
        #: False = the zero-rate fast path: no draws, shared OK verdicts
        self.active = config.injects
        self._slow = FaultDecision(FaultKind.SLOW, config.slow_factor)

    def decide(self) -> FaultDecision:
        """The verdict for the next device request (one draw when active)."""
        if not self.active:
            return OK_DECISION
        u = float(self._rng.random())
        cfg = self.config
        if u < cfg.error_rate:
            return ERROR_DECISION
        if u < cfg.error_rate + cfg.slow_rate:
            return self._slow
        return OK_DECISION

    def uniform(self) -> float:
        """A seeded U[0,1) draw for backoff jitter (fault paths only)."""
        return float(self._rng.random())


# -- the serializable plan ---------------------------------------------------

#: inline-spec key -> (FaultConfig field, converter)
_FAULT_KEYS = {
    "error": ("error_rate", float),
    "slow": ("slow_rate", float),
    "slow_factor": ("slow_factor", float),
    "crash_at": ("crash_at_s", float),
    "ssd_fail_at": ("ssd_fail_at_s", float),
    "seed": ("seed", int),
}

#: inline-spec key -> (RecoveryConfig field, converter)
_RECOVERY_KEYS = {
    "max_retries": ("max_retries", int),
    "backoff": ("backoff_base_s", float),
    "backoff_factor": ("backoff_factor", float),
    "backoff_cap": ("backoff_cap_s", float),
    "jitter": ("backoff_jitter", float),
    "timeout": ("timeout_s", float),
    "max_reflushes": ("max_reflushes", int),
    "reflush_delay": ("reflush_delay_s", float),
}


@dataclass(frozen=True)
class FaultPlan:
    """A fault schedule plus the recovery policy to run it under."""

    faults: FaultConfig = field(default_factory=FaultConfig)
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)

    def apply(self, config: SimConfig) -> SimConfig:
        """The same simulation, run under this plan."""
        return replace(config, faults=self.faults, recovery=self.recovery)

    def to_dict(self) -> dict:
        return {"faults": self.faults.to_dict(), "recovery": self.recovery.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Build from a plain dict; either section may be omitted."""
        unknown = set(data) - {"faults", "recovery"}
        if unknown:
            raise ValueError(
                f"unknown fault-plan sections {sorted(unknown)}; "
                "expected 'faults' and/or 'recovery'"
            )
        faults = data.get("faults") or {}
        recovery = data.get("recovery") or {}
        return cls(
            faults=FaultConfig.from_dict(faults) if faults else FaultConfig(),
            recovery=(
                RecoveryConfig.from_dict(recovery) if recovery else RecoveryConfig()
            ),
        )

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        """Load a plan from a JSON file (the ``--fault-plan`` format)."""
        try:
            data = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError(f"{path}: fault plan must be a JSON object")
        try:
            return cls.from_dict(data)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{path}: bad fault plan: {exc}") from exc

    def dump(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse an inline ``key=value,...`` spec (the ``--faults`` flag).

        Fault keys: ``error``, ``slow``, ``slow_factor``, ``crash_at``,
        ``ssd_fail_at``, ``seed``.  Recovery keys: ``max_retries``,
        ``backoff``, ``backoff_factor``, ``backoff_cap``, ``jitter``,
        ``timeout``, ``max_reflushes``, ``reflush_delay``.
        """
        fault_kw: dict = {}
        recovery_kw: dict = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"bad fault spec item {item!r}: expected key=value")
            key, _, raw = item.partition("=")
            key = key.strip()
            if key in _FAULT_KEYS:
                name, conv = _FAULT_KEYS[key]
                fault_kw[name] = conv(raw)
            elif key in _RECOVERY_KEYS:
                name, conv = _RECOVERY_KEYS[key]
                recovery_kw[name] = conv(raw)
            else:
                known = sorted(_FAULT_KEYS) + sorted(_RECOVERY_KEYS)
                raise ValueError(
                    f"unknown fault spec key {key!r}; known: {', '.join(known)}"
                )
        return cls(
            faults=FaultConfig(**fault_kw), recovery=RecoveryConfig(**recovery_kw)
        )
