"""Wiring: traces + config -> one simulated CPU with a cache and a disk.

"We constructed a cache simulator that models the behavior of a single
CPU with multiple processes making I/O requests."
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.obs.registry import get_registry
from repro.sim.cache import BufferCache
from repro.sim.config import SimConfig
from repro.sim.devices import DiskModel
from repro.sim.events import Engine
from repro.sim.faults import FaultInjector
from repro.sim.metrics import Metrics, SimulationResult
from repro.sim.recovery import RecoveringDevice
from repro.sim.procmodel import TraceProcess
from repro.sim.scheduler import RoundRobinScheduler
from repro.trace.array import TraceArray
from repro.util.errors import SimulationError
from repro.util.timeseries import RateSeries


def _cache_class(cache_impl: str | None):
    """Resolve the buffer-cache implementation.

    ``"fast"`` (default) is the run-coalesced production cache;
    ``"legacy"`` is the per-block reference kept for differential
    testing.  The ``REPRO_CACHE_IMPL`` environment variable applies when
    no explicit argument is given, so whole sweeps (including worker
    processes, which inherit the environment) can be flipped without a
    config change -- deliberately *not* a ``SimConfig`` field, so result
    cache keys are identical for both implementations.
    """
    if cache_impl is None:
        cache_impl = os.environ.get("REPRO_CACHE_IMPL", "fast")
    if cache_impl == "fast":
        return BufferCache
    if cache_impl == "legacy":
        from repro.sim.cache_legacy import BufferCache as LegacyBufferCache

        return LegacyBufferCache
    raise SimulationError(
        f"unknown cache_impl {cache_impl!r} (expected 'fast' or 'legacy')"
    )


def _engine_impl(engine_impl: str | None) -> str:
    """Resolve the replay-engine implementation.

    ``"event"`` (default) is the event-at-a-time engine; ``"batch"``
    layers the run-level batch kernel (:mod:`repro.sim.batch`) on top of
    it, falling back to events at every interaction point.  The
    ``REPRO_ENGINE_IMPL`` environment variable applies when no explicit
    argument is given -- like ``REPRO_CACHE_IMPL``, deliberately *not* a
    ``SimConfig`` field, so result-cache keys are identical for both
    implementations (the outputs are bit-identical by contract).
    """
    if engine_impl is None:
        engine_impl = os.environ.get("REPRO_ENGINE_IMPL", "event")
    if engine_impl in ("event", "batch"):
        return engine_impl
    raise SimulationError(
        f"unknown engine_impl {engine_impl!r} (expected 'event' or 'batch')"
    )


class SimulatedSystem:
    """One runnable simulation instance."""

    def __init__(
        self,
        traces: Sequence[TraceArray],
        config: SimConfig | None = None,
        *,
        obs=None,
        cache_impl: str | None = None,
        engine_impl: str | None = None,
    ):
        self.config = config if config is not None else SimConfig()
        if not traces:
            raise SimulationError("need at least one trace")
        self.obs = obs if obs is not None else get_registry()
        self.engine = Engine(obs=self.obs)
        self.metrics = Metrics(traffic_bin_s=self.config.traffic_bin_s)
        self.disk = DiskModel(self.config.disk, seed=self.config.seed, obs=self.obs)
        # The file system knows each file's size (its inode); the
        # prefetcher uses it to stop at end-of-file.  Derive sizes from
        # the traces' furthest accessed offsets.
        file_sizes: dict[int, int] = {}
        for trace in traces:
            if len(trace) == 0:
                continue
            ends = trace.offset + trace.length
            for fid in trace.file_ids():
                size = int(ends[trace.file_id == fid].max())
                key = int(fid)
                if size > file_sizes.get(key, 0):
                    file_sizes[key] = size
        self.injector = FaultInjector(self.config.faults, seed=self.config.seed)
        self.device = RecoveringDevice(
            self.disk,
            self.engine,
            self.injector,
            self.config.recovery,
            self.metrics,
            obs=self.obs,
        )
        self.cache = _cache_class(cache_impl)(
            self.config.cache, self.engine, self.disk, self.metrics,
            file_sizes=file_sizes, device=self.device, obs=self.obs,
        )
        self.engine_impl = _engine_impl(engine_impl)
        self.scheduler = RoundRobinScheduler(
            self.engine,
            self.config.scheduler,
            self.metrics,
            n_cpus=self.config.scheduler.n_cpus,
            obs=self.obs,
        )
        self.batch_kernel = None
        proc_kwargs: dict = {}
        proc_class = TraceProcess
        if self.engine_impl == "batch":
            from repro.sim.batch import BatchKernel, BatchTraceProcess

            self.batch_kernel = BatchKernel(
                self.engine,
                self.scheduler,
                self.metrics,
                self.cache,
                self.config,
                obs=self.obs,
            )
            self.engine.pump = self.batch_kernel.pump
            self.engine.pump_watch = (
                self.batch_kernel._dispatch_fn,
                self.batch_kernel._slice_fn,
            )
            proc_class = BatchTraceProcess
            proc_kwargs["kernel"] = self.batch_kernel
        self.processes: list[TraceProcess] = []
        seen_pids: set[int] = set()
        for k, trace in enumerate(traces):
            pids = trace.process_ids()
            pid = int(pids[0]) if len(pids) else k + 1
            if pid in seen_pids:
                raise SimulationError(
                    f"duplicate process id {pid}; relabel the traces "
                    "(see relabel_copies)"
                )
            seen_pids.add(pid)
            self.processes.append(
                proc_class(
                    pid,
                    trace,
                    engine=self.engine,
                    scheduler=self.scheduler,
                    cache=self.cache,
                    metrics=self.metrics,
                    sched_config=self.config.scheduler,
                    **proc_kwargs,
                )
            )

    def run(self, *, max_events: int | None = None) -> SimulationResult:
        """Run to completion (all processes done, all flushes drained).

        With timed faults configured the run is segmented at each cut
        time: the engine runs up to the cut, the fault is applied (SSD
        failure -> degraded mode; crash -> stop, dirty bytes lost), and
        the run continues.  ``max_events`` is a cumulative budget, so
        segmenting does not change the runaway guard.
        """
        for proc in self.processes:
            self.scheduler.add(proc)
        faults = self.config.faults
        cuts: list[tuple[float, str]] = []
        if faults.ssd_fail_at_s is not None:
            cuts.append((faults.ssd_fail_at_s, "degrade"))
        if faults.crash_at_s is not None:
            cuts.append((faults.crash_at_s, "crash"))
        cuts.sort()
        crashed = False
        for t, kind in cuts:
            # Probe without the final clock jump: if the simulation
            # drained before the cut, the fault never happens and the
            # clock must stay at the last real event.
            self.engine.run(max_events=max_events, until=t, advance_clock=False)
            if not self.engine.pending and all(p.finished for p in self.processes):
                break
            self.engine.run(max_events=max_events, until=t)  # now == t
            if kind == "crash":
                fs = self.metrics.faults
                fs.crashed = True
                fs.crash_time_s = self.engine.now
                fs.lost_bytes += self.cache.dirty_bytes()
                crashed = True
                break
            self.cache.enter_degraded()
        if not crashed:
            self.engine.run(max_events=max_events)
            unfinished = [p.process_id for p in self.processes if not p.finished]
            if unfinished:
                raise SimulationError(
                    f"simulation drained with unfinished processes: {unfinished}"
                )
        finish_times = [
            p.finish_time
            for p in self.metrics.processes.values()
            if p.finish_time is not None
        ]
        if crashed:
            # The machine stopped at the crash; nothing completes after.
            completion = self.engine.now
        else:
            completion = max(finish_times) if finish_times else self.engine.now
        self._publish_obs()
        return SimulationResult(
            wall_seconds=self.engine.now,
            completion_seconds=completion,
            n_cpus=self.config.scheduler.n_cpus,
            busy_seconds=self.metrics.busy_seconds,
            switch_seconds=self.metrics.switch_seconds,
            interrupt_seconds=self.metrics.interrupt_seconds,
            cache=self.metrics.cache,
            processes=dict(self.metrics.processes),
            disk_read_rate=RateSeries.from_binned(self.metrics.disk_read_series),
            disk_write_rate=RateSeries.from_binned(self.metrics.disk_write_series),
            demand_rate=RateSeries.from_binned(self.metrics.demand_series),
            busy_rate=RateSeries.from_binned(self.metrics.busy_series),
            disk_sequential_fraction=self.disk.sequential_fraction,
            disk_busy_seconds=self.disk.busy_seconds,
            events_run=self.engine.events_run,
            faults=self.metrics.faults,
        )


    def _publish_obs(self) -> None:
        """Mirror end-of-run accounting into the observability registry.

        Counters accumulate across runs sharing one registry (a sweep
        profiled as a whole); derived fractions are recomputed from the
        accumulated counters so they stay aggregate-correct.
        """
        reg = self.obs
        if not reg.enabled:
            return
        c = self.metrics.cache
        for name in (
            "read_requests", "read_bytes", "write_requests", "write_bytes",
            "block_hits", "block_misses", "block_inflight_hits",
            "readahead_hits", "prefetch_issued", "prefetch_blocks",
            "writes_absorbed", "writes_cancelled", "frame_stalls",
            "bypass_requests",
        ):
            reg.counter(f"sim.cache.{name}").add(getattr(c, name))
        hits = reg.counter("sim.cache.block_hits").value
        inflight = reg.counter("sim.cache.block_inflight_hits").value
        misses = reg.counter("sim.cache.block_misses").value
        total = hits + inflight + misses
        reg.gauge("sim.cache.hit_fraction").set(
            (hits + inflight) / total if total else 0.0
        )
        reg.counter("sim.disk.requests").add(self.disk.requests)
        reg.counter("sim.disk.sequential_requests").add(
            self.disk.sequential_requests
        )
        reg.counter("sim.disk.busy_s").add(self.disk.busy_seconds)
        for device, busy in sorted(self.disk.busy_by_device.items()):
            reg.counter(f"sim.disk.device.{device}.busy_s").add(busy)
        fs = self.metrics.faults
        for name in ("injected_errors", "injected_slowdowns", "degraded_requests"):
            reg.counter(f"sim.faults.{name}").add(getattr(fs, name))
        reg.counter("sim.faults.lost_bytes").add(fs.lost_bytes)
        if fs.crashed:
            reg.counter("sim.faults.crashes").inc()
        for name in (
            "timeouts", "retries", "recovered",
            "failed_reads", "failed_writes", "reflushes",
        ):
            reg.counter(f"sim.recovery.{name}").add(getattr(fs, name))
        reg.gauge("sim.recovery.max_attempts").set_max(fs.max_attempts)
        reg.counter("sim.sched.busy_s").add(self.metrics.busy_seconds)
        reg.counter("sim.sched.switch_overhead_s").add(self.metrics.switch_seconds)
        reg.counter("sim.sched.interrupt_s").add(self.metrics.interrupt_seconds)
        for pid in sorted(self.metrics.processes):
            p = self.metrics.processes[pid]
            reg.counter(f"sim.proc.{pid}.cpu_s").add(p.cpu_seconds)
            reg.counter(f"sim.proc.{pid}.blocked_s").add(p.blocked_seconds)
            reg.counter(f"sim.proc.{pid}.ios").add(p.n_ios)
        reg.emit(
            "simulation",
            wall_seconds=self.engine.now,
            events_run=self.engine.events_run,
            hit_fraction=c.hit_fraction,
            disk_busy_s=self.disk.busy_seconds,
        )


def simulate(
    traces: Sequence[TraceArray],
    config: SimConfig | None = None,
    *,
    max_events: int | None = None,
    obs=None,
    cache_impl: str | None = None,
    engine_impl: str | None = None,
) -> SimulationResult:
    """One-shot: build and run a :class:`SimulatedSystem`."""
    return SimulatedSystem(
        traces, config, obs=obs, cache_impl=cache_impl, engine_impl=engine_impl
    ).run(max_events=max_events)
