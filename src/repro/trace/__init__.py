"""The paper's I/O trace format and collection pipeline.

Layers, bottom to top:

* :mod:`repro.trace.flags` / :mod:`repro.trace.record` -- the
  ``iotrace.h`` record model.
* :mod:`repro.trace.encode` / :mod:`repro.trace.decode` /
  :mod:`repro.trace.io` -- the compressed ASCII on-disk format.
* :mod:`repro.trace.array` -- columnar bulk representation used by
  analysis and simulation.
* :mod:`repro.trace.packets` / :mod:`repro.trace.procstat` /
  :mod:`repro.trace.reconstruct` -- the library-hook -> procstat ->
  packet-file -> reconstructed-stream collection pipeline.
* :mod:`repro.trace.stats` / :mod:`repro.trace.validate` -- size
  accounting and structural validation.
"""

from repro.trace import flags
from repro.trace.array import TraceArray
from repro.trace.decode import TraceDecoder, decode_lines
from repro.trace.encode import EncoderStats, TraceEncoder, encode_records
from repro.trace.io import (
    read_comments,
    read_io_records,
    read_trace,
    read_trace_array,
    write_trace,
    write_trace_array,
)
from repro.trace.packets import (
    IOEvent,
    TracePacket,
    dump_packets,
    load_packets,
    packet_overhead_ratio,
)
from repro.trace.procstat import ProcstatCollector, collect_to_list
from repro.trace.reconstruct import (
    reconstruct_array,
    reconstruct_records,
)
from repro.trace.record import (
    AnyRecord,
    CommentRecord,
    TraceRecord,
    file_name_comment,
    parse_file_name_comment,
)
from repro.trace.stats import TraceSizeReport, measure_trace_sizes
from repro.trace.validate import ValidationReport, validate_array, validate_records

__all__ = [
    "flags",
    "TraceArray",
    "TraceDecoder",
    "decode_lines",
    "EncoderStats",
    "TraceEncoder",
    "encode_records",
    "read_comments",
    "read_io_records",
    "read_trace",
    "read_trace_array",
    "write_trace",
    "write_trace_array",
    "IOEvent",
    "TracePacket",
    "dump_packets",
    "load_packets",
    "packet_overhead_ratio",
    "ProcstatCollector",
    "collect_to_list",
    "reconstruct_array",
    "reconstruct_records",
    "AnyRecord",
    "CommentRecord",
    "TraceRecord",
    "file_name_comment",
    "parse_file_name_comment",
    "TraceSizeReport",
    "measure_trace_sizes",
    "ValidationReport",
    "validate_array",
    "validate_records",
]
