"""Vectorized fast path for :meth:`TraceDecoder.decode_array`.

The scalar decoder walks the trace line by line in Python; at a few
million lines that loop dominates every cold trace load.  This module
decodes the *whole document* with NumPy instead: one pass classifies
bytes, one ``np.add.reduceat`` parses every integer token at once, and
the omitted-field reconstruction (the format's per-file / per-process
delta state) becomes grouped ffills and segmented cumsums over the
parsed token table.

Correctness contract
--------------------
The fast path must be **byte-identical** to the scalar decoder or not
run at all.  It therefore accepts only the strict output grammar of
:class:`~repro.trace.encode.TraceEncoder` -- ASCII digits, ``-``,
single spaces, ``\\n`` line ends, ``255``-prefixed comment lines -- and
*wholesale falls back* to the scalar path on any deviation: stray
bytes, tabs, oversized numbers, unknown compression bits, omitted
fields without prior state, anything.  The fallback reruns the scalar
decoder from the same pristine state, so every
:class:`~repro.util.errors.TraceFormatError` (message and line number)
and every weird-but-accepted input (``int("1_0")``, unicode digits,
``+5``) behaves exactly as before -- just slower.  Divergence is only
possible when the fast path *succeeds*, and success requires the strict
grammar plus magnitude guards that make its int64 arithmetic provably
exact (see ``_MAX_ABS`` / ``_MAX_ACC``).

The decoder only attempts the fast path from a *fresh* state (no prior
lines decoded); seeding the vectorized reconstruction from mid-stream
dict state is not worth the complexity for the callers that matter
(file loads and benchmarks always start fresh).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.trace import flags as F
from repro.trace.array import TraceArray

_NL = 0x0A
_SPACE = 0x20
_MINUS = 0x2D
_D0 = 0x30
_D9 = 0x39

#: Per-token magnitude guard.  Tokens beyond this fall back to the
#: scalar path; below it, the ``*_IN_BLOCKS`` multiply (x512 = 2**9)
#: stays under 2**54 and can never overflow int64.
_MAX_ABS = 1 << 45
#: Accumulation guard.  Running sums (start times, per-file offsets,
#: per-process clocks) are shadowed in float64; while every partial sum
#: stays under 2**52 the float arithmetic is exact, so a bounded shadow
#: proves the int64 cumsum did not wrap.  Beyond it: scalar fallback
#: (Python ints are unbounded there, and the array build raises its own
#: OverflowError exactly as before).
_MAX_ACC = float(1 << 52)

_POW10 = (10 ** np.arange(18, dtype=np.int64))
_MAX_DIGITS = 18  # 10**18 - 1 < 2**63


_UINT32_MAX = (1 << 32) - 1


def prepare(lines) -> tuple[bytes | None, int, Iterable[str]]:
    """Normalize any ``decode_array`` input into one ASCII document.

    Returns ``(buf, n_lines, fallback)``: ``buf`` is the document as
    bytes ending in a newline (or ``None`` when the input cannot be
    expressed in the strict grammar, e.g. non-ASCII text or an element
    with an interior newline), ``n_lines`` the logical line count, and
    ``fallback`` an iterable of ``str`` lines equivalent to the input
    for the scalar path.  Accepts ``str``/``bytes``/``mmap``-style
    whole documents, file objects (read in one call -- no per-line text
    layer round trip for binary handles), and any iterable of lines.
    """
    if hasattr(lines, "read"):
        lines = lines.read()
    if isinstance(lines, (bytes, bytearray, memoryview)):
        buf = bytes(lines)
        text = buf.decode("latin-1")
        n_lines = _document_line_count(text)
        fallback = _document_lines(text)
        if not buf.isascii():
            return None, n_lines, fallback
        return _terminate(buf, n_lines), n_lines, fallback
    if isinstance(lines, str):
        n_lines = _document_line_count(lines)
        fallback = _document_lines(lines)
        try:
            buf = lines.encode("ascii")
        except UnicodeEncodeError:
            return None, n_lines, fallback
        return _terminate(buf, n_lines), n_lines, fallback
    lst = lines if isinstance(lines, list) else list(lines)
    n_lines = len(lst)
    # Fast shape check: elements with neither interior nor trailing
    # newlines join into exactly n_lines - 1 separators.
    joined = "\n".join(lst)
    if joined.count("\n") != max(n_lines - 1, 0):
        # Slow path: strip one trailing newline per element; interior
        # newlines would make the fast path's line splits disagree with
        # the scalar path's element boundaries, so refuse those.
        norm = []
        for element in lst:
            cut = element.find("\n")
            if cut == -1:
                norm.append(element)
            elif cut == len(element) - 1:
                norm.append(element[:-1])
            else:
                return None, n_lines, lst
        joined = "\n".join(norm)
    try:
        buf = joined.encode("ascii")
    except UnicodeEncodeError:
        return None, n_lines, lst
    return _terminate(buf, n_lines), n_lines, lst


def _terminate(buf: bytes, n_lines: int) -> bytes | None:
    # Every construction path above yields a buffer whose newline count
    # matches the logical line count exactly (1:1 codecs, normalized
    # join), except a trailing run of empty elements, which encodes
    # fewer physical lines -- harmless, since blank lines decode to
    # nothing and the caller takes the line count from ``n_lines``.
    if n_lines and not buf.endswith(b"\n"):
        buf += b"\n"
    return buf


def _document_line_count(text: str) -> int:
    if not text:
        return 0
    return text.count("\n") + (0 if text.endswith("\n") else 1)


def _document_lines(text: str) -> list[str]:
    parts = text.split("\n")
    if parts and parts[-1] == "":
        parts.pop()
    return parts


def decode_document(buf: bytes):
    """Decode a prepared document; ``None`` means scalar fallback.

    On success returns ``(trace, state)`` where ``state`` is ``None``
    for a record-free document, else ``(prev_start, prev_process,
    file_of_process, files)`` with ``files`` mapping file id ->
    ``(next_offset, length, operation_id)`` -- the exact reconstruction
    state the scalar decoder would hold after the same lines.
    """
    a = np.frombuffer(buf, dtype=np.uint8)
    n = a.size
    if n == 0:
        return TraceArray.empty(), None
    isnl = a == _NL
    nl_pos = np.flatnonzero(isnl)
    line_starts = np.concatenate((np.zeros(1, dtype=np.int64), nl_pos[:-1] + 1))
    n_lines = nl_pos.size

    # -- comment lines: "255" at line start, then space or end-of-line.
    # Comment text is arbitrary, so those bytes are excluded from both
    # the grammar check and tokenization (the scalar path never parses
    # them either).  Anything comment-like the prefix test misses
    # (" 255 x", "0255 1") is caught after parsing and falls back.
    def _at(idx: np.ndarray) -> np.ndarray:
        return a[np.minimum(idx, n - 1)]

    tail = _at(line_starts + 3)
    is_comment_line = (
        (a[line_starts] == 0x32)        # '2'
        & (_at(line_starts + 1) == 0x35)  # '5'
        & (_at(line_starts + 2) == 0x35)  # '5'
        & ((tail == _SPACE) | (tail == _NL))
    )
    has_comments = bool(is_comment_line.any())
    if has_comments:
        delta = np.zeros(n + 1, dtype=np.int8)
        delta[line_starts[is_comment_line]] = 1
        delta[nl_pos[is_comment_line]] -= 1
        in_comment = np.cumsum(delta[:n]) > 0

    # Byte-compare chains beat a classification LUT here: comparisons
    # vectorize (SIMD), per-element table gathers do not.
    isdig = (a >= _D0) & (a <= _D9)
    ismin = a == _MINUS
    any_min = bool(ismin.any())
    grammar_ok = a == _SPACE
    grammar_ok |= isnl
    grammar_ok |= isdig
    if any_min:
        grammar_ok |= ismin
    if has_comments:
        grammar_ok |= in_comment
    if not grammar_ok.all():
        return None

    if any_min:
        tok = isdig | ismin
    elif has_comments:
        tok = isdig.copy()
    else:
        tok = isdig  # aliasing is fine: isdig is only reread for minus signs
    if has_comments:
        tok &= ~in_comment
    if not tok.any():
        return TraceArray.empty(), None
    tok_start = tok.copy()
    tok_start[1:] &= ~tok[:-1]
    ts = np.flatnonzero(tok_start)
    # Token lengths.  The encoder separates tokens with exactly one
    # byte (space or newline), in which case lengths follow from
    # consecutive starts alone; verify by total token bytes and only
    # fall back to the end-of-token scan for multi-space/comment gaps.
    dig_len = np.diff(ts, append=n) - 1  # final newline closes the last token
    if int(dig_len.sum()) != int(np.count_nonzero(tok)):
        tok_end = tok.copy()
        tok_end[:-1] &= ~tok[1:]
        dig_len = np.flatnonzero(tok_end) - ts + 1
    dig_start = ts
    neg = None

    minus_idx = np.flatnonzero(ismin & tok) if any_min else None
    if minus_idx is not None and minus_idx.size:
        # '-' only as a sign: token-initial and digit-followed.  (The
        # last byte is '\n', so minus_idx + 1 is always in range.)
        if not tok_start[minus_idx].all() or not isdig[minus_idx + 1].all():
            return None
        neg = ismin[ts]
        dig_start = ts + neg
        dig_len = dig_len - neg
    if (dig_len > _MAX_DIGITS).any():
        return None

    # -- integer parse, one digit-count class at a time: tokens of L
    # digits evaluate by Horner's rule over L per-position gathers, so
    # each digit is touched once and the largest temporary is one
    # token-count int64 vector (a (k, L) window matrix costs ~2x more
    # in allocator traffic alone).  Documents hold few distinct digit
    # counts, so the outer loop runs a handful of times.
    vals = np.empty(ts.size, dtype=np.int64)
    # digit counts fit a byte, and numpy's stable argsort switches to
    # radix sort (~6x faster than the int64 merge sort) at <= 16 bits
    order = np.argsort(dig_len.astype(np.uint8), kind="stable")
    dl_sorted = dig_len[order]
    group_bounds = np.flatnonzero(dl_sorted[1:] != dl_sorted[:-1]) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.int64), group_bounds))
    ends = np.concatenate((group_bounds, [dl_sorted.size]))
    for s, e in zip(starts.tolist(), ends.tolist()):
        width = int(dl_sorted[s])
        idx = order[s:e]
        pos = dig_start[idx]
        # <= 9 digits fits int32 (999_999_999 < 2**31): half the
        # memory traffic for the overwhelmingly common short tokens.
        acc = a[pos].astype(np.int32 if width <= 9 else np.int64)
        acc -= _D0
        for j in range(1, width):
            acc *= 10
            acc += a[pos + j]
            acc -= _D0
        vals[idx] = acc
    if neg is not None:
        np.negative(vals, out=vals, where=neg)
    if (np.abs(vals) > _MAX_ABS).any():
        return None

    # -- line structure of the token table: cumulative token count at
    # each line end gives both per-line counts and first-token offsets.
    tok_before_eol = np.searchsorted(ts, nl_pos, side="left")
    counts = np.diff(tok_before_eol, prepend=0)
    record_lines = np.flatnonzero(counts > 0)
    m = record_lines.size
    if m == 0:
        return TraceArray.empty(), None
    base = tok_before_eol[record_lines] - counts[record_lines]
    cnt = counts[record_lines]
    if (cnt < 2).any():
        return None  # "record has no compression field"
    record_type = vals[base]
    if ((record_type < 0) | (record_type > 254)).any():
        return None  # out of range, or a comment the prefix test missed
    comp = vals[base + 1]
    if (comp & ~F.TRACE_COMPRESSION_MASK).any():
        return None
    has_off = (comp & F.TRACE_NO_BLOCK) == 0
    has_len = (comp & F.TRACE_NO_LENGTH) == 0
    has_op = (comp & F.TRACE_NO_OPERATIONID) == 0
    has_fid = (comp & F.TRACE_NO_FILEID) == 0
    has_pid = (comp & F.TRACE_NO_PROCESSID) == 0
    off_blk = (comp & F.TRACE_OFFSET_IN_BLOCKS) != 0
    len_blk = (comp & F.TRACE_LENGTH_IN_BLOCKS) != 0
    if (off_blk & ~has_off).any() or (len_blk & ~has_len).any():
        return None  # *_IN_BLOCKS set on omitted field
    # recordType, compression, startTime, completionTime, processTime
    # are always present; the five optional fields add one token each.
    expected = 5 + has_off + has_len + has_op + has_fid + has_pid
    if (cnt != expected).any():
        return None  # truncated record or trailing fields

    # -- field positions (struct order, shifted by what is present)
    off_idx = base + 2
    len_idx = off_idx + has_off
    start_idx = len_idx + has_len
    dur_idx = start_idx + 1
    op_idx = dur_idx + 1
    fid_idx = op_idx + has_op
    pid_idx = fid_idx + has_fid
    pt_idx = pid_idx + has_pid

    start_delta = vals[start_idx]
    if (start_delta < 0).any():
        return None
    # Deltas are nonnegative, so every partial sum is bounded by the
    # total; a bounded float64 total proves the int64 cumsum is exact.
    if float(np.sum(start_delta, dtype=np.float64)) >= _MAX_ACC:
        return None
    start_time = np.cumsum(start_delta)
    duration = vals[dur_idx]

    # -- processId: previous record in the trace (global ffill)
    if not has_pid[0]:
        return None  # omitted on first record
    pid_exp = vals[pid_idx]
    explicit = pid_exp[has_pid]
    if ((explicit < 0) | (explicit > _UINT32_MAX)).any():
        return None
    process_id = pid_exp[_ffill_index(has_pid)]

    # -- fileId: previous record by this process (per-process ffill)
    porder = _stable_group_sort(process_id)
    pid_s = process_id[porder]
    pgroup_start = np.empty(m, dtype=bool)
    pgroup_start[0] = True
    pgroup_start[1:] = pid_s[1:] != pid_s[:-1]
    has_fid_s = has_fid[porder]
    if (pgroup_start & ~has_fid_s).any():
        return None  # fileId omitted but process has no prior record
    fid_exp = vals[fid_idx]
    explicit = fid_exp[has_fid]
    if ((explicit < 0) | (explicit > _UINT32_MAX)).any():
        return None
    # First-of-group is always explicit, so a plain running maximum of
    # explicit indices never leaks state across group boundaries.
    fid_s = fid_exp[porder][_ffill_index(has_fid_s)]
    file_id = np.empty(m, dtype=np.int64)
    file_id[porder] = fid_s

    # -- processTime deltas -> absolute per-process clock
    pt = vals[pt_idx]
    pt_s = pt[porder]
    if np.abs(np.cumsum(pt_s, dtype=np.float64)).max() >= _MAX_ACC:
        return None
    csum = np.cumsum(pt_s)
    pgid = np.cumsum(pgroup_start) - 1
    before_group = (csum - pt_s)[np.flatnonzero(pgroup_start)]
    clock_s = csum - before_group[pgid]
    process_clock = np.empty(m, dtype=np.int64)
    process_clock[porder] = clock_s

    # -- per-file state: length / operationId ffill, offset by
    # sequential extension (anchor + sum of lengths since the anchor)
    forder = _stable_group_sort(file_id)
    fid_f = file_id[forder]
    fgroup_start = np.empty(m, dtype=bool)
    fgroup_start[0] = True
    fgroup_start[1:] = fid_f[1:] != fid_f[:-1]
    has_len_s = has_len[forder]
    has_op_s = has_op[forder]
    has_off_s = has_off[forder]
    if (fgroup_start & ~(has_len_s & has_op_s & has_off_s)).any():
        return None  # omitted field but file has no prior record

    # The encoder omits offset/length/operationId under one shared
    # condition in the common case, so the three ffill index vectors
    # usually coincide -- detect that and compute each only once.
    anchor = _ffill_index(has_off_s)
    if np.array_equal(has_len_s, has_off_s):
        len_fill = anchor
    else:
        len_fill = _ffill_index(has_len_s)
    if np.array_equal(has_op_s, has_off_s):
        op_fill = anchor
    elif np.array_equal(has_op_s, has_len_s):
        op_fill = len_fill
    else:
        op_fill = _ffill_index(has_op_s)

    raw = vals[len_idx]
    len_exp = np.where(len_blk, raw * F.TRACE_BLOCK_SIZE, raw)
    len_s = len_exp[forder][len_fill]
    length = np.empty(m, dtype=np.int64)
    length[forder] = len_s

    op_exp = vals[op_idx]
    if (op_exp[has_op] < 0).any():
        return None
    op_s = op_exp[forder][op_fill]
    operation_id = np.empty(m, dtype=np.int64)
    operation_id[forder] = op_s

    if np.abs(np.cumsum(len_s, dtype=np.float64)).max() >= _MAX_ACC:
        return None
    lcsum = np.cumsum(len_s)
    excl = lcsum - len_s  # lengths of earlier records, all files mixed;
    # differences below only ever span one contiguous file group.
    raw = vals[off_idx]
    off_exp = np.where(off_blk, raw * F.TRACE_BLOCK_SIZE, raw)
    off_exp_s = off_exp[forder]
    off_s = off_exp_s[anchor] + (excl - excl[anchor])
    offset = np.empty(m, dtype=np.int64)
    offset[forder] = off_s

    trace = TraceArray(
        record_type.astype(np.uint16),
        file_id.astype(np.uint32),
        process_id.astype(np.uint32),
        operation_id.astype(np.uint64),
        offset,
        length,
        start_time,
        duration,
        process_clock,
    )
    # Reconstruction state after the last line: the latest record per
    # file / per process.  The stable group sorts above keep trace
    # order within each group, so each group's final element is exactly
    # that file's / process's most recent record -- no extra sort.
    fgroup_last = np.concatenate((np.flatnonzero(fgroup_start)[1:] - 1, [m - 1]))
    files = {}
    for i in forder[fgroup_last].tolist():
        files[int(file_id[i])] = (
            int(offset[i] + length[i]),
            int(length[i]),
            int(operation_id[i]),
        )
    pgroup_last = np.concatenate((np.flatnonzero(pgroup_start)[1:] - 1, [m - 1]))
    file_of_process = {
        int(process_id[i]): int(file_id[i]) for i in porder[pgroup_last].tolist()
    }
    state = (
        int(start_time[-1]),
        int(process_id[-1]),
        file_of_process,
        files,
    )
    return trace, state


def _stable_group_sort(keys: np.ndarray) -> np.ndarray:
    """Stable argsort of nonnegative group keys, radix-fast when small.

    Same <= 16-bit radix trick as the digit-count sort: ids in real
    traces are tiny, and the uint16 path is ~4x faster than the int64
    merge sort.  Values are already range-checked nonnegative.
    """
    if keys.size and int(keys.max()) <= 0xFFFF:
        return np.argsort(keys.astype(np.uint16), kind="stable")
    return np.argsort(keys, kind="stable")


def _ffill_index(present: np.ndarray) -> np.ndarray:
    """Index of the most recent True at or before each position.

    ``present[0]`` must be True (callers check); the result then always
    points at a valid explicit entry.
    """
    idx = np.where(present, np.arange(present.size, dtype=np.int64), -1)
    np.maximum.accumulate(idx, out=idx)
    return idx
