"""Binary columnar trace store: compiled traces that rehydrate for free.

The ASCII trace format stays the canonical interchange (it is what the
paper defines and what every tool reads), but replaying it means parsing
and reconstructing every line again on every run.  This module compiles
a trace -- any ASCII file, or a generated workload's columns -- into an
on-disk columnar bundle (suffix ``.rpt``) holding one raw little-endian
NumPy array per :class:`~repro.trace.array.TraceArray` column, so a
later run memory-maps the columns back with **zero per-record work**.

File layout (all integers little-endian)::

    offset 0   8 bytes   magic  b"RPTSTOR1"
    offset 8   8 bytes   header length H (uint64)
    offset 16  H bytes   header JSON (utf-8)
    ...        padding   zero bytes to the next 64-byte boundary
    ...                  column payloads, each 64-byte aligned

The JSON header carries the format version, the record count, the exact
dtype/offset/size of every column, a SHA-256 of the column payload, a
description of the *source* (the ASCII file's content digest, or the
generation parameters of a synthetic workload), a per-file table
(records/bytes per file id -- the Table-1 shape of the trace) and a
free-form ``meta`` dict.  64-byte alignment lets every column be viewed
directly out of one ``np.memmap`` with no copy and no alignment faults.

Versioning: readers accept exactly :data:`STORE_VERSION`.  Any change to
the column schema or layout must bump it; old bundles are then rejected
with :class:`~repro.util.errors.StoreFormatError` (and the
content-addressed cache simply recompiles, because the version is part
of the cache key material).

The content-addressed compile cache
-----------------------------------
:class:`TraceStoreCache` keys compiled bundles by the SHA-256 of their
*source* (ASCII file contents, or canonical generation parameters), so
the second and every later run of an experiment skips ASCII decode --
and synthetic-workload generation -- entirely.  The root directory is
``$REPRO_TRACE_CACHE`` when set (``off``/``0``/``none`` disables the
cache), defaulting to ``trace-store/`` under the result-cache dir
(``$REPRO_CACHE_DIR`` or ``~/.cache/repro/results``).  Like the result
cache, a corrupt entry is surfaced (counter + warning) but only ever
costs a recompile, never a wrong trace.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.obs.registry import get_registry
from repro.trace.array import _FIELDS, TraceArray
from repro.util.errors import StoreFormatError

#: Magic bytes identifying a compiled trace store file.
STORE_MAGIC = b"RPTSTOR1"

#: Format version readers accept; bump on any layout or schema change.
STORE_VERSION = 1

#: Conventional suffix for compiled bundles.
STORE_SUFFIX = ".rpt"

#: Column payload alignment (bytes).  64 covers every column dtype and
#: keeps each column cache-line aligned in the mapping.
_ALIGN = 64

#: Errors a *cache* lookup degrades on (vs. propagating): filesystem
#: trouble plus every way a bundle can be malformed.
_CACHE_READ_ERRORS = (OSError, ValueError, KeyError, StoreFormatError)


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def file_digest(path: str | Path, *, chunk_bytes: int = 1 << 20) -> str:
    """SHA-256 of a file's contents, streamed in bounded chunks.

    Shared by the sweep runner's cache keys and the compile cache, so a
    multi-gigabyte trace never has to fit in memory just to be hashed.
    """
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for piece in iter(lambda: fh.read(chunk_bytes), b""):
            h.update(piece)
    return h.hexdigest()


# -- header ------------------------------------------------------------------


@dataclass(frozen=True)
class StoreHeader:
    """Decoded header of one compiled bundle."""

    version: int
    records: int
    #: where the columns came from: ``{"kind": "ascii", "sha256": ...}``
    #: or ``{"kind": "generated", "sha256": ..., "app": ..., ...}``
    source: dict
    #: per-column layout: ``{"name", "dtype", "offset", "nbytes"}``
    columns: tuple
    payload_sha256: str
    #: absolute file offset where the payload region starts / ends
    payload_start: int
    payload_end: int
    #: per-file table metadata: ``{"id", "records", "bytes"}`` rows
    files: tuple
    #: free-form extras (e.g. generated-workload metadata)
    meta: dict

    @property
    def source_sha256(self) -> str:
        return self.source.get("sha256", "")


def _expected_columns() -> dict[str, str]:
    """name -> little-endian dtype string for the current schema."""
    return {
        name: np.dtype(dtype).newbyteorder("<").str for name, dtype in _FIELDS
    }


def _file_table(trace: TraceArray) -> list[dict]:
    """Per-file record/byte counts (the bundle's Table-1 metadata)."""
    if len(trace) == 0:
        return []
    ids, counts = np.unique(trace.file_id, return_counts=True)
    sums = {
        int(fid): int(trace.length[trace.file_id == fid].sum()) for fid in ids
    }
    return [
        {"id": int(fid), "records": int(n), "bytes": sums[int(fid)]}
        for fid, n in zip(ids, counts)
    ]


# -- writing -----------------------------------------------------------------


def write_store(
    path: str | Path,
    trace: TraceArray,
    *,
    source: dict,
    meta: dict | None = None,
) -> Path:
    """Write ``trace`` as a compiled bundle at ``path`` (atomically).

    ``source`` identifies what was compiled (see :class:`StoreHeader`);
    it must carry a ``sha256`` so loads can be keyed back to the
    original.  Returns the written path.
    """
    path = Path(path)
    expected = _expected_columns()
    layout: list[dict] = []
    payloads: list[bytes] = []
    cursor = 0
    for name, _ in _FIELDS:
        col = np.ascontiguousarray(getattr(trace, name))
        raw = col.astype(col.dtype.newbyteorder("<"), copy=False).tobytes()
        cursor = _align(cursor)
        layout.append(
            {
                "name": name,
                "dtype": expected[name],
                "offset": cursor,
                "nbytes": len(raw),
            }
        )
        payloads.append(raw)
        cursor += len(raw)

    payload_digest = hashlib.sha256()
    pieces: list[bytes] = []
    pos = 0
    for entry, raw in zip(layout, payloads):
        if entry["offset"] > pos:
            pieces.append(b"\0" * (entry["offset"] - pos))
            pos = entry["offset"]
        pieces.append(raw)
        pos += len(raw)
    payload = b"".join(pieces)
    payload_digest.update(payload)

    header = {
        "format": "repro-trace-store",
        "version": STORE_VERSION,
        "records": len(trace),
        "source": dict(source),
        "columns": layout,
        "payload_sha256": payload_digest.hexdigest(),
        "files": _file_table(trace),
        "meta": dict(meta or {}),
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    prefix_len = len(STORE_MAGIC) + 8 + len(header_bytes)
    payload_start = _align(prefix_len)

    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(STORE_MAGIC)
            fh.write(len(header_bytes).to_bytes(8, "little"))
            fh.write(header_bytes)
            fh.write(b"\0" * (payload_start - prefix_len))
            fh.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def compile_trace(
    path: str | Path,
    out: str | Path | None = None,
    *,
    meta: dict | None = None,
) -> Path:
    """Compile an ASCII trace file into a bundle.

    ``out`` defaults to the input path with :data:`STORE_SUFFIX`
    appended (``venus.trace`` -> ``venus.trace.rpt``).  The header's
    source records the ASCII file's streamed content digest, so the
    bundle produces the *same* sweep-point keys as the file it came
    from.  Returns the bundle path.
    """
    from repro.trace.io import read_trace_array

    path = Path(path)
    if is_store_file(path):
        raise StoreFormatError(f"{path} is already a compiled store file")
    out = Path(out) if out is not None else path.with_name(path.name + STORE_SUFFIX)
    trace = read_trace_array(path)
    source = {
        "kind": "ascii",
        "sha256": file_digest(path),
        "name": path.name,
    }
    return write_store(out, trace, source=source, meta=meta)


# -- loading -----------------------------------------------------------------


@dataclass
class CompiledTrace:
    """A loaded bundle: memory-mapped columns plus the decoded header."""

    trace: TraceArray
    header: StoreHeader
    path: Path

    @property
    def bytes_mapped(self) -> int:
        return self.header.payload_end - self.header.payload_start


def is_store_file(path: str | Path) -> bool:
    """True when ``path`` exists and starts with the store magic."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(STORE_MAGIC)) == STORE_MAGIC
    except OSError:
        return False


def read_store_header(path: str | Path) -> StoreHeader:
    """Decode and validate only the header of a bundle (no column I/O)."""
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            magic = fh.read(len(STORE_MAGIC))
            if magic != STORE_MAGIC:
                raise StoreFormatError(
                    f"{path}: bad magic {magic!r} (not a compiled trace store)"
                )
            raw_len = fh.read(8)
            if len(raw_len) != 8:
                raise StoreFormatError(f"{path}: truncated header length")
            header_len = int.from_bytes(raw_len, "little")
            # The header must fit after the magic + length prologue.
            # Bounding against the whole file size would let a header
            # length inside the prologue's own byte budget pass here and
            # surface later as a confusing short-read or mmap error.
            prologue = len(STORE_MAGIC) + 8
            if header_len <= 0 or header_len > size - prologue:
                raise StoreFormatError(
                    f"{path}: header length {header_len} out of range "
                    f"(file holds {max(0, size - prologue)} bytes past "
                    f"the {prologue}-byte prologue; offsets "
                    f"[{prologue}, {prologue + header_len}) required)"
                )
            header_bytes = fh.read(header_len)
            if len(header_bytes) != header_len:
                raise StoreFormatError(f"{path}: truncated header")
    except OSError as exc:
        raise StoreFormatError(f"{path}: unreadable ({exc})") from exc
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        raise StoreFormatError(f"{path}: header is not valid JSON") from exc

    version = header.get("version")
    if version != STORE_VERSION:
        raise StoreFormatError(
            f"{path}: store version {version!r} unsupported "
            f"(this build reads version {STORE_VERSION})"
        )
    records = header.get("records")
    columns = header.get("columns")
    if not isinstance(records, int) or not isinstance(columns, list):
        raise StoreFormatError(f"{path}: malformed header fields")

    expected = _expected_columns()
    by_name = {c.get("name"): c for c in columns}
    if set(by_name) != set(expected):
        raise StoreFormatError(
            f"{path}: column set {sorted(by_name)} does not match the "
            f"current schema {sorted(expected)}"
        )
    payload_start = _align(len(STORE_MAGIC) + 8 + header_len)
    payload_end = payload_start
    for name, dtype_str in expected.items():
        entry = by_name[name]
        if entry.get("dtype") != dtype_str:
            raise StoreFormatError(
                f"{path}: column {name!r} has dtype {entry.get('dtype')!r}, "
                f"expected {dtype_str!r}"
            )
        nbytes = entry.get("nbytes")
        itemsize = np.dtype(dtype_str).itemsize
        if nbytes != records * itemsize:
            raise StoreFormatError(
                f"{path}: column {name!r} holds {nbytes} bytes, expected "
                f"{records} records x {itemsize} bytes"
            )
        end = payload_start + entry.get("offset", -1) + nbytes
        payload_end = max(payload_end, end)
    if size < payload_end:
        raise StoreFormatError(
            f"{path}: truncated payload ({size} bytes on disk, "
            f"{payload_end} required)"
        )
    return StoreHeader(
        version=version,
        records=records,
        source=dict(header.get("source") or {}),
        columns=tuple(columns),
        payload_sha256=str(header.get("payload_sha256", "")),
        payload_start=payload_start,
        payload_end=payload_end,
        files=tuple(header.get("files") or ()),
        meta=dict(header.get("meta") or {}),
    )


def load_compiled(
    path: str | Path, *, verify: bool = False, mmap: bool = True
) -> CompiledTrace:
    """Load a bundle as memory-mapped, read-only columns.

    No per-record work happens: each column is a direct view into the
    file mapping.  ``verify=True`` additionally hashes the payload
    region and rejects the bundle on mismatch -- the always-on checks
    are the structural ones (magic, version, schema, sizes), which catch
    truncation; byte-level verification costs a full read, so it is
    opt-in.  ``mmap=False`` reads the payload into memory instead (for
    callers about to copy the columns anyway, e.g. short-lived tools on
    filesystems where mappings are expensive).
    """
    path = Path(path)
    header = read_store_header(path)
    reg = get_registry()
    if mmap:
        buf = np.memmap(path, dtype=np.uint8, mode="r")
    else:
        buf = np.frombuffer(path.read_bytes(), dtype=np.uint8)
    if verify:
        digest = hashlib.sha256(
            buf[header.payload_start : header.payload_end]
        ).hexdigest()
        if digest != header.payload_sha256:
            raise StoreFormatError(
                f"{path}: payload digest mismatch "
                f"({digest[:16]}... != {header.payload_sha256[:16]}...)"
            )
    cols: dict[str, np.ndarray] = {}
    for entry in header.columns:
        start = header.payload_start + entry["offset"]
        view = buf[start : start + entry["nbytes"]].view(
            np.dtype(entry["dtype"])
        )
        view.flags.writeable = False
        cols[entry["name"]] = view
    trace = TraceArray(**cols)
    reg.counter("trace.store.loads").inc()
    reg.counter("trace.store.bytes_mapped").inc(
        header.payload_end - header.payload_start
    )
    return CompiledTrace(trace=trace, header=header, path=path)


# -- the content-addressed compile cache -------------------------------------

_OFF_VALUES = {"0", "off", "no", "none", "false", "disabled"}


def store_cache_root() -> Path | None:
    """Resolve the compile-cache root, or None when disabled.

    ``$REPRO_TRACE_CACHE`` wins (set it to ``off``/``0`` to disable);
    the default lives under the result-cache dir so one ``rm -rf``
    clears both.
    """
    env = os.environ.get("REPRO_TRACE_CACHE", "").strip()
    if env:
        return None if env.lower() in _OFF_VALUES else Path(env)
    base = os.environ.get("REPRO_CACHE_DIR")
    if base:
        return Path(base) / "trace-store"
    xdg = os.environ.get("XDG_CACHE_HOME")
    root = Path(xdg) if xdg else Path.home() / ".cache"
    return root / "repro" / "results" / "trace-store"


@dataclass
class TraceStoreCache:
    """Compiled bundles addressed by source-content digest.

    Layout mirrors the result cache: ``<root>/<digest[:2]>/<digest>.rpt``.
    ``root=None`` disables every operation (gets miss, puts no-op), so
    callers never need to branch on whether caching is on.
    """

    root: Path | None

    @classmethod
    def default(cls) -> "TraceStoreCache":
        return cls(root=store_cache_root())

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def path_for(self, digest: str) -> Path:
        if self.root is None:
            raise ValueError("trace store cache is disabled")
        return self.root / digest[:2] / f"{digest}{STORE_SUFFIX}"

    def load(self, digest: str) -> CompiledTrace | None:
        """The cached bundle for ``digest``, or None.

        A present-but-unusable bundle counts as a miss (plus a warning
        and a ``trace.store.corrupt`` counter): cache rot costs a
        recompile, never a wrong trace.  The header's source digest is
        cross-checked against the requested key so a renamed file can
        never alias another trace.
        """
        reg = get_registry()
        if self.root is None:
            reg.counter("trace.store.compile_misses").inc()
            return None
        path = self.path_for(digest)
        if not path.exists():
            reg.counter("trace.store.compile_misses").inc()
            return None
        try:
            compiled = load_compiled(path)
            if compiled.header.source_sha256 != digest:
                raise StoreFormatError(
                    f"{path}: source digest mismatch (cache key {digest[:16]}...)"
                )
        except _CACHE_READ_ERRORS as exc:
            reg.counter("trace.store.compile_misses").inc()
            reg.counter("trace.store.corrupt").inc()
            warnings.warn(
                f"compiled trace cache entry {path} is unusable "
                f"({type(exc).__name__}: {exc}); recompiling",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        reg.counter("trace.store.compile_hits").inc()
        return compiled

    def store(
        self,
        digest: str,
        trace: TraceArray,
        *,
        source: dict,
        meta: dict | None = None,
    ) -> Path | None:
        """Write a bundle under ``digest``; degrades to a warning on error."""
        if self.root is None:
            return None
        path = self.path_for(digest)
        try:
            write_store(path, trace, source=source, meta=meta)
        except OSError as exc:
            get_registry().counter("trace.store.store_errors").inc()
            warnings.warn(
                f"compiled trace store failed at {path} "
                f"({type(exc).__name__}: {exc})",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        get_registry().counter("trace.store.compiles").inc()
        return path

    def get_or_compile_file(self, path: str | Path) -> TraceArray:
        """The columns of an ASCII trace, via the compile cache.

        First use decodes and compiles; every later use memory-maps.
        Already-compiled inputs load directly.  Any cache trouble falls
        back to plain ASCII decode.
        """
        from repro.trace.io import read_trace_array

        path = Path(path)
        if is_store_file(path):
            return load_compiled(path).trace
        digest = file_digest(path)
        hit = self.load(digest)
        if hit is not None:
            return hit.trace
        trace = read_trace_array(path)
        self.store(
            digest,
            trace,
            source={"kind": "ascii", "sha256": digest, "name": path.name},
        )
        return trace
