"""Flag constants from the paper's ``iotrace.h`` appendix.

The names and values are a direct port of the include file reproduced in
the appendix of UCB/CSD 91/616.  Two families of flags exist:

* ``recordType`` flags describe *what* the record is: logical vs physical,
  read vs write, sync vs async, the kind of data accessed, and the optional
  cache-hit annotations.
* ``compression`` flags describe *how* the record is encoded: which fields
  were omitted (to be reconstructed from earlier records) and whether the
  offset/length are expressed in 512-byte blocks.
"""

from __future__ import annotations

from enum import IntEnum

# --------------------------------------------------------------------------
# recordType flags
# --------------------------------------------------------------------------

#: Mask selecting the data-kind bits of ``recordType``.
TRACE_DATA_KIND_MASK = 0x03

TRACE_FILE_DATA = 0x0  #: file (user) data
TRACE_META_DATA = 0x1  #: metadata, such as indirect blocks
TRACE_READAHEAD = 0x2  #: readahead blocks requested by the file system
TRACE_VIRTUAL_MEM = 0x3  #: blocks requested by VM paging

TRACE_LOGICAL_RECORD = 0x80  #: set for logical records, clear for physical
TRACE_PHYSICAL_RECORD = 0x00

TRACE_READ = 0x00
TRACE_WRITE = 0x40  #: set for writes, clear for reads

TRACE_SYNC = 0x00
TRACE_ASYNC = 0x08  #: set for asynchronous requests

#: Optional analysis-only annotation: request satisfied in the cache?
TRACE_CACHE_HIT = 0x00
TRACE_CACHE_MISS = 0x20

#: Optional analysis-only annotation: cached block was a readahead block?
TRACE_RA_HIT = 0x10
TRACE_RA_MISS = 0x00

#: Whole-``recordType`` value marking a human-readable comment record.
TRACE_COMMENT = 0xFF

# --------------------------------------------------------------------------
# compression flags
# --------------------------------------------------------------------------

#: Offset value is expressed in 512-byte blocks (only if offset present).
TRACE_OFFSET_IN_BLOCKS = 0x01
#: Length value is expressed in 512-byte blocks (only if length present).
TRACE_LENGTH_IN_BLOCKS = 0x02
#: Unit for the *_IN_BLOCKS flags.
TRACE_BLOCK_SIZE = 512

#: Length omitted: take from the previous record of this file.
TRACE_NO_LENGTH = 0x04
#: Process id omitted: take from the previous record in the trace.
TRACE_NO_PROCESSID = 0x08
#: Operation id omitted: take from the previous record of this file.
TRACE_NO_OPERATIONID = 0x20
#: Offset/block omitted: sequential with the previous access to this file
#: (previous record's starting offset + length).
TRACE_NO_BLOCK = 0x40
#: File id omitted: take from the previous record by this process.
TRACE_NO_FILEID = 0x80

#: All compression bits that may legally be set.
TRACE_COMPRESSION_MASK = (
    TRACE_OFFSET_IN_BLOCKS
    | TRACE_LENGTH_IN_BLOCKS
    | TRACE_NO_LENGTH
    | TRACE_NO_PROCESSID
    | TRACE_NO_OPERATIONID
    | TRACE_NO_BLOCK
    | TRACE_NO_FILEID
)


class DataKind(IntEnum):
    """The data-kind bits of ``recordType`` as an enum."""

    FILE_DATA = TRACE_FILE_DATA
    META_DATA = TRACE_META_DATA
    READAHEAD = TRACE_READAHEAD
    VIRTUAL_MEM = TRACE_VIRTUAL_MEM


def make_record_type(
    *,
    write: bool = False,
    logical: bool = True,
    asynchronous: bool = False,
    kind: DataKind = DataKind.FILE_DATA,
    cache_miss: bool | None = None,
    readahead_hit: bool | None = None,
) -> int:
    """Compose a ``recordType`` byte from structured arguments.

    ``cache_miss`` and ``readahead_hit`` are the optional analysis-only
    annotations; pass ``None`` to leave their bits clear (the default,
    matching traces used purely for simulation).
    """
    value = int(kind)
    if logical:
        value |= TRACE_LOGICAL_RECORD
    if write:
        value |= TRACE_WRITE
    if asynchronous:
        value |= TRACE_ASYNC
    if cache_miss:
        value |= TRACE_CACHE_MISS
    if readahead_hit:
        value |= TRACE_RA_HIT
    return value


def is_comment(record_type: int) -> bool:
    """True if ``record_type`` marks a comment record."""
    return record_type == TRACE_COMMENT


def is_write(record_type: int) -> bool:
    return bool(record_type & TRACE_WRITE)


def is_logical(record_type: int) -> bool:
    return bool(record_type & TRACE_LOGICAL_RECORD)


def is_async(record_type: int) -> bool:
    return bool(record_type & TRACE_ASYNC)


def is_cache_miss(record_type: int) -> bool:
    return bool(record_type & TRACE_CACHE_MISS)


def is_readahead_hit(record_type: int) -> bool:
    return bool(record_type & TRACE_RA_HIT)


def data_kind(record_type: int) -> DataKind:
    return DataKind(record_type & TRACE_DATA_KIND_MASK)


def describe_record_type(record_type: int) -> str:
    """Human-readable summary of a ``recordType`` byte (for debugging)."""
    if is_comment(record_type):
        return "comment"
    parts = [
        "logical" if is_logical(record_type) else "physical",
        "write" if is_write(record_type) else "read",
        "async" if is_async(record_type) else "sync",
        data_kind(record_type).name.lower(),
    ]
    if is_cache_miss(record_type):
        parts.append("cache-miss")
    if is_readahead_hit(record_type):
        parts.append("ra-hit")
    return "|".join(parts)
