"""In-memory trace records.

A :class:`TraceRecord` is one I/O event with *absolute* semantics: the
start time is an absolute wall-clock tick, the completion time is a
duration, and the process time is the CPU-time delta since the process's
previous I/O started (exactly the value the trace format stores).  The
encoder (:mod:`repro.trace.encode`) turns sequences of these into the
paper's delta-compressed ASCII lines and the decoder reverses it.

Comment records (``recordType == 0xff``) are represented by
:class:`CommentRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Union

from repro.trace import flags as F


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One I/O event.

    Attributes mirror ``struct traceRecord`` in the paper's appendix, with
    times held absolutely where the on-disk format holds deltas:

    * ``start_time`` -- absolute wall-clock time of the I/O start, in
      10 us ticks.
    * ``duration`` -- ticks from I/O start until completion was reported
      to the process (the format's ``completionTime`` delta).
    * ``process_time`` -- process CPU ticks elapsed since this process's
      previous I/O started (the format stores this directly).
    * ``offset``/``length`` -- byte offset into the file and request
      length for logical records; 512-byte block address and block count
      times 512 for physical records (the decoder normalizes blocks to
      bytes).
    """

    record_type: int
    offset: int
    length: int
    start_time: int
    duration: int
    operation_id: int
    file_id: int
    process_id: int
    process_time: int

    def __post_init__(self) -> None:
        if self.record_type == F.TRACE_COMMENT:
            raise ValueError("use CommentRecord for comment records")
        if self.offset < 0:
            raise ValueError(f"negative offset {self.offset}")
        if self.length < 0:
            raise ValueError(f"negative length {self.length}")
        if self.duration < 0:
            raise ValueError(f"negative duration {self.duration}")
        if self.process_time < 0:
            raise ValueError(f"negative process_time {self.process_time}")

    # -- structured views of record_type ---------------------------------
    @property
    def is_write(self) -> bool:
        return F.is_write(self.record_type)

    @property
    def is_read(self) -> bool:
        return not F.is_write(self.record_type)

    @property
    def is_logical(self) -> bool:
        return F.is_logical(self.record_type)

    @property
    def is_async(self) -> bool:
        return F.is_async(self.record_type)

    @property
    def data_kind(self) -> F.DataKind:
        return F.data_kind(self.record_type)

    @property
    def end_offset(self) -> int:
        """First byte past this access (``offset + length``)."""
        return self.offset + self.length

    @property
    def completion_time(self) -> int:
        """Absolute wall-clock tick at which completion was reported."""
        return self.start_time + self.duration

    def replaced(self, **changes) -> "TraceRecord":
        """A copy with some fields replaced (frozen-dataclass helper)."""
        return replace(self, **changes)

    @classmethod
    def make(
        cls,
        *,
        write: bool,
        offset: int,
        length: int,
        start_time: int,
        duration: int = 0,
        operation_id: int = 0,
        file_id: int = 0,
        process_id: int = 0,
        process_time: int = 0,
        logical: bool = True,
        asynchronous: bool = False,
        kind: F.DataKind = F.DataKind.FILE_DATA,
    ) -> "TraceRecord":
        """Convenience constructor composing ``record_type`` from keywords."""
        return cls(
            record_type=F.make_record_type(
                write=write, logical=logical, asynchronous=asynchronous, kind=kind
            ),
            offset=offset,
            length=length,
            start_time=start_time,
            duration=duration,
            operation_id=operation_id,
            file_id=file_id,
            process_id=process_id,
            process_time=process_time,
        )


@dataclass(frozen=True, slots=True)
class CommentRecord:
    """A human-readable comment embedded in a trace.

    The paper used comment records to record the correspondence between
    file ids and file names and to identify each trace.  Comments carry no
    timing information and are ignored by simulations.
    """

    text: str

    @property
    def record_type(self) -> int:
        return F.TRACE_COMMENT


AnyRecord = Union[TraceRecord, CommentRecord]


def file_name_comment(file_id: int, name: str) -> CommentRecord:
    """The conventional comment mapping a file id to a path."""
    return CommentRecord(f"file {file_id} = {name}")


def parse_file_name_comment(comment: CommentRecord) -> tuple[int, str] | None:
    """Parse a ``file <id> = <name>`` comment; None if not of that form."""
    parts = comment.text.split(" = ", 1)
    if len(parts) != 2:
        return None
    head = parts[0].split()
    if len(head) != 2 or head[0] != "file":
        return None
    try:
        return int(head[1]), parts[1]
    except ValueError:
        return None
