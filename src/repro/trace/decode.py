"""Decoder for the ASCII trace format (inverse of :mod:`repro.trace.encode`).

The decoder maintains the same per-file / per-process reconstruction state
the appendix specifies and raises :class:`TraceFormatError` on any line
that references state which does not exist (e.g. an omitted file id before
the process has touched any file).

Two consumption styles share one field parser:

* :meth:`TraceDecoder.decode` yields a :class:`TraceRecord` per line --
  the right shape for streaming filters and the format round-trip tests;
* :meth:`TraceDecoder.decode_array` batch-decodes a whole line stream
  straight into :class:`~repro.trace.array.TraceArray` columns via
  :class:`~repro.trace.array.TraceArrayBuilder`, skipping the per-record
  object entirely (a multi-million-line trace load allocates nine lists
  instead of millions of dataclass instances).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.obs.registry import get_registry
from repro.trace import decode_fast as _fast
from repro.trace import flags as F
from repro.trace.array import TraceArray, TraceArrayBuilder
from repro.trace.record import AnyRecord, CommentRecord, TraceRecord
from repro.util.errors import TraceFormatError


@dataclass
class _FileState:
    next_offset: int
    length: int
    operation_id: int


class TraceDecoder:
    """Stateful line-to-record decoder.

    Lines must be fed in file order; the decoder is streaming and holds
    only the reconstruction context.
    """

    def __init__(self) -> None:
        self._prev_start: int = 0
        self._prev_process: int | None = None
        self._file_of_process: dict[int, int] = {}
        self._files: dict[int, _FileState] = {}
        self._line_number = 0

    def decode(self, line: str) -> AnyRecord | None:
        """Decode one line; returns None for blank lines."""
        self._line_number += 1
        stripped = line.strip()
        if not stripped:
            return None
        head, _, rest = stripped.partition(" ")
        try:
            record_type = int(head)
        except ValueError as exc:
            raise TraceFormatError(
                f"bad recordType field {head!r}", line_number=self._line_number
            ) from exc
        if record_type == F.TRACE_COMMENT:
            return CommentRecord(rest)
        return self._decode_io(record_type, rest)

    def decode_all(self, lines: Iterable[str]) -> Iterator[AnyRecord]:
        for line in lines:
            record = self.decode(line)
            if record is not None:
                yield record

    def decode_array(self, lines) -> TraceArray:
        """Batch-decode a whole trace directly into columnar form.

        Accepts an iterable of lines (list, generator, open text file)
        or a whole document as ``str``, ``bytes``, ``mmap``, or a
        binary file object -- byte inputs are consumed directly, with
        no intermediate per-line ``str`` round trip.  Comment records
        and blank lines are skipped; the format's per-process
        ``processTime`` deltas are integrated into absolute
        ``process_clock`` ticks exactly as
        :meth:`TraceArray.from_records` would.  Raises the same
        :class:`TraceFormatError` diagnostics (with line numbers) as the
        per-record path.

        Strictly-formatted input (the encoder's own output grammar) is
        decoded by the NumPy fast path in :mod:`repro.trace.decode_fast`
        when the decoder is fresh; anything else falls back wholesale to
        the scalar loop below, which is the behavioral contract.  The
        whole input is materialized either way.
        """
        buf, n_lines, fallback = _fast.prepare(lines)
        if buf is not None and self._is_fresh():
            decoded = _fast.decode_document(buf)
            if decoded is not None:
                trace, state = decoded
                self._line_number = n_lines
                if state is not None:
                    prev_start, prev_process, file_of_process, files = state
                    self._prev_start = prev_start
                    self._prev_process = prev_process
                    self._file_of_process = file_of_process
                    self._files = {
                        fid: _FileState(*fstate) for fid, fstate in files.items()
                    }
                get_registry().counter("trace.decode.vectorized_lines").add(
                    n_lines
                )
                return trace
        lines = fallback
        first_line = self._line_number
        builder = TraceArrayBuilder()
        append = builder.append
        clocks: dict[int, int] = {}
        for line in lines:
            self._line_number += 1
            stripped = line.strip()
            if not stripped:
                continue
            head, _, rest = stripped.partition(" ")
            try:
                record_type = int(head)
            except ValueError as exc:
                raise TraceFormatError(
                    f"bad recordType field {head!r}",
                    line_number=self._line_number,
                ) from exc
            if record_type == F.TRACE_COMMENT:
                continue
            fields = self._decode_fields(record_type, rest)
            process_id = fields[7]
            clock = clocks.get(process_id, 0) + fields[8]
            clocks[process_id] = clock
            append(
                record_type,
                fields[6],  # file_id
                process_id,
                fields[5],  # operation_id
                fields[0],  # offset
                fields[1],  # length
                fields[2],  # start_time
                fields[3],  # duration
                clock,
            )
        get_registry().counter("trace.decode.scalar_fallback_lines").add(
            self._line_number - first_line
        )
        return builder.build()

    def _is_fresh(self) -> bool:
        """True while no line has touched the reconstruction state."""
        return (
            self._line_number == 0
            and self._prev_start == 0
            and self._prev_process is None
            and not self._file_of_process
            and not self._files
        )

    def _fail(self, message: str) -> TraceFormatError:
        return TraceFormatError(message, line_number=self._line_number)

    def _decode_io(self, record_type: int, rest: str) -> TraceRecord:
        fields = self._decode_fields(record_type, rest)
        return TraceRecord(
            record_type=record_type,
            offset=fields[0],
            length=fields[1],
            start_time=fields[2],
            duration=fields[3],
            operation_id=fields[5],
            file_id=fields[6],
            process_id=fields[7],
            process_time=fields[8],
        )

    def _decode_fields(
        self, record_type: int, rest: str
    ) -> tuple[int, int, int, int, int, int, int, int, int]:
        """Parse one I/O line and update reconstruction state.

        Returns ``(offset, length, start_time, duration, record_type,
        operation_id, file_id, process_id, process_time)`` as plain ints
        -- the shared backend for both the record path and the batch
        array path.
        """
        if record_type > 0xFF or record_type < 0:
            raise self._fail(f"recordType {record_type} out of range")
        try:
            values = [int(tok) for tok in rest.split()]
        except ValueError as exc:
            raise self._fail(f"non-integer field in {rest!r}") from exc
        if not values:
            raise self._fail("record has no compression field")
        compression = values[0]
        if compression & ~F.TRACE_COMPRESSION_MASK:
            raise self._fail(f"unknown compression bits in {compression:#x}")
        it = iter(values[1:])

        def take(field_name: str) -> int:
            try:
                return next(it)
            except StopIteration:
                raise self._fail(f"record truncated before {field_name}") from None

        # -- fields in struct order --------------------------------------
        offset: int | None = None
        if not compression & F.TRACE_NO_BLOCK:
            offset = take("offset")
            if compression & F.TRACE_OFFSET_IN_BLOCKS:
                offset *= F.TRACE_BLOCK_SIZE
        elif compression & F.TRACE_OFFSET_IN_BLOCKS:
            raise self._fail("TRACE_OFFSET_IN_BLOCKS set on omitted offset")

        length: int | None = None
        if not compression & F.TRACE_NO_LENGTH:
            length = take("length")
            if compression & F.TRACE_LENGTH_IN_BLOCKS:
                length *= F.TRACE_BLOCK_SIZE
        elif compression & F.TRACE_LENGTH_IN_BLOCKS:
            raise self._fail("TRACE_LENGTH_IN_BLOCKS set on omitted length")

        start_delta = take("startTime")
        if start_delta < 0:
            raise self._fail(f"negative startTime delta {start_delta}")
        duration = take("completionTime")

        operation_id: int | None = None
        if not compression & F.TRACE_NO_OPERATIONID:
            operation_id = take("operationId")

        file_id: int | None = None
        if not compression & F.TRACE_NO_FILEID:
            file_id = take("fileId")

        process_id: int | None = None
        if not compression & F.TRACE_NO_PROCESSID:
            process_id = take("processId")

        process_time = take("processTime")
        extra = list(it)
        if extra:
            raise self._fail(f"{len(extra)} trailing field(s): {extra}")

        # -- reconstruct omitted fields -----------------------------------
        if process_id is None:
            if self._prev_process is None:
                raise self._fail("processId omitted on first record")
            process_id = self._prev_process

        if file_id is None:
            if process_id not in self._file_of_process:
                raise self._fail(
                    f"fileId omitted but process {process_id} has no prior record"
                )
            file_id = self._file_of_process[process_id]

        fstate = self._files.get(file_id)
        if offset is None:
            if fstate is None:
                raise self._fail(
                    f"offset omitted but file {file_id} has no prior record"
                )
            offset = fstate.next_offset
        if length is None:
            if fstate is None:
                raise self._fail(
                    f"length omitted but file {file_id} has no prior record"
                )
            length = fstate.length
        if operation_id is None:
            if fstate is None:
                raise self._fail(
                    f"operationId omitted but file {file_id} has no prior record"
                )
            operation_id = fstate.operation_id

        start_time = self._prev_start + start_delta

        # -- update state ---------------------------------------------------
        self._prev_start = start_time
        self._prev_process = process_id
        self._file_of_process[process_id] = file_id
        self._files[file_id] = _FileState(
            next_offset=offset + length,
            length=length,
            operation_id=operation_id,
        )
        return (
            offset,
            length,
            start_time,
            duration,
            record_type,
            operation_id,
            file_id,
            process_id,
            process_time,
        )


def decode_lines(lines: Iterable[str]) -> list[AnyRecord]:
    """One-shot helper: decode all lines and return the records."""
    return list(TraceDecoder().decode_all(lines))
