"""Trace size accounting: the appendix's compression claims.

Two claims are benchmarked:

* compression flags are highly effective on supercomputer traces because
  "file accesses were highly sequential, and a very large majority of the
  accesses went to only a small number of files";
* "Surprisingly, text traces were shorter than binary traces" -- the
  variable-length decimal rendering of small delta values beats fixed
  4-byte binary fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.trace.encode import EncoderStats, TraceEncoder
from repro.trace.record import AnyRecord, CommentRecord, TraceRecord

#: Size of one uncompressed binary record: the ``struct traceRecord`` of
#: the appendix holds 2 shorts, 5 ints and 2 longs plus processTime
#: (int) -- on the Cray's 64-bit words this is conservatively modelled as
#: ten 4-byte fields.
BINARY_RECORD_BYTES = 40

#: Size of an *uncompressed* ASCII record is whatever the digits take;
#: this constant is only used for the per-record binary comparison.


@dataclass
class TraceSizeReport:
    """Byte sizes of one trace under different encodings."""

    n_records: int
    ascii_compressed_bytes: int
    ascii_uncompressed_bytes: int
    binary_bytes: int
    encoder_stats: EncoderStats

    @property
    def compression_ratio(self) -> float:
        """Uncompressed-ASCII to compressed-ASCII size ratio (>1 is good)."""
        if self.ascii_compressed_bytes == 0:
            return 0.0
        return self.ascii_uncompressed_bytes / self.ascii_compressed_bytes

    @property
    def ascii_vs_binary_ratio(self) -> float:
        """Binary to compressed-ASCII size ratio (>1 means ASCII smaller)."""
        if self.ascii_compressed_bytes == 0:
            return 0.0
        return self.binary_bytes / self.ascii_compressed_bytes

    @property
    def bytes_per_record(self) -> float:
        if self.n_records == 0:
            return 0.0
        return self.ascii_compressed_bytes / self.n_records


def _uncompressed_line(r: TraceRecord, prev_start: int) -> str:
    """The record rendered with no omissions (times still deltas)."""
    return " ".join(
        str(v)
        for v in (
            r.record_type,
            0,
            r.offset,
            r.length,
            r.start_time - prev_start,
            r.duration,
            r.operation_id,
            r.file_id,
            r.process_id,
            r.process_time,
        )
    )


def measure_trace_sizes(
    records: Iterable[AnyRecord], *, omit_operation_ids: bool = True
) -> TraceSizeReport:
    """Encode a record stream three ways and report the sizes."""
    encoder = TraceEncoder(omit_operation_ids=omit_operation_ids)
    n = 0
    uncompressed = 0
    prev_start = 0
    for record in records:
        encoder.encode(record)
        if isinstance(record, CommentRecord):
            continue
        n += 1
        uncompressed += len(_uncompressed_line(record, prev_start)) + 1
        prev_start = record.start_time
    return TraceSizeReport(
        n_records=n,
        ascii_compressed_bytes=encoder.stats.bytes_written,
        ascii_uncompressed_bytes=uncompressed,
        binary_bytes=n * BINARY_RECORD_BYTES,
        encoder_stats=encoder.stats,
    )
