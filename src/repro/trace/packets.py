"""Trace packets: the `procstat` wire format.

On the Cray, the instrumented I/O libraries did not emit one trace record
per call -- "the trace record headers are large compared to the amount of
data recorded per call".  Instead, operations on each file were batched
into *packets*: one header (8 words) serving hundreds of per-I/O entries
(3-5 words each), sent to the ``procstat`` collector process.  Packets
were force-flushed every hundred thousand I/Os so that a quiet file's
events could not be delayed indefinitely.

This module defines the packet objects and their text serialization; the
collector lives in :mod:`repro.trace.procstat` and the stream
reconstruction in :mod:`repro.trace.reconstruct`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.util.errors import TraceFormatError

#: Packet header size, in 8-byte Cray words ("an 8 word header").
PACKET_HEADER_WORDS = 8

#: Per-I/O entry size in words ("between three and five words").
ENTRY_WORDS = 4


@dataclass(frozen=True, slots=True)
class IOEvent:
    """One raw I/O event as seen by the library tracing hook.

    Unlike :class:`~repro.trace.record.TraceRecord`, times here are all
    absolute: the hook reads the wall-clock and process-clock registers
    directly; deltas are computed later when the standard trace is
    written.
    """

    record_type: int
    file_id: int
    process_id: int
    operation_id: int
    offset: int
    length: int
    start_time: int
    duration: int
    process_clock: int


@dataclass
class TracePacket:
    """A batch of events for one (process, file) pair.

    ``sequence`` is the collector-assigned emission order and
    ``flush_epoch`` counts how many global force-flushes preceded this
    packet; reconstruction sorts within epochs (events of epoch *k* are
    guaranteed to all be emitted in packets of epoch <= *k*).
    """

    sequence: int
    flush_epoch: int
    process_id: int
    file_id: int
    events: list[IOEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def size_words(self) -> int:
        """Size of the packet in Cray words, header included."""
        return PACKET_HEADER_WORDS + ENTRY_WORDS * len(self.events)


def packet_overhead_ratio(packets: Iterable[TracePacket]) -> float:
    """Fraction of packet bytes spent on headers.

    With batching this should be small; with one record per packet it
    would be ``8 / (8 + 4) = 0.67`` -- the "far too much data" case the
    paper avoided.
    """
    header_words = 0
    total_words = 0
    for p in packets:
        header_words += PACKET_HEADER_WORDS
        total_words += p.size_words
    return header_words / total_words if total_words else 0.0


# ---------------------------------------------------------------------------
# Text serialization of packet logs
# ---------------------------------------------------------------------------

_PACKET_TAG = "P"
_EVENT_TAG = "E"


def dump_packets(path: str | Path, packets: Iterable[TracePacket]) -> None:
    """Write a packet log file (one packet header line, then event lines)."""
    with open(path, "w", encoding="ascii") as fh:
        for p in packets:
            fh.write(
                f"{_PACKET_TAG} {p.sequence} {p.flush_epoch} "
                f"{p.process_id} {p.file_id} {len(p.events)}\n"
            )
            for e in p.events:
                fh.write(
                    f"{_EVENT_TAG} {e.record_type} {e.operation_id} "
                    f"{e.offset} {e.length} {e.start_time} {e.duration} "
                    f"{e.process_clock}\n"
                )


def load_packets(path: str | Path) -> Iterator[TracePacket]:
    """Stream packets back from a packet log file."""
    with open(path, "r", encoding="ascii") as fh:
        current: TracePacket | None = None
        remaining = 0
        for line_number, line in enumerate(fh, start=1):
            parts = line.split()
            if not parts:
                continue
            tag = parts[0]
            if tag == _PACKET_TAG:
                if remaining:
                    raise TraceFormatError(
                        f"packet truncated: {remaining} events missing",
                        line_number=line_number,
                    )
                if current is not None:
                    yield current
                seq, epoch, pid, fid, count = (int(x) for x in parts[1:6])
                current = TracePacket(seq, epoch, pid, fid)
                remaining = count
            elif tag == _EVENT_TAG:
                if current is None or remaining == 0:
                    raise TraceFormatError(
                        "event line outside a packet", line_number=line_number
                    )
                rt, opid, off, length, start, dur, pclock = (
                    int(x) for x in parts[1:8]
                )
                current.events.append(
                    IOEvent(
                        record_type=rt,
                        file_id=current.file_id,
                        process_id=current.process_id,
                        operation_id=opid,
                        offset=off,
                        length=length,
                        start_time=start,
                        duration=dur,
                        process_clock=pclock,
                    )
                )
                remaining -= 1
            else:
                raise TraceFormatError(
                    f"unknown packet-log tag {tag!r}", line_number=line_number
                )
        if remaining:
            raise TraceFormatError(f"packet truncated: {remaining} events missing")
        if current is not None:
            yield current
