"""Columnar trace representation for multi-million-record traces.

The bvi trace alone holds ~1.9 million I/Os; a Python object per record
would be prohibitively slow for analysis.  :class:`TraceArray` keeps one
NumPy array per field (struct-of-arrays) and is the canonical bulk form
flowing between the workload generators, the analysis package and the
buffering simulator.  Conversion to/from :class:`~repro.trace.record.TraceRecord`
sequences bridges to the ASCII format layer.

Times here are *absolute*: ``start_time`` is the absolute wall-clock tick
of each I/O and ``process_clock`` is the absolute process-CPU tick at the
I/O start.  Per-process deltas (what the trace format stores) are derived
on demand.

This module is also the canonical *decode target*: producers that
materialize traces row by row (the ASCII batch decoder, the packet-log
reconstruction) append scalars to a :class:`TraceArrayBuilder` and
convert to columns once, instead of building a Python object per record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.trace import flags as F
from repro.trace.record import TraceRecord
from repro.util.units import ticks_to_seconds

_FIELDS = (
    ("record_type", np.uint16),
    ("file_id", np.uint32),
    ("process_id", np.uint32),
    ("operation_id", np.uint64),
    ("offset", np.int64),
    ("length", np.int64),
    ("start_time", np.int64),
    ("duration", np.int64),
    ("process_clock", np.int64),
)


class TraceArrayBuilder:
    """Append-only columnar sink for streaming decoders.

    Rows are appended as plain Python scalars (no intermediate record
    objects) and converted to NumPy columns exactly once in
    :meth:`build`.  ``process_clock`` must already be the *absolute*
    per-process CPU tick -- integrating the format's ``processTime``
    deltas is the producer's job, since only it knows which rows belong
    to which stream.
    """

    __slots__ = tuple(name for name, _ in _FIELDS)

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, [])

    def __len__(self) -> int:
        return len(self.record_type)

    def append(
        self,
        record_type: int,
        file_id: int,
        process_id: int,
        operation_id: int,
        offset: int,
        length: int,
        start_time: int,
        duration: int,
        process_clock: int,
    ) -> None:
        self.record_type.append(record_type)
        self.file_id.append(file_id)
        self.process_id.append(process_id)
        self.operation_id.append(operation_id)
        self.offset.append(offset)
        self.length.append(length)
        self.start_time.append(start_time)
        self.duration.append(duration)
        self.process_clock.append(process_clock)

    def build(self) -> "TraceArray":
        return TraceArray(
            *(
                np.asarray(getattr(self, name), dtype=dtype)
                for name, dtype in _FIELDS
            )
        )


@dataclass
class TraceArray:
    """A trace as parallel NumPy columns (one row per I/O record)."""

    record_type: np.ndarray
    file_id: np.ndarray
    process_id: np.ndarray
    operation_id: np.ndarray
    offset: np.ndarray
    length: np.ndarray
    start_time: np.ndarray
    duration: np.ndarray
    process_clock: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.record_type)
        for name, dtype in _FIELDS:
            col = np.asarray(getattr(self, name))
            if col.shape != (n,):
                raise ValueError(
                    f"column {name!r} has shape {col.shape}, expected ({n},)"
                )
            setattr(self, name, col.astype(dtype, copy=False))

    # -- construction -----------------------------------------------------
    @classmethod
    def empty(cls) -> "TraceArray":
        return cls(*(np.zeros(0, dtype=dtype) for _, dtype in _FIELDS))

    @classmethod
    def from_columns(cls, **columns: Sequence[int]) -> "TraceArray":
        """Build from keyword columns; missing columns default to zeros."""
        known = {name for name, _ in _FIELDS}
        unknown = set(columns) - known
        if unknown:
            raise TypeError(f"unknown columns: {sorted(unknown)}")
        lengths = {len(np.asarray(v)) for v in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"column lengths differ: {sorted(lengths)}")
        n = lengths.pop() if lengths else 0
        cols = []
        for name, dtype in _FIELDS:
            if name in columns:
                cols.append(np.asarray(columns[name], dtype=dtype))
            else:
                cols.append(np.zeros(n, dtype=dtype))
        return cls(*cols)

    @classmethod
    def from_records(cls, records: Iterable[TraceRecord]) -> "TraceArray":
        """Build from row records.

        The per-process ``process_time`` deltas in the records are
        integrated into absolute ``process_clock`` values.
        """
        rows = list(records)
        n = len(rows)
        arr = cls(*(np.zeros(n, dtype=dtype) for _, dtype in _FIELDS))
        clocks: dict[int, int] = {}
        for i, r in enumerate(rows):
            arr.record_type[i] = r.record_type
            arr.file_id[i] = r.file_id
            arr.process_id[i] = r.process_id
            arr.operation_id[i] = r.operation_id
            arr.offset[i] = r.offset
            arr.length[i] = r.length
            arr.start_time[i] = r.start_time
            arr.duration[i] = r.duration
            clock = clocks.get(r.process_id, 0) + r.process_time
            clocks[r.process_id] = clock
            arr.process_clock[i] = clock
        return arr

    # -- basics -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.record_type)

    def __getitem__(self, index) -> "TraceArray":
        """Row subset (mask, slice or fancy index) as a new TraceArray."""
        return TraceArray(
            *(np.atleast_1d(getattr(self, name)[index]) for name, _ in _FIELDS)
        )

    def columns(self) -> dict[str, np.ndarray]:
        return {name: getattr(self, name) for name, _ in _FIELDS}

    @classmethod
    def concatenate(cls, parts: Sequence["TraceArray"]) -> "TraceArray":
        """Row-wise concatenation (no re-sorting)."""
        if not parts:
            return cls.empty()
        return cls(
            *(
                np.concatenate([getattr(p, name) for p in parts])
                for name, _ in _FIELDS
            )
        )

    def sorted_by_start(self) -> "TraceArray":
        """Rows sorted by wall-clock start time (stable)."""
        order = np.argsort(self.start_time, kind="stable")
        return self[order]

    # -- boolean views ------------------------------------------------------
    @property
    def is_write(self) -> np.ndarray:
        return (self.record_type & F.TRACE_WRITE) != 0

    @property
    def is_read(self) -> np.ndarray:
        return ~self.is_write

    @property
    def is_async(self) -> np.ndarray:
        return (self.record_type & F.TRACE_ASYNC) != 0

    @property
    def is_logical(self) -> np.ndarray:
        return (self.record_type & F.TRACE_LOGICAL_RECORD) != 0

    def reads(self) -> "TraceArray":
        return self[self.is_read]

    def writes(self) -> "TraceArray":
        return self[self.is_write]

    def for_file(self, file_id: int) -> "TraceArray":
        return self[self.file_id == file_id]

    def for_process(self, process_id: int) -> "TraceArray":
        return self[self.process_id == process_id]

    # -- aggregate quantities ----------------------------------------------
    @property
    def total_bytes(self) -> int:
        return int(self.length.sum())

    @property
    def read_bytes(self) -> int:
        return int(self.length[self.is_read].sum())

    @property
    def write_bytes(self) -> int:
        return int(self.length[self.is_write].sum())

    def file_ids(self) -> np.ndarray:
        return np.unique(self.file_id)

    def process_ids(self) -> np.ndarray:
        return np.unique(self.process_id)

    def cpu_seconds(self) -> float:
        """Total process CPU time covered, summed over processes."""
        total = 0
        for pid in self.process_ids():
            clock = self.process_clock[self.process_id == pid]
            if clock.size:
                total += int(clock.max())
        return ticks_to_seconds(total)

    def wall_seconds(self) -> float:
        """Wall-clock span from first start to last completion."""
        if len(self) == 0:
            return 0.0
        end = int((self.start_time + self.duration).max())
        return ticks_to_seconds(end - int(self.start_time.min()))

    def sequential_runs(self) -> np.ndarray:
        """Start indices of maximal sequential same-size spans (row order).

        A record extends the current run when it hits the same file,
        starts exactly where the previous record ended, keeps the same
        request size and the same transfer direction -- the paper's
        sequential-access pattern ("the file is accessed sequentially
        [...] with constant-sized requests").  Returns an int64 array of
        run start indices; the first element is 0 for nonempty traces
        and ``np.diff(starts, append=len(self))`` gives run lengths.
        Runs are detected over adjacent rows, so interleaving processes
        in a merged trace breaks spans exactly as it would on the real
        device queue.
        """
        n = len(self)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        writes = (self.record_type & F.TRACE_WRITE) != 0
        extends = (
            (self.file_id[1:] == self.file_id[:-1])
            & (self.offset[1:] == self.offset[:-1] + self.length[:-1])
            & (self.length[1:] == self.length[:-1])
            & (writes[1:] == writes[:-1])
        )
        return np.concatenate(
            (np.zeros(1, dtype=np.int64), np.flatnonzero(~extends) + 1)
        )

    def stream_run_ends(self) -> np.ndarray:
        """Per-record exclusive byte end of its per-*file* sequential run.

        Unlike :meth:`sequential_runs`, which breaks a run whenever any
        other row interleaves, runs here are tracked per file: a record
        extends its file's run when it starts exactly where the file's
        previous record ended, with the same request size and transfer
        direction.  This is the stream structure the prefetcher (and the
        batch kernel's run-level fast path) actually sees -- a process
        round-robining constant-sized reads over several files is one
        long run *per file*, even though adjacent rows alternate files.

        Returns an int64 array where ``ends[i]`` is the byte offset just
        past the last record of the run containing record ``i``.  A
        record that extends no run (a seek, a size change, a direction
        flip) is a run of its own, so ``ends[i] >= offset[i] +
        length[i]`` always holds.
        """
        n = len(self)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        # Stable sort groups rows by file while preserving row (time)
        # order within each file, so "previous record of this file" is
        # simply the previous row of the sorted view.
        order = np.argsort(self.file_id, kind="stable")
        fid = self.file_id[order]
        off = self.offset[order]
        ln = self.length[order]
        wr = self.is_write[order]
        extends = (
            (fid[1:] == fid[:-1])
            & (off[1:] == off[:-1] + ln[:-1])
            & (ln[1:] == ln[:-1])
            & (wr[1:] == wr[:-1])
        )
        starts = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.flatnonzero(~extends) + 1)
        )
        lasts = np.concatenate((starts[1:] - 1, [n - 1]))
        run_end = off[lasts] + ln[lasts]
        rid = np.zeros(n, dtype=np.int64)
        rid[starts[1:]] = 1
        rid = np.cumsum(rid)
        ends = np.empty(n, dtype=np.int64)
        ends[order] = run_end[rid]
        return ends

    def replay_columns(
        self,
    ) -> tuple[list[int], list[int], list[int], list[bool], list[bool]]:
        """``(file_ids, offsets, lengths, is_write, is_async)`` as lists.

        The simulator's replay loop touches one scalar per column per
        record; indexing the NumPy columns there would box a fresh
        scalar object each access -- and the ``is_write``/``is_async``
        *properties* would recompute a full-trace boolean array per
        record, an accidental O(n^2).  Decoding each column to a plain
        Python list once keeps the per-record cost at five list reads.
        """
        return (
            self.file_id.tolist(),
            self.offset.tolist(),
            self.length.tolist(),
            self.is_write.tolist(),
            self.is_async.tolist(),
        )

    def process_time_deltas(self) -> np.ndarray:
        """Per-record CPU-time delta since the same process's previous I/O.

        This is exactly the ``processTime`` field the trace format stores.
        Rows must be in a consistent order (per-process nondecreasing
        ``process_clock``); the first record of each process gets its full
        clock value.
        """
        deltas = np.zeros(len(self), dtype=np.int64)
        for pid in self.process_ids():
            mask = self.process_id == pid
            clock = self.process_clock[mask]
            d = np.diff(clock, prepend=0)
            if np.any(d < 0):
                raise ValueError(
                    f"process {pid} clock is not nondecreasing in row order"
                )
            deltas[mask] = d
        return deltas

    # -- conversion ---------------------------------------------------------
    def to_records(self) -> Iterator[TraceRecord]:
        """Iterate rows as :class:`TraceRecord` (process_time as deltas)."""
        deltas = self.process_time_deltas()
        for i in range(len(self)):
            yield TraceRecord(
                record_type=int(self.record_type[i]),
                offset=int(self.offset[i]),
                length=int(self.length[i]),
                start_time=int(self.start_time[i]),
                duration=int(self.duration[i]),
                operation_id=int(self.operation_id[i]),
                file_id=int(self.file_id[i]),
                process_id=int(self.process_id[i]),
                process_time=int(deltas[i]),
            )

    def with_process_id(self, process_id: int) -> "TraceArray":
        """A copy with every record's process id replaced."""
        cols = self.columns().copy()
        cols["process_id"] = np.full(len(self), process_id, dtype=np.uint32)
        return TraceArray(**cols)

    def shifted(self, ticks: int) -> "TraceArray":
        """A copy with all wall-clock start times shifted by ``ticks``."""
        cols = self.columns().copy()
        cols["start_time"] = self.start_time + ticks
        return TraceArray(**cols)
