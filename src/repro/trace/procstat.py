"""The ``procstat`` collector.

On the traced Cray, every instrumented library call sent its event to a
user-level collector process named ``procstat``, which batched events into
per-(process, file) packets and wrote them to a trace file.  This class
reproduces that collector's batching policy:

* events for the same (process, file) pair accumulate in one open packet;
* a packet is emitted when it reaches ``max_events_per_packet`` ("one
  header served for hundreds of I/O calls");
* **all** open packets are force-flushed every ``flush_interval`` events
  ("trace packets were forced out every hundred thousand I/Os"), which
  bounds how stale a quiet file's events can become;
* closing the collector flushes everything.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.registry import get_registry
from repro.trace.packets import IOEvent, TracePacket


class ProcstatCollector:
    """Batches :class:`IOEvent` objects into :class:`TracePacket` objects.

    ``sink`` is called with each emitted packet (e.g. ``packets.append``
    or a file writer).  The collector is deliberately order-preserving
    *per packet* but not globally: reconstruction must sort, exactly as
    the paper describes.
    """

    def __init__(
        self,
        sink: Callable[[TracePacket], None],
        *,
        max_events_per_packet: int = 512,
        flush_interval: int = 100_000,
        obs=None,
    ):
        if max_events_per_packet < 1:
            raise ValueError("max_events_per_packet must be >= 1")
        if flush_interval < 1:
            raise ValueError("flush_interval must be >= 1")
        reg = obs if obs is not None else get_registry()
        self._c_events = reg.counter("trace.procstat.events")
        self._c_packets = reg.counter("trace.procstat.packets")
        self._c_flushes = reg.counter("trace.procstat.flushes")
        self._g_open = reg.gauge("trace.procstat.open_packets")
        self._sink = sink
        self.max_events_per_packet = max_events_per_packet
        self.flush_interval = flush_interval
        self._open: dict[tuple[int, int], TracePacket] = {}
        self._sequence = 0
        self._epoch = 0
        self._events_since_flush = 0
        self.total_events = 0
        self.packets_emitted = 0
        self._closed = False

    def submit(self, event: IOEvent) -> None:
        """Record one event; may emit one or more packets as a side effect."""
        if self._closed:
            raise RuntimeError("collector is closed")
        key = (event.process_id, event.file_id)
        packet = self._open.get(key)
        if packet is None:
            packet = TracePacket(
                sequence=-1,  # assigned at emission
                flush_epoch=self._epoch,
                process_id=event.process_id,
                file_id=event.file_id,
            )
            self._open[key] = packet
        packet.events.append(event)
        self.total_events += 1
        self._events_since_flush += 1
        self._c_events.inc()
        self._g_open.set_max(len(self._open))

        if len(packet.events) >= self.max_events_per_packet:
            self._emit(key)
        if self._events_since_flush >= self.flush_interval:
            self.flush()

    def flush(self) -> None:
        """Force out every open packet and start a new flush epoch."""
        for key in list(self._open):
            self._emit(key)
        self._events_since_flush = 0
        self._epoch += 1
        self._c_flushes.inc()

    def close(self) -> None:
        """Flush remaining packets; further submits are rejected."""
        if not self._closed:
            self.flush()
            self._closed = True

    def _emit(self, key: tuple[int, int]) -> None:
        packet = self._open.pop(key)
        if not packet.events:
            return
        packet.sequence = self._sequence
        self._sequence += 1
        self.packets_emitted += 1
        self._c_packets.inc()
        self._sink(packet)

    def __enter__(self) -> "ProcstatCollector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def collect_to_list(
    events,
    *,
    max_events_per_packet: int = 512,
    flush_interval: int = 100_000,
) -> list[TracePacket]:
    """Run a stream of events through a collector; return emitted packets."""
    packets: list[TracePacket] = []
    with ProcstatCollector(
        packets.append,
        max_events_per_packet=max_events_per_packet,
        flush_interval=flush_interval,
    ) as collector:
        for event in events:
            collector.submit(event)
    return packets
