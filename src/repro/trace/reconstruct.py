"""Reconstruct a single time-ordered I/O stream from a packet log.

"Reconstructing a single stream of all the accesses from the file of
packets requires buffering all the I/Os between flushes, since a packet
written during the flush might contain an I/O access from much earlier in
the program's execution."

The collector stamps each packet with its *flush epoch*.  Events within
one epoch may arrive in any packet order, and an event may surface in a
*later* epoch than the one its neighbours landed in (a long-running I/O
submitted at completion), but the log contract is the paper's bounded
buffering requirement: **an event can never start earlier than the
earliest start of any epoch that was completely flushed before it was
submitted**.  Under that contract, sorting epoch-by-epoch with a
carry-over buffer reproduces the full global sort exactly while holding
only the events that can still be preceded -- typically one flush
interval's worth, growing (and shrinking again) only when stragglers
actually reach back further.  A log that violates the contract is
detected and rejected rather than silently emitted out of order.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.obs.registry import get_registry
from repro.trace.array import TraceArray, TraceArrayBuilder
from repro.trace.packets import IOEvent, TracePacket
from repro.trace.record import TraceRecord


def _sort_key(e: IOEvent) -> tuple[int, int]:
    return (e.start_time, e.operation_id)


def global_sort_events(packets: Iterable[TracePacket]) -> list[IOEvent]:
    """Reference implementation: buffer *everything*, one stable sort.

    Unbounded memory, trivially correct.  The streaming merge in
    :func:`iter_events_in_time_order` is tested byte-identical against
    this.
    """
    events = [e for p in packets for e in p.events]
    events.sort(key=_sort_key)
    return events


def iter_events_in_time_order(packets: Iterable[TracePacket]) -> Iterator[IOEvent]:
    """Yield all events of a packet log ordered by absolute start time.

    Epoch-by-epoch merge with carry-over: when an epoch is fully read,
    every buffered event that starts strictly before the earliest start
    in that epoch can no longer be preceded and is emitted; events at or
    past that watermark (boundary ties, stragglers) are carried over --
    across as many epochs as it takes.  Ties on start time are broken by
    operation id, and equal keys keep packet-log encounter order, so the
    output is byte-identical to :func:`global_sort_events`.

    Raises ``ValueError`` if the packets are not in emission order or if
    an event arrives so late that emitted output would be out of order
    (a violation of the collector's bounded-buffering contract).
    """
    reg = get_registry()
    g_carry = reg.gauge("trace.reconstruct.carryover_peak")
    c_epochs = reg.counter("trace.reconstruct.epochs_merged")
    c_carried = reg.counter("trace.reconstruct.events_carried_over")

    pending: list[IOEvent] = []  # completed epochs, encounter order
    epoch_events: list[IOEvent] = []  # the epoch currently being read
    current_epoch: int | None = None
    last_key: tuple[int, int] | None = None

    for packet in packets:
        if current_epoch is None:
            current_epoch = packet.flush_epoch
        elif packet.flush_epoch < current_epoch:
            raise ValueError("packet log is not in emission order")
        elif packet.flush_epoch > current_epoch:
            # Epoch boundary: `current_epoch` is fully read.  Its
            # earliest start is the watermark below which nothing can
            # arrive any more.
            c_epochs.inc()
            if epoch_events:
                boundary = min(e.start_time for e in epoch_events)
                ready = sorted(
                    (e for e in pending if e.start_time < boundary),
                    key=_sort_key,
                )
                if ready:
                    if last_key is not None and _sort_key(ready[0]) < last_key:
                        raise ValueError(
                            "packet log violates the bounded-buffering "
                            f"contract: event {ready[0].operation_id} at "
                            f"t={ready[0].start_time} surfaced after later "
                            "events were already final"
                        )
                    pending = [e for e in pending if e.start_time >= boundary]
                    last_key = _sort_key(ready[-1])
                    yield from ready
                c_carried.inc(len(pending))
                pending.extend(epoch_events)
                epoch_events = []
            current_epoch = packet.flush_epoch
        epoch_events.extend(packet.events)
        g_carry.set_max(len(pending) + len(epoch_events))

    pending.extend(epoch_events)
    pending.sort(key=_sort_key)
    if pending and last_key is not None and _sort_key(pending[0]) < last_key:
        raise ValueError(
            "packet log violates the bounded-buffering contract: final "
            "epoch reaches back before already-emitted events"
        )
    yield from pending


def events_to_records(events: Iterable[IOEvent]) -> Iterator[TraceRecord]:
    """Convert absolute-clock events into trace records (delta clocks).

    Events must already be in global time order; the per-process CPU-clock
    deltas (the format's ``processTime``) are computed here.
    """
    last_clock: dict[int, int] = {}
    for e in events:
        prev = last_clock.get(e.process_id, 0)
        delta = e.process_clock - prev
        if delta < 0:
            raise ValueError(
                f"process {e.process_id} CPU clock went backwards "
                f"({prev} -> {e.process_clock})"
            )
        last_clock[e.process_id] = e.process_clock
        yield TraceRecord(
            record_type=e.record_type,
            offset=e.offset,
            length=e.length,
            start_time=e.start_time,
            duration=e.duration,
            operation_id=e.operation_id,
            file_id=e.file_id,
            process_id=e.process_id,
            process_time=delta,
        )


def reconstruct_records(packets: Iterable[TracePacket]) -> list[TraceRecord]:
    """Packet log -> time-ordered list of trace records."""
    return list(events_to_records(iter_events_in_time_order(packets)))


def reconstruct_array(packets: Iterable[TracePacket]) -> TraceArray:
    """Packet log -> columnar trace.

    Streams the time-ordered events straight into a
    :class:`TraceArrayBuilder` (events carry absolute process clocks, so
    no delta integration is needed here).
    """
    builder = TraceArrayBuilder()
    append = builder.append
    for e in iter_events_in_time_order(packets):
        append(
            e.record_type,
            e.file_id,
            e.process_id,
            e.operation_id,
            e.offset,
            e.length,
            e.start_time,
            e.duration,
            e.process_clock,
        )
    return builder.build()
