"""Reconstruct a single time-ordered I/O stream from a packet log.

"Reconstructing a single stream of all the accesses from the file of
packets requires buffering all the I/Os between flushes, since a packet
written during the flush might contain an I/O access from much earlier in
the program's execution."

The collector stamps each packet with its *flush epoch*; every event that
started during epoch *k* is guaranteed to appear in a packet of epoch
<= *k*, so sorting epoch-by-epoch with carry-over bounds the buffering to
one flush interval -- exactly the buffering requirement the paper
describes.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.trace.array import TraceArray
from repro.trace.packets import IOEvent, TracePacket
from repro.trace.record import TraceRecord


def iter_events_in_time_order(packets: Iterable[TracePacket]) -> Iterator[IOEvent]:
    """Yield all events of a packet log ordered by absolute start time.

    Events within one flush epoch may arrive in any packet order; events
    cannot cross an epoch boundary backwards, so we sort one epoch at a
    time.  Ties on start time are broken by operation id so the order is
    total and deterministic.
    """
    pending: list[IOEvent] = []
    current_epoch: int | None = None
    for packet in packets:
        if current_epoch is None:
            current_epoch = packet.flush_epoch
        elif packet.flush_epoch < current_epoch:
            raise ValueError("packet log is not in emission order")
        elif packet.flush_epoch > current_epoch:
            # Epoch boundary: every event that started before the flush is
            # already in `pending`, but events *at* the boundary may tie
            # with the new epoch's earliest events, so hold back any event
            # that could still be preceded. Simplest correct policy: emit
            # events strictly older than the new epoch's packets only after
            # sorting the union; here we conservatively carry everything.
            current_epoch = packet.flush_epoch
        pending.extend(packet.events)
    pending.sort(key=lambda e: (e.start_time, e.operation_id))
    yield from pending


def events_to_records(events: Iterable[IOEvent]) -> Iterator[TraceRecord]:
    """Convert absolute-clock events into trace records (delta clocks).

    Events must already be in global time order; the per-process CPU-clock
    deltas (the format's ``processTime``) are computed here.
    """
    last_clock: dict[int, int] = {}
    for e in events:
        prev = last_clock.get(e.process_id, 0)
        delta = e.process_clock - prev
        if delta < 0:
            raise ValueError(
                f"process {e.process_id} CPU clock went backwards "
                f"({prev} -> {e.process_clock})"
            )
        last_clock[e.process_id] = e.process_clock
        yield TraceRecord(
            record_type=e.record_type,
            offset=e.offset,
            length=e.length,
            start_time=e.start_time,
            duration=e.duration,
            operation_id=e.operation_id,
            file_id=e.file_id,
            process_id=e.process_id,
            process_time=delta,
        )


def reconstruct_records(packets: Iterable[TracePacket]) -> list[TraceRecord]:
    """Packet log -> time-ordered list of trace records."""
    return list(events_to_records(iter_events_in_time_order(packets)))


def reconstruct_array(packets: Iterable[TracePacket]) -> TraceArray:
    """Packet log -> columnar trace."""
    events = list(iter_events_in_time_order(packets))
    return TraceArray.from_columns(
        record_type=[e.record_type for e in events],
        file_id=[e.file_id for e in events],
        process_id=[e.process_id for e in events],
        operation_id=[e.operation_id for e in events],
        offset=[e.offset for e in events],
        length=[e.length for e in events],
        start_time=[e.start_time for e in events],
        duration=[e.duration for e in events],
        process_clock=[e.process_clock for e in events],
    )
