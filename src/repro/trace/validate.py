"""Structural validation of decoded trace streams.

These checks codify the format's implicit invariants; the workload
generators run them before handing traces to the simulator, and the tests
use them as a property-test oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.trace.array import TraceArray
from repro.trace.record import TraceRecord
from repro.util.errors import TraceFormatError


@dataclass
class ValidationReport:
    """Outcome of a validation pass."""

    n_records: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def raise_if_failed(self) -> None:
        if self.problems:
            shown = "; ".join(self.problems[:5])
            more = f" (+{len(self.problems) - 5} more)" if len(self.problems) > 5 else ""
            raise TraceFormatError(f"trace validation failed: {shown}{more}")


def validate_records(records: Iterable[TraceRecord]) -> ValidationReport:
    """Check ordering and range invariants over a record stream.

    Invariants:

    * wall-clock start times are nondecreasing;
    * per-process CPU clocks (cumulative ``process_time``) never decrease
      and never run ahead of wall time elapsed since the process's first
      record (a process cannot accumulate more CPU than wall time on one
      CPU);
    * lengths are positive, offsets nonnegative, durations nonnegative.
    """
    report = ValidationReport()
    prev_start: int | None = None
    first_wall: dict[int, int] = {}
    cpu_clock: dict[int, int] = {}
    # CPU burned before a process's first traced I/O has no wall-time
    # counterpart inside the trace, so each process is allowed that much
    # slack between its CPU clock and elapsed wall clock.
    slack: dict[int, int] = {}
    for i, r in enumerate(records):
        report.n_records += 1
        if r.length <= 0:
            report.problems.append(f"record {i}: non-positive length {r.length}")
        if r.offset < 0:
            report.problems.append(f"record {i}: negative offset {r.offset}")
        if r.duration < 0:
            report.problems.append(f"record {i}: negative duration {r.duration}")
        if prev_start is not None and r.start_time < prev_start:
            report.problems.append(
                f"record {i}: start time {r.start_time} precedes previous {prev_start}"
            )
        prev_start = r.start_time

        if r.process_id not in first_wall:
            first_wall[r.process_id] = r.start_time
            slack[r.process_id] = r.process_time
        clock = cpu_clock.get(r.process_id, 0) + r.process_time
        cpu_clock[r.process_id] = clock
        wall_elapsed = r.start_time - first_wall[r.process_id]
        if clock > wall_elapsed + slack[r.process_id]:
            report.problems.append(
                f"record {i}: process {r.process_id} CPU clock {clock} exceeds "
                f"wall time elapsed {wall_elapsed}"
            )
    return report


def validate_array(trace: TraceArray) -> ValidationReport:
    """Vectorized validation of a columnar trace (same invariants)."""
    import numpy as np

    report = ValidationReport(n_records=len(trace))
    if len(trace) == 0:
        return report
    if np.any(trace.length <= 0):
        n = int((trace.length <= 0).sum())
        report.problems.append(f"{n} record(s) with non-positive length")
    if np.any(trace.offset < 0):
        report.problems.append("negative offsets present")
    if np.any(trace.duration < 0):
        report.problems.append("negative durations present")
    if np.any(np.diff(trace.start_time) < 0):
        report.problems.append("start times are not nondecreasing")
    for pid in trace.process_ids():
        mask = trace.process_id == pid
        clock = trace.process_clock[mask]
        if np.any(np.diff(clock) < 0):
            report.problems.append(f"process {pid}: CPU clock decreases")
            continue
        wall = trace.start_time[mask]
        elapsed = wall - wall[0]
        # clock[0] is the CPU burned before the first traced I/O (the
        # allowed slack), so compare growth beyond it against wall time.
        overrun = clock - clock[0] > elapsed
        if np.any(overrun):
            report.problems.append(
                f"process {pid}: CPU clock runs ahead of wall clock at "
                f"{int(overrun.sum())} record(s)"
            )
    return report
