"""Trace file reading and writing.

Traces are plain ASCII text, one record per line, as produced by
:class:`~repro.trace.encode.TraceEncoder`.  The writer prepends an
identifying comment record (the paper notes comments were used "to
identify each trace with information in the trace itself").
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.trace.array import TraceArray
from repro.trace.decode import TraceDecoder
from repro.trace.encode import EncoderStats, TraceEncoder
from repro.trace.record import AnyRecord, CommentRecord, TraceRecord


def write_trace(
    path: str | Path,
    records: Iterable[AnyRecord],
    *,
    header_comments: Iterable[str] = (),
    omit_operation_ids: bool = False,
) -> EncoderStats:
    """Write records to ``path``; returns the encoder's compression stats."""
    encoder = TraceEncoder(omit_operation_ids=omit_operation_ids)
    with open(path, "w", encoding="ascii") as fh:
        for text in header_comments:
            fh.write(encoder.encode(CommentRecord(text)) + "\n")
        for record in records:
            fh.write(encoder.encode(record) + "\n")
    return encoder.stats


def read_trace(path: str | Path) -> Iterator[AnyRecord]:
    """Stream all records (including comments) from a trace file."""
    decoder = TraceDecoder()
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            record = decoder.decode(line)
            if record is not None:
                yield record


def read_io_records(path: str | Path) -> Iterator[TraceRecord]:
    """Stream only I/O records, skipping comments."""
    for record in read_trace(path):
        if isinstance(record, TraceRecord):
            yield record


def read_comments(path: str | Path) -> list[CommentRecord]:
    """All comment records of a trace, in order."""
    return [r for r in read_trace(path) if isinstance(r, CommentRecord)]


def write_trace_array(
    path: str | Path,
    trace: TraceArray,
    *,
    header_comments: Iterable[str] = (),
    omit_operation_ids: bool = False,
) -> EncoderStats:
    """Write a columnar trace to an ASCII trace file."""
    return write_trace(
        path,
        trace.to_records(),
        header_comments=header_comments,
        omit_operation_ids=omit_operation_ids,
    )


def read_trace_array(path: str | Path) -> TraceArray:
    """Load a trace file into the columnar representation.

    Uses the batch decoder (:meth:`TraceDecoder.decode_array`), which
    fills the columns directly without materializing a record object per
    line; tested byte-identical to the record-at-a-time path.  The file
    is opened in binary mode so the whole document reaches the
    vectorized decoder as one bytes buffer -- no text-layer decode and
    no per-line ``str`` round trip.
    """
    with open(path, "rb") as fh:
        return TraceDecoder().decode_array(fh)


def read_any_trace_array(path: str | Path) -> TraceArray:
    """Load ASCII traces *or* compiled store bundles into columns.

    Compiled bundles (:mod:`repro.trace.store`) are detected by magic
    and memory-mapped with zero per-record work; anything else goes
    through the ASCII batch decoder.  Use this at tool entry points so
    every command accepts both forms interchangeably.
    """
    from repro.trace.store import is_store_file, load_compiled

    if is_store_file(path):
        return load_compiled(path).trace
    return read_trace_array(path)
