"""Delta/omission compression encoder for the ASCII trace format.

The format (paper appendix) compresses records two ways:

1. **Time fields are always deltas**: ``startTime`` relative to the
   previous record's start, ``completionTime`` relative to this record's
   start, ``processTime`` relative to the same process's previous I/O
   start.
2. **Other fields may be omitted**, signalled by compression flags, and
   reconstructed from earlier records: process id from the previous record
   in the trace, file id from the previous record by this process, length
   and operation id from the previous record of this file, and offset by
   sequential extension of the previous access to this file.

Records whose offset/length are multiples of 512 are further shrunk with
the ``*_IN_BLOCKS`` flags.

A line is the decimal fields in struct order, space separated::

    recordType compression [offset] [length] startTime completionTime
    [operationId] [fileId] [processId] processTime

Comment records are ``255`` followed by the comment text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.trace import flags as F
from repro.trace.record import AnyRecord, CommentRecord, TraceRecord
from repro.util.errors import TraceFormatError


@dataclass
class _FileState:
    """Per-file compression context."""

    next_offset: int  # previous access's offset + length
    length: int
    operation_id: int


@dataclass
class EncoderStats:
    """Counts of how often each compression opportunity fired."""

    records: int = 0
    comments: int = 0
    omitted_offset: int = 0
    omitted_length: int = 0
    omitted_file_id: int = 0
    omitted_process_id: int = 0
    omitted_operation_id: int = 0
    offset_in_blocks: int = 0
    length_in_blocks: int = 0
    bytes_written: int = 0

    def omission_rate(self) -> float:
        """Mean omitted optional fields per record (0-5)."""
        if self.records == 0:
            return 0.0
        omitted = (
            self.omitted_offset
            + self.omitted_length
            + self.omitted_file_id
            + self.omitted_process_id
            + self.omitted_operation_id
        )
        return omitted / self.records


class TraceEncoder:
    """Stateful record-to-line encoder.

    Feed records in the order they should appear in the trace (start times
    must be nondecreasing).  The encoder is streaming: it holds only the
    per-file/per-process context, never the whole trace.

    ``omit_operation_ids=True`` reproduces the paper's note that for
    logical-only traces the operation id "is useless and should be
    disregarded": after a file's first record the id is dropped even when
    it differs from the previous one.
    """

    def __init__(self, *, omit_operation_ids: bool = False):
        self.omit_operation_ids = omit_operation_ids
        self.stats = EncoderStats()
        self._prev_start: int | None = None
        self._prev_process: int | None = None
        self._file_of_process: dict[int, int] = {}
        self._files: dict[int, _FileState] = {}

    def encode(self, record: AnyRecord) -> str:
        """Encode one record to its trace line (no trailing newline)."""
        if isinstance(record, CommentRecord):
            if "\n" in record.text:
                raise TraceFormatError("comment text must not contain newlines")
            self.stats.comments += 1
            line = f"{F.TRACE_COMMENT} {record.text}".rstrip()
            self.stats.bytes_written += len(line) + 1
            return line
        return self._encode_io(record)

    def encode_all(self, records: Iterable[AnyRecord]) -> Iterator[str]:
        for record in records:
            yield self.encode(record)

    def _encode_io(self, r: TraceRecord) -> str:
        compression = 0
        fields: list[int] = []

        fstate = self._files.get(r.file_id)

        # offset
        if fstate is not None and r.offset == fstate.next_offset:
            compression |= F.TRACE_NO_BLOCK
            self.stats.omitted_offset += 1
        else:
            value = r.offset
            if value % F.TRACE_BLOCK_SIZE == 0:
                compression |= F.TRACE_OFFSET_IN_BLOCKS
                value //= F.TRACE_BLOCK_SIZE
                self.stats.offset_in_blocks += 1
            fields.append(value)

        # length
        if fstate is not None and r.length == fstate.length:
            compression |= F.TRACE_NO_LENGTH
            self.stats.omitted_length += 1
        else:
            value = r.length
            if value % F.TRACE_BLOCK_SIZE == 0:
                compression |= F.TRACE_LENGTH_IN_BLOCKS
                value //= F.TRACE_BLOCK_SIZE
                self.stats.length_in_blocks += 1
            fields.append(value)

        # times (always present, always deltas)
        prev_start = self._prev_start if self._prev_start is not None else 0
        start_delta = r.start_time - prev_start
        if start_delta < 0:
            raise TraceFormatError(
                f"start times must be nondecreasing "
                f"(got {r.start_time} after {prev_start})"
            )
        fields.append(start_delta)
        fields.append(r.duration)

        # operationId
        tail: list[int] = []
        if fstate is not None and (
            self.omit_operation_ids or r.operation_id == fstate.operation_id
        ):
            compression |= F.TRACE_NO_OPERATIONID
            self.stats.omitted_operation_id += 1
        else:
            tail.append(r.operation_id)

        # fileId
        if self._file_of_process.get(r.process_id) == r.file_id:
            compression |= F.TRACE_NO_FILEID
            self.stats.omitted_file_id += 1
        else:
            tail.append(r.file_id)

        # processId
        if self._prev_process == r.process_id:
            compression |= F.TRACE_NO_PROCESSID
            self.stats.omitted_process_id += 1
        else:
            tail.append(r.process_id)

        tail.append(r.process_time)

        # update state
        self._prev_start = r.start_time
        self._prev_process = r.process_id
        self._file_of_process[r.process_id] = r.file_id
        self._files[r.file_id] = _FileState(
            next_offset=r.offset + r.length,
            length=r.length,
            operation_id=r.operation_id,
        )

        self.stats.records += 1
        parts = [str(r.record_type), str(compression)]
        parts.extend(str(v) for v in fields)
        parts.extend(str(v) for v in tail)
        line = " ".join(parts)
        self.stats.bytes_written += len(line) + 1
        return line


def encode_records(
    records: Iterable[AnyRecord], *, omit_operation_ids: bool = False
) -> list[str]:
    """One-shot helper: encode all records and return the lines."""
    encoder = TraceEncoder(omit_operation_ids=omit_operation_ids)
    return list(encoder.encode_all(records))
