"""Extent-based block allocation.

Files are laid out on a disk of 512-byte blocks (the trace format's
``TRACE_BLOCK_SIZE``) as ordered lists of extents.  An allocator with
``max_extent_blocks = None`` produces fully contiguous files; a finite
cap plus inter-file interleaving produces the fragmentation real file
systems exhibit, which is what makes physical traces interesting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.errors import SimulationError
from repro.util.units import TRACE_BLOCK_SIZE


@dataclass(frozen=True)
class Extent:
    """A contiguous run of disk blocks: [start_block, start_block + n)."""

    start_block: int
    n_blocks: int

    def __post_init__(self) -> None:
        if self.start_block < 0 or self.n_blocks <= 0:
            raise ValueError(f"bad extent ({self.start_block}, {self.n_blocks})")

    @property
    def end_block(self) -> int:
        return self.start_block + self.n_blocks


@dataclass
class FileLayout:
    """One file's logical-to-physical mapping."""

    file_id: int
    extents: list[Extent] = field(default_factory=list)

    @property
    def n_blocks(self) -> int:
        return sum(e.n_blocks for e in self.extents)

    @property
    def size_bytes(self) -> int:
        return self.n_blocks * TRACE_BLOCK_SIZE

    @property
    def n_extents(self) -> int:
        return len(self.extents)

    def physical_runs(self, offset: int, length: int) -> list[tuple[int, int]]:
        """Physical (start_block, n_blocks) runs covering a byte range.

        The byte range is rounded out to block boundaries (a 100-byte
        read still moves a whole 512-byte block) and split wherever the
        file's extents break.
        """
        if offset < 0 or length <= 0:
            raise ValueError("need offset >= 0 and length > 0")
        first = offset // TRACE_BLOCK_SIZE
        last = (offset + length - 1) // TRACE_BLOCK_SIZE
        if last >= self.n_blocks:
            raise SimulationError(
                f"file {self.file_id}: access to logical block {last} "
                f"beyond layout of {self.n_blocks} blocks"
            )
        runs: list[tuple[int, int]] = []
        logical = 0
        for extent in self.extents:
            ext_first = logical
            ext_last = logical + extent.n_blocks - 1
            lo = max(first, ext_first)
            hi = min(last, ext_last)
            if lo <= hi:
                start = extent.start_block + (lo - ext_first)
                n = hi - lo + 1
                if runs and runs[-1][0] + runs[-1][1] == start:
                    runs[-1] = (runs[-1][0], runs[-1][1] + n)
                else:
                    runs.append((start, n))
            logical = ext_last + 1
            if logical > last:
                break
        return runs


class BlockAllocator:
    """Sequential first-free extent allocator over one disk.

    ``max_extent_blocks`` caps extent length; interleaving allocations
    across files then fragments all of them (each file's next extent
    lands after the other files' latest ones).
    """

    def __init__(
        self,
        n_blocks: int,
        *,
        max_extent_blocks: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        if n_blocks <= 0:
            raise ValueError("disk must have at least one block")
        if max_extent_blocks is not None and max_extent_blocks <= 0:
            raise ValueError("max_extent_blocks must be positive")
        self.n_blocks = n_blocks
        self.max_extent_blocks = max_extent_blocks
        self._rng = rng
        self._next_free = 0
        self.layouts: dict[int, FileLayout] = {}

    @property
    def blocks_used(self) -> int:
        return self._next_free

    def _extent_cap(self) -> int | None:
        if self.max_extent_blocks is None:
            return None
        if self._rng is None:
            return self.max_extent_blocks
        # Mild variation so extent boundaries do not all align.
        return max(1, int(self._rng.integers(
            self.max_extent_blocks // 2 + 1, self.max_extent_blocks + 1
        )))

    def allocate(self, file_id: int, n_bytes: int) -> FileLayout:
        """Append ``n_bytes`` (rounded up to blocks) to a file's layout.

        Without a cap, consecutive allocations to the same file merge
        into one extent (perfectly contiguous layout).  With a cap, each
        extent models an allocation group: the allocator skips a gap
        after it, so even a lone file ends up fragmented -- which is the
        behaviour the cap exists to model.
        """
        if n_bytes <= 0:
            raise ValueError("allocation must be positive")
        layout = self.layouts.setdefault(file_id, FileLayout(file_id))
        remaining = -(-n_bytes // TRACE_BLOCK_SIZE)  # ceil division
        while remaining > 0:
            cap = self._extent_cap()
            take = remaining if cap is None else min(cap, remaining)
            if self._next_free + take > self.n_blocks:
                raise SimulationError(
                    f"disk full: need {take} blocks, "
                    f"{self.n_blocks - self._next_free} free"
                )
            extent = Extent(self._next_free, take)
            self._next_free += take
            last = layout.extents[-1] if layout.extents else None
            if last is not None and last.end_block == extent.start_block:
                layout.extents[-1] = Extent(
                    last.start_block, last.n_blocks + extent.n_blocks
                )
            else:
                layout.extents.append(extent)
            remaining -= take
            if cap is not None and remaining > 0:
                # Allocation-group boundary: leave a gap so the next
                # extent is discontiguous.
                gap = min(cap, self.n_blocks - self._next_free)
                self._next_free += gap
        return layout

    def layout(self, file_id: int) -> FileLayout:
        try:
            return self.layouts[file_id]
        except KeyError:
            raise SimulationError(f"no layout for file {file_id}") from None
