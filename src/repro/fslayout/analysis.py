"""What the physical level shows that the logical level hides.

Two quantities matter for the paper's disk model:

* **seek distance** between consecutive physical accesses on the disk --
  the "closeness" the simulator's service time depends on; interleaved
  (fragmented) layouts turn logically sequential streams into seeky
  physical ones;
* **amplification** -- physical bytes moved per logical byte requested,
  from rounding requests out to 512-byte blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fslayout.translate import PhysicalTranslation
from repro.trace.array import TraceArray


def seek_distances(physical: TraceArray) -> np.ndarray:
    """|start - previous end| per consecutive physical access (bytes)."""
    if len(physical) < 2:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(physical.start_time, kind="stable")
    offs = physical.offset[order]
    lens = physical.length[order]
    return np.abs(offs[1:] - (offs[:-1] + lens[:-1]))


def amplification_factor(translation: PhysicalTranslation) -> float:
    """Physical bytes moved per logical byte requested (>= 1)."""
    logical_bytes = translation.logical.total_bytes
    if logical_bytes == 0:
        return 0.0
    return translation.physical.total_bytes / logical_bytes


@dataclass(frozen=True)
class PhysicalReport:
    """Summary of a logical-to-physical translation."""

    n_logical: int
    n_physical: int
    amplification: float
    #: physical records per logical record (fragmentation fan-out)
    fan_out: float
    #: fraction of consecutive physical accesses that are sequential
    sequential_fraction: float
    median_seek_bytes: float
    #: extents per file, worst case
    max_extents: int

    def __str__(self) -> str:  # pragma: no cover - presentation
        return (
            f"{self.n_logical} logical -> {self.n_physical} physical records "
            f"(fan-out {self.fan_out:.2f}, amplification {self.amplification:.3f}); "
            f"{self.sequential_fraction:.1%} sequential on disk, "
            f"median seek {self.median_seek_bytes:.0f} B, "
            f"max {self.max_extents} extents/file"
        )


def analyze_physical(translation: PhysicalTranslation) -> PhysicalReport:
    physical = translation.physical
    n_logical = len(translation.logical)
    n_physical = len(physical)
    seeks = seek_distances(physical)
    return PhysicalReport(
        n_logical=n_logical,
        n_physical=n_physical,
        amplification=amplification_factor(translation),
        fan_out=n_physical / n_logical if n_logical else 0.0,
        sequential_fraction=float((seeks == 0).mean()) if seeks.size else 0.0,
        median_seek_bytes=float(np.median(seeks)) if seeks.size else 0.0,
        max_extents=max(
            (layout.n_extents for layout in translation.layouts.values()),
            default=0,
        ),
    )
