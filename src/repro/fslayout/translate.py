"""Logical-to-physical trace translation.

Per the format's field documentation: "The operationId field identifies
all records associated with a single call to read or write.  The logical
record for that system call ... can then be associated with all of the
physical I/Os it generated.  This shows the translation from a logical
file position to physical disk blocks for an I/O."  And: "for physical
records, fileId is an identifier for the disk written to ... all
physical records for the same disk should use the same fileId."

The translator walks a logical trace, allocates each file lazily on the
disk (interleaved allocation order = fragmentation), and emits one
physical record per contiguous physical run, carrying the logical
record's ``operationId`` and the disk's ``fileId``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fslayout.allocator import BlockAllocator, FileLayout
from repro.trace import flags as F
from repro.trace.array import TraceArray
from repro.util.rng import derive_rng
from repro.util.units import TRACE_BLOCK_SIZE

#: The conventional trace fileId for "the disk" in physical records.
DISK_FILE_ID = 0


@dataclass
class PhysicalTranslation:
    """Result of translating a logical trace."""

    logical: TraceArray
    physical: TraceArray
    layouts: dict[int, FileLayout]

    def merged(self) -> TraceArray:
        """Logical and physical records interleaved in time order.

        Each physical record starts one tick after its logical parent so
        the merged stream keeps "logical, then its physical children"
        order under a stable sort.
        """
        return TraceArray.concatenate([self.logical, self.physical]).sorted_by_start()


def layout_for_trace(
    trace: TraceArray,
    *,
    max_extent_blocks: int | None = None,
    seed: int = 0,
    disk_blocks: int | None = None,
) -> BlockAllocator:
    """Allocate every file a trace touches, in first-touch order.

    First-touch interleaving is what fragments the files: each file's
    layout grows whenever the trace first reaches a new high-water mark,
    so concurrently-growing files' extents alternate on disk.
    """
    ends = trace.offset + trace.length
    total_blocks = int(sum(
        -(-int(ends[trace.file_id == fid].max()) // TRACE_BLOCK_SIZE)
        for fid in trace.file_ids()
    ))
    if disk_blocks is None:
        # Capped (fragmenting) allocation skips a gap after every extent,
        # consuming up to twice the data size in disk space.
        disk_blocks = total_blocks * (2 if max_extent_blocks else 1) + 4096
    rng = derive_rng(seed, "fslayout") if max_extent_blocks else None
    allocator = BlockAllocator(
        disk_blocks, max_extent_blocks=max_extent_blocks, rng=rng
    )
    allocated: dict[int, int] = {}  # file -> bytes allocated so far
    for i in range(len(trace)):
        fid = int(trace.file_id[i])
        end = int(trace.offset[i]) + int(trace.length[i])
        have = allocated.get(fid, 0)
        if end > have:
            allocator.allocate(fid, end - have)
            allocated[fid] = (
                allocator.layout(fid).n_blocks * TRACE_BLOCK_SIZE
            )
    return allocator


def translate_trace(
    trace: TraceArray,
    allocator: BlockAllocator | None = None,
    *,
    max_extent_blocks: int | None = None,
    seed: int = 0,
    physical_latency_ticks: int = 1,
) -> PhysicalTranslation:
    """Expand a logical trace into logical + physical record streams."""
    if allocator is None:
        allocator = layout_for_trace(
            trace, max_extent_blocks=max_extent_blocks, seed=seed
        )

    cols: dict[str, list[int]] = {
        "record_type": [],
        "file_id": [],
        "process_id": [],
        "operation_id": [],
        "offset": [],
        "length": [],
        "start_time": [],
        "duration": [],
        "process_clock": [],
    }
    for i in range(len(trace)):
        fid = int(trace.file_id[i])
        layout = allocator.layout(fid)
        runs = layout.physical_runs(int(trace.offset[i]), int(trace.length[i]))
        is_write = bool(trace.record_type[i] & F.TRACE_WRITE)
        rtype = F.make_record_type(write=is_write, logical=False)
        t = int(trace.start_time[i]) + physical_latency_ticks
        for start_block, n_blocks in runs:
            cols["record_type"].append(rtype)
            cols["file_id"].append(DISK_FILE_ID)
            cols["process_id"].append(int(trace.process_id[i]))
            cols["operation_id"].append(int(trace.operation_id[i]))
            cols["offset"].append(start_block * TRACE_BLOCK_SIZE)
            cols["length"].append(n_blocks * TRACE_BLOCK_SIZE)
            cols["start_time"].append(t)
            cols["duration"].append(max(0, int(trace.duration[i]) - 1))
            cols["process_clock"].append(int(trace.process_clock[i]))
    physical = TraceArray.from_columns(
        **{k: np.asarray(v) for k, v in cols.items()}
    )
    return PhysicalTranslation(
        logical=trace, physical=physical, layouts=dict(allocator.layouts)
    )
