"""File-system block layout: the physical half of the trace format.

"While we only collected logical-level trace data on the Cray, we
included provisions for our trace format to include physical I/Os as
well."  This package exercises those provisions: an extent-based block
allocator lays files out on a simulated disk, a translator expands each
logical record into the physical-block records it implies (linked by
``operationId``, exactly as the format's field documentation describes),
and the analysis helpers quantify what the logical level hides --
fragmentation-induced seeks and block-rounding amplification.
"""

from repro.fslayout.allocator import BlockAllocator, Extent, FileLayout
from repro.fslayout.translate import (
    PhysicalTranslation,
    layout_for_trace,
    translate_trace,
)
from repro.fslayout.analysis import (
    PhysicalReport,
    amplification_factor,
    analyze_physical,
    seek_distances,
)

__all__ = [
    "BlockAllocator",
    "Extent",
    "FileLayout",
    "PhysicalTranslation",
    "layout_for_trace",
    "translate_trace",
    "PhysicalReport",
    "amplification_factor",
    "analyze_physical",
    "seek_distances",
]
