"""Render a metrics registry as a text report or a JSONL dump.

The text report groups instruments by their dotted-name prefix
(``sim.cache``, ``sim.disk``, ...), one table per group, so
``python -m repro profile fig8`` reads like the paper's per-subsystem
accounting rather than one flat wall of counters.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.registry import MetricsRegistry
from repro.util.tables import TextTable


def _group(name: str) -> str:
    """Group key for a dotted instrument name (first two components)."""
    parts = name.split(".")
    return ".".join(parts[:2]) if len(parts) > 2 else (parts[0] if parts else "")


def render_report(registry: MetricsRegistry, *, title: str = "metrics") -> str:
    """One aligned table per instrument group, histograms summarized."""
    snap = registry.snapshot()
    if not snap:
        return f"{title}: no metrics recorded (registry empty or disabled)"
    groups: dict[str, list[tuple[str, object]]] = {}
    for name, value in snap.items():
        groups.setdefault(_group(name), []).append((name, value))

    sections = [title]
    for group in sorted(groups):
        table = TextTable(["metric", "value"], title=group)
        for name, value in groups[group]:
            if isinstance(value, dict):
                if "count" in value:  # histogram
                    rendered = (
                        f"n={value['count']} mean={value['mean']:.4g} "
                        f"min={value['min']:.4g} max={value['max']:.4g}"
                    )
                else:  # gauge
                    rendered = f"{value['value']:.6g} (peak {value['peak']:.6g})"
            elif isinstance(value, float):
                rendered = f"{value:.6g}"
            else:
                rendered = f"{value:,}"
            table.add_row([name, rendered])
        sections.append(table.render())
    return "\n\n".join(sections)


def metrics_to_jsonl(registry: MetricsRegistry, path: str | Path) -> int:
    """Dump every instrument as one JSON object per line; returns count.

    Counters: ``{"metric": name, "type": "counter", "value": v}``.
    Gauges add ``peak``; histograms add count/total/mean/min/max and the
    populated power-of-two buckets.
    """
    lines = []
    for name, value in registry.counters().items():
        lines.append({"metric": name, "type": "counter", "value": value})
    snap = registry.snapshot()
    for name, value in snap.items():
        if not isinstance(value, dict):
            continue
        if "count" in value:
            hist = registry.histograms()[name]
            lines.append(
                {
                    "metric": name,
                    "type": "histogram",
                    "buckets": hist.nonzero_buckets(),
                    **value,
                }
            )
        else:
            lines.append(
                {
                    "metric": name,
                    "type": "gauge",
                    "value": value["value"],
                    "peak": value["peak"],
                }
            )
    with Path(path).open("w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(json.dumps(line, sort_keys=True) + "\n")
    return len(lines)
