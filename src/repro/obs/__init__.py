"""Observability: counters, gauges, histograms, spans and a JSONL sink.

The paper's methodology is *instrumentation* -- library hooks feeding a
``procstat`` collector.  This package applies the same idea to the
reproduction itself: the simulator's hot layers report what they did to
a :class:`MetricsRegistry`, optionally streaming structured events to a
:class:`JsonlEventSink` with procstat-style bounded batched flushing.

The default registry is disabled and near-zero-cost; ``python -m repro
profile <experiment>`` installs an enabled one and renders the report.
"""

from repro.obs.events import JsonlEventSink, TeeEventSink, read_events
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    Span,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.report import metrics_to_jsonl, render_report

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlEventSink",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Span",
    "TeeEventSink",
    "get_registry",
    "metrics_to_jsonl",
    "read_events",
    "render_report",
    "set_registry",
    "use_registry",
]
