"""Hierarchical metric instruments and the active-registry context.

The simulator's own ``procstat``: every hot layer (event engine,
scheduler, buffer cache, disk model, trace collector, sweep runner)
holds references to named instruments it bumps as it works.  Instruments
live in a :class:`MetricsRegistry`; names are dotted paths
(``sim.cache.evictions``) so reports can group them hierarchically.

Cost model
----------
Instrumentation must not perturb the reproduction.  A *disabled*
registry (the default) hands out shared null instruments whose methods
are empty -- the per-event cost is one attribute lookup plus a no-op
call, and nothing is allocated on the hot path.  Crucially the
instruments never touch simulated state or RNG streams, so enabling
metrics cannot change simulation results; disabling them keeps default
benchmark numbers unchanged.

Threading the registry
----------------------
Components accept an explicit ``obs`` argument and fall back to the
*active* registry (:func:`get_registry`).  The CLI's ``profile``
command installs an enabled registry with :func:`use_registry` around
one experiment run and renders what accumulated.  Worker processes of a
parallel sweep start with the null registry, so profiling is an
in-process (``jobs=1``) affair by design.

:func:`use_registry` installs its registry for the *calling thread*
only (falling back to the process default set by :func:`set_registry`).
Single-threaded callers see no difference, but concurrent jobs -- e.g.
the sweep server executing several requests in a worker-thread pool --
each get their own isolated instruments instead of trampling one
process-wide global.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator


class Counter:
    """Monotonically growing count (int or float increments)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def add(self, amount: float) -> None:
        self.value += amount


class Gauge:
    """Last-set value plus the peak it ever reached."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def set_max(self, value: float) -> None:
        """Track only the peak (cheaper than set when the latest value
        is uninteresting)."""
        if value > self.peak:
            self.peak = value
            self.value = value


class Histogram:
    """Power-of-two bucketed distribution of nonnegative samples.

    Bucket *i* counts samples in ``[2**(i-1), 2**i)`` (bucket 0 holds
    samples < 1), which is plenty for seek distances and span latencies
    while keeping ``observe`` allocation-free.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    N_BUCKETS = 64

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.buckets = [0] * self.N_BUCKETS

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        i = int(value).bit_length() if value >= 1 else 0
        self.buckets[min(i, self.N_BUCKETS - 1)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def nonzero_buckets(self) -> list[tuple[str, int]]:
        """(bucket label, count) for every populated bucket."""
        out = []
        for i, n in enumerate(self.buckets):
            if n:
                lo = 0 if i == 0 else 2 ** (i - 1)
                out.append((f"[{lo}, {2 ** i})", n))
        return out


class Span:
    """Wall-time span context manager feeding a histogram.

    >>> with registry.span("exec.point"):            # doctest: +SKIP
    ...     simulate(...)
    """

    __slots__ = ("_hist", "_emit", "_label", "_t0")

    def __init__(
        self,
        hist: Histogram,
        emit: Callable[..., None] | None = None,
        label: str = "",
    ):
        self._hist = hist
        self._emit = emit
        self._label = label
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._t0
        self._hist.observe(elapsed)
        if self._emit is not None:
            self._emit(
                "span", name=self._hist.name, label=self._label, seconds=elapsed
            )


class _NullCounter:
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_SPAN = _NullSpan()


class MetricsRegistry:
    """Named instruments plus an optional event sink.

    ``enabled=False`` returns the shared null instruments from every
    accessor, so a disabled registry costs nothing to thread through.
    """

    def __init__(self, *, enabled: bool = True, event_sink=None):
        self.enabled = enabled
        self.event_sink = event_sink
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument accessors (memoized by name) -----------------------
    def counter(self, name: str):
        if not self.enabled:
            return _NULL_COUNTER
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str):
        if not self.enabled:
            return _NULL_GAUGE
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str):
        if not self.enabled:
            return _NULL_HISTOGRAM
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def span(self, name: str, label: str = ""):
        if not self.enabled:
            return _NULL_SPAN
        emit = self.emit if self.event_sink is not None else None
        return Span(self.histogram(name), emit, label)

    # -- event log passthrough -----------------------------------------
    def emit(self, kind: str, **fields) -> None:
        """Forward a structured event to the sink, if one is attached."""
        if self.enabled and self.event_sink is not None:
            self.event_sink.emit(kind, **fields)

    # -- introspection --------------------------------------------------
    def snapshot(self) -> dict:
        """Flat ``{name: scalar-or-dict}`` view of every instrument."""
        out: dict = {}
        for name, c in sorted(self._counters.items()):
            out[name] = c.value
        for name, g in sorted(self._gauges.items()):
            out[name] = {"value": g.value, "peak": g.peak}
        for name, h in sorted(self._histograms.items()):
            out[name] = {
                "count": h.count,
                "total": h.total,
                "mean": h.mean,
                "min": h.min if h.count else 0.0,
                "max": h.max,
            }
        return out

    def counters(self) -> dict[str, float]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def histograms(self) -> dict[str, Histogram]:
        return dict(self._histograms)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


#: Shared disabled registry: the default for every instrumented component.
NULL_REGISTRY = MetricsRegistry(enabled=False)

_default: MetricsRegistry = NULL_REGISTRY
_local = threading.local()


def get_registry() -> MetricsRegistry:
    """The active registry: this thread's override, else the process
    default (the null registry out of the box)."""
    registry = getattr(_local, "registry", None)
    return registry if registry is not None else _default


def set_registry(registry: MetricsRegistry | None) -> None:
    """Install ``registry`` as the process default (None restores the
    null registry).  Threads inside a :func:`use_registry` context keep
    their own override."""
    global _default
    _default = registry if registry is not None else NULL_REGISTRY


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scoped thread-local override; restores the previous registry.

    Only the calling thread sees ``registry``; concurrent threads (e.g.
    other jobs in the sweep server's worker pool) keep their own.
    """
    previous = getattr(_local, "registry", None)
    _local.registry = registry
    try:
        yield registry
    finally:
        _local.registry = previous
