"""JSONL event log with bounded buffering and batched flush.

The sink mirrors the paper's ``procstat`` collector design: events
accumulate in a bounded in-memory buffer and are written out in batches
-- one ``write`` call per flush -- rather than one syscall per event
("one header served for hundreds of I/O calls").  A full buffer forces a
flush, so memory stays bounded no matter how chatty the instrumentation
is; ``close`` (or the context manager) flushes the remainder.

Each line is one JSON object::

    {"seq": 17, "kind": "span", "name": "exec.point", "seconds": 0.41}

``seq`` is a monotonically increasing sequence number assigned at
emission, which makes post-hoc ordering unambiguous even though the log
carries no wall-clock timestamps (deliberately: stamping every event
with real time would make runs non-reproducible byte-for-byte).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO


class JsonlEventSink:
    """Buffered JSONL writer for observability events."""

    def __init__(
        self,
        path: str | Path,
        *,
        buffer_events: int = 512,
    ):
        if buffer_events < 1:
            raise ValueError("buffer_events must be >= 1")
        self.path = Path(path)
        self.buffer_events = buffer_events
        self._buffer: list[str] = []
        self._fh: IO[str] | None = self.path.open("w", encoding="utf-8")
        self._seq = 0
        self.events_emitted = 0
        self.flushes = 0

    def emit(self, kind: str, **fields) -> None:
        """Buffer one event; flushes as a batch when the buffer fills."""
        if self._fh is None:
            raise RuntimeError("event sink is closed")
        record = {"seq": self._seq, "kind": kind}
        record.update(fields)
        self._seq += 1
        self.events_emitted += 1
        self._buffer.append(json.dumps(record, sort_keys=True, default=str))
        if len(self._buffer) >= self.buffer_events:
            self.flush()

    def flush(self) -> None:
        """Write the buffered batch in one call."""
        if self._fh is None or not self._buffer:
            return
        self._fh.write("\n".join(self._buffer) + "\n")
        self._fh.flush()
        self._buffer.clear()
        self.flushes += 1

    def close(self) -> None:
        if self._fh is not None:
            self.flush()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlEventSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TeeEventSink:
    """Fan one event stream out to several sinks.

    A *sink* is anything with ``emit(kind, **fields)``; ``flush`` and
    ``close`` are optional and forwarded when present.  The sweep server
    uses this to feed one job's events both to its per-job server-sent
    event stream and to an on-disk :class:`JsonlEventSink` at the same
    time; ``repro profile`` stays a single plain sink.

    The tee does not own its children's lifecycles beyond forwarding:
    ``close`` closes every child that has a ``close``, and keeps going
    past a failing child so one broken sink never silences the rest.
    """

    def __init__(self, *sinks):
        self.sinks = tuple(sinks)

    def emit(self, kind: str, **fields) -> None:
        for sink in self.sinks:
            sink.emit(kind, **fields)

    def flush(self) -> None:
        for sink in self.sinks:
            flush = getattr(sink, "flush", None)
            if flush is not None:
                flush()

    def close(self) -> None:
        errors: list[BaseException] = []
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is None:
                continue
            try:
                close()
            except Exception as exc:
                errors.append(exc)
        if errors:
            raise errors[0]

    def __enter__(self) -> "TeeEventSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(path: str | Path) -> list[dict]:
    """Load a JSONL event log back into dicts (for tests and tooling)."""
    out = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
