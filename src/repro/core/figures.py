"""Render the paper's figures to SVG files.

``save_figures(study, outdir)`` writes one ``figN.svg`` (plus a CSV of
the underlying series) per reproduced figure; the CLI exposes it as
``python -m repro figures --out DIR``.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.rates import rate_series_csv
from repro.core.study import Study
from repro.util.svgplot import SVGChart, line_chart


def _save(chart, csv_text: str, outdir: Path, stem: str) -> list[Path]:
    svg_path = outdir / f"{stem}.svg"
    chart.save(svg_path)
    csv_path = outdir / f"{stem}.csv"
    csv_path.write_text(csv_text)
    return [svg_path, csv_path]


def save_figures(study: Study | None = None, outdir: str | Path = ".") -> list[Path]:
    """Write fig3/fig4/fig6/fig7/fig8 SVG+CSV files; returns the paths."""
    study = study if study is not None else Study()
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    # Figures 3 and 4: per-application demand curves.
    for stem, name, fig in (("fig3", "venus", "Figure 3"), ("fig4", "les", "Figure 4")):
        series = study.app_rate_series(name)
        chart = line_chart(
            series.times,
            series.rates,
            title=f"{fig}: data rate over time for {name}",
            x_label="process CPU time (seconds)",
            y_label="MB per CPU second",
        )
        written += _save(chart, rate_series_csv(series), outdir, stem)

    # Figures 6 and 7: disk traffic under the two cache configurations.
    for stem, run, fig in (
        ("fig6", study.figure6(), "Figure 6 (32 MB memory cache)"),
        ("fig7", study.figure7(), "Figure 7 (128 MB SSD cache)"),
    ):
        rate = run.result.disk_rate
        chart = line_chart(
            rate.times,
            rate.rates,
            title=f"{fig}: disk traffic, 2 x venus",
            x_label="wall time (seconds)",
            y_label="MB/s to disk",
        )
        written += _save(chart, rate_series_csv(rate), outdir, stem)

    # Figure 8: idle vs cache size, one line per block size.
    points = study.figure8()
    chart = SVGChart(
        title="Figure 8: idle time vs cache size (two venus instances)",
        x_label="cache size (MB)",
        y_label="idle seconds",
    )
    all_x = [p.cache_mb for p in points]
    all_y = [p.idle_seconds for p in points]
    chart.set_ranges(all_x, all_y)
    chart.add_axes()
    csv_lines = ["block_kb,cache_mb,idle_seconds,utilization"]
    for i, block_kb in enumerate(sorted({p.block_kb for p in points})):
        sub = [p for p in points if p.block_kb == block_kb]
        sub.sort(key=lambda p: p.cache_mb)
        chart.add_line(
            [p.cache_mb for p in sub],
            [p.idle_seconds for p in sub],
            series=i,
            label=f"{block_kb:g}K blocks",
        )
        csv_lines += [
            f"{p.block_kb:g},{p.cache_mb:g},{p.idle_seconds:.3f},{p.utilization:.4f}"
            for p in sub
        ]
    written += _save(chart, "\n".join(csv_lines) + "\n", outdir, "fig8")
    return written
