"""Experiment registry: every table, figure and claim, addressable by id.

``run_experiment("fig8")`` reproduces Figure 8 and returns a rendered
text report; ``EXPERIMENTS`` is the index DESIGN.md's per-experiment
table promises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.study import Study
from repro.util.asciiplot import ascii_bar_plot, ascii_line_plot
from repro.util.tables import TextTable


@dataclass(frozen=True)
class Experiment:
    """One reproducible artifact of the paper."""

    exp_id: str
    title: str
    paper_section: str
    runner: Callable[[Study], str]

    def run(self, study: Study | None = None) -> str:
        return self.runner(study if study is not None else Study())


def _table1(study: Study) -> str:
    return study.table1()


def _table2(study: Study) -> str:
    return study.table2()


def _app_figure(name: str, fig: str):
    def run(study: Study) -> str:
        series = study.app_rate_series(name)
        cyc = study.cycles(name)
        plot = ascii_line_plot(
            series.times,
            series.rates,
            title=f"{fig}: data rate over time for {name}",
            x_label="process CPU time (s)",
            y_label="MB per CPU second",
        )
        lines = [
            plot,
            f"peak {series.peak:.1f} MB/s, mean {series.mean:.1f} MB/s, "
            f"burstiness {series.burstiness():.2f}",
        ]
        if cyc.is_cyclic:
            lines.append(
                f"detected cycle: {cyc.period_seconds:.1f} s "
                f"(similarity {cyc.cycle_similarity:.2f})"
            )
        return "\n".join(lines)

    return run


def _sim_figure(ssd: bool, cache_mb: int, fig: str):
    def run(study: Study) -> str:
        r = study.figure7() if ssd else study.figure6()
        rate = r.result.disk_rate
        plot = ascii_line_plot(
            rate.times,
            rate.rates,
            title=f"{fig}: disk traffic, 2 x venus, {cache_mb} MB "
            f"{'SSD' if ssd else 'memory'} cache",
            x_label="wall time (s)",
            y_label="MB/s to disk",
        )
        return "\n".join([plot, r.result.summary()])

    return run


def _figure8(study: Study) -> str:
    points = study.figure8()
    table = TextTable(
        ["block", "cache(MB)", "idle(s)", "utilization", "hit%"],
        title="Figure 8: idle time, two venus instances, by cache size",
    )
    for p in points:
        table.add_row(
            [
                f"{p.block_kb:g}K",
                p.cache_mb,
                round(p.idle_seconds, 2),
                f"{p.utilization:.1%}",
                f"{p.hit_fraction:.1%}",
            ]
        )
    by4k = [p for p in points if p.block_kb == 4]
    bars = ascii_bar_plot(
        [f"{p.cache_mb:g}MB" for p in by4k],
        [p.idle_seconds for p in by4k],
        title="idle seconds (4K blocks)",
    )
    return "\n\n".join([table.render(), bars])


def _ssd_claim(study: Study) -> str:
    runs = study.ssd_runs()
    table = TextTable(
        ["app", "utilization", "warm util", "idle(s)", "hit%"],
        title="Section 6.3: per-application CPU utilization with a 256 MB SSD cache",
    )
    for r in runs:
        table.add_row(
            [
                r.name,
                f"{r.utilization:.2%}",
                f"{r.warm_utilization:.2%}",
                round(r.idle_seconds, 2),
                f"{r.hit_fraction:.1%}",
            ]
        )
    worst = min(runs, key=lambda r: r.utilization)
    return "\n".join(
        [
            table.render(),
            f'paper: "all but one ... nearly completely utilized"; '
            f"lowest here: {worst.name} at {worst.utilization:.1%}",
        ]
    )


def _writebehind_claim(study: Study) -> str:
    without, with_wb = study.writebehind()
    return "\n".join(
        [
            "Section 6.2: write-behind ablation (2 x venus, 128 MB cache)",
            f"  without write-behind: idle {without.idle_seconds:8.2f} s "
            f"(utilization {without.utilization:.1%})",
            f"  with    write-behind: idle {with_wb.idle_seconds:8.2f} s "
            f"(utilization {with_wb.utilization:.1%})",
            '  paper: "writebehind reduced idle time from 211 seconds to 1 second"',
        ]
    )


def _n_plus_one(study: Study) -> str:
    from repro.sim.experiments import n_plus_one_rule

    scale = study.app_scale("venus")
    io_bound = n_plus_one_rule(app="venus", n_cpus=2, max_extra_jobs=2, scale=scale)
    compute = n_plus_one_rule(
        app="upw", n_cpus=2, max_extra_jobs=1, scale=min(0.3, 3 * scale)
    )
    table = TextTable(
        ["workload", "CPUs", "jobs", "utilization"],
        title="Section 2.2: the n+1 multiprogramming rule",
    )
    for p in compute:
        table.add_row(["upw (compute-bound)", p.n_cpus, p.n_jobs, f"{p.utilization:.1%}"])
    for p in io_bound:
        table.add_row(["venus (I/O-bound)", p.n_cpus, p.n_jobs, f"{p.utilization:.1%}"])
    return "\n".join(
        [
            table.render(),
            'paper: "n+1 jobs resident in main memory will keep n processors '
            'busy, given a typical supercomputer workload ... If all currently '
            "in-memory programs make many I/O requests, it is likely that more "
            'than one will be awaiting I/O all the time."',
        ]
    )


def _batch_tradeoff(study: Study) -> str:
    from repro.batch import venus_design_tradeoff

    loaded = venus_design_tradeoff()
    empty = venus_design_tradeoff(background_large_jobs=0)
    return "\n".join(
        [
            "Section 2.2: memory-sized batch queues (the venus incentive)",
            "loaded machine:",
            str(loaded),
            "empty machine:",
            str(empty),
        ]
    )


def _buffering_sweep(study: Study) -> str:
    """The what-if grid the paper could not afford to run exhaustively:
    cache size x read-ahead x write-behind, via the parallel sweep runner.
    """
    from repro.exec.grid import GridSpec, render_sweep_table, sweep_summary
    from repro.exec.runner import SweepRunner

    grid = GridSpec(
        scale=study.app_scale("venus"),
        workload_seed=study.seed,
        cache_sizes_mb=(32, 128),
        block_sizes_kb=(4,),
        read_ahead=(True, False),
        write_behind=(True, False),
    )
    runner = SweepRunner(jobs=study.jobs)
    results = runner.run(grid.points())
    return "\n".join(
        [
            render_sweep_table(
                results,
                title="Buffering-policy sweep: 2 x venus, "
                "cache size x read-ahead x write-behind",
            ),
            sweep_summary(results),
        ]
    )


def _fault_sweep(study: Study) -> str:
    """Utilization decay under device fault rates -- the new experiment
    family the fault layer unlocks (not in the paper, which assumed
    perfectly reliable devices).
    """
    from repro.sim.experiments import fault_rate_sweep

    points = fault_rate_sweep(scale=study.app_scale("venus"), jobs=study.jobs)
    table = TextTable(
        ["err rate", "utilization", "idle(s)", "retries", "failed", "lost(MB)", "goodput(MB)"],
        title="Fault sweep: 2 x venus, 32 MB SSD cache, transient error rate",
    )
    for p in points:
        table.add_row(
            [
                f"{p.error_rate:g}",
                f"{p.utilization:.1%}",
                round(p.idle_seconds, 2),
                p.retries,
                p.failed_ios,
                round(p.lost_mb, 2),
                round(p.goodput_mb, 1),
            ]
        )
    base, worst = points[0], points[-1]
    return "\n".join(
        [
            table.render(),
            f"utilization {base.utilization:.1%} fault-free -> "
            f"{worst.utilization:.1%} at error rate {worst.error_rate:g} "
            f"({worst.retries} backoff retries; {worst.recovered} requests "
            f"recovered after retrying)",
        ]
    )


def _mss_staging(study: Study) -> str:
    from repro.mss.staging import stage_workload

    table = TextTable(
        ["app", "files", "MB", "1 drive (s)", "4 drives (s)"],
        title="Section 2.2: staging data sets from nearline tape",
    )
    for name in ("venus", "les", "ccm"):
        w = study.workload(name)
        one = stage_workload(w, n_drives=1)
        four = stage_workload(w, n_drives=4)
        table.add_row(
            [
                name,
                one.n_files,
                round(one.total_bytes / 2**20),
                round(one.ready_at_s, 1),
                round(four.ready_at_s, 1),
            ]
        )
    return table.render()


EXPERIMENTS: dict[str, Experiment] = {
    e.exp_id: e
    for e in [
        Experiment("table1", "Characteristics of the traced applications", "5", _table1),
        Experiment("table2", "I/O request rates and data rates", "5.2", _table2),
        Experiment("fig3", "Data rate over time for venus", "5.3", _app_figure("venus", "Figure 3")),
        Experiment("fig4", "Data rate over time for les", "5.3", _app_figure("les", "Figure 4")),
        Experiment("fig6", "2 x venus, 32 MB cache", "6.2", _sim_figure(False, 32, "Figure 6")),
        Experiment("fig7", "2 x venus, 128 MB SSD cache", "6.3", _sim_figure(True, 128, "Figure 7")),
        Experiment("fig8", "Idle time vs cache size", "6.4", _figure8),
        Experiment(
            "policy-sweep",
            "Cache size x read-ahead x write-behind grid",
            "6.2",
            _buffering_sweep,
        ),
        Experiment("ssd-utilization", "Per-app utilization on the SSD", "6.3", _ssd_claim),
        Experiment("write-behind", "Write-behind idle-time ablation", "6.2", _writebehind_claim),
        Experiment("n-plus-one", "The n+1 multiprogramming rule", "2.2", _n_plus_one),
        Experiment("batch-tradeoff", "Memory-sized batch queues", "2.2", _batch_tradeoff),
        Experiment("mss-staging", "Staging data sets from nearline tape", "2.2", _mss_staging),
        Experiment(
            "fault-sweep",
            "Utilization vs device fault rate under retry/backoff recovery",
            "6 (extension)",
            _fault_sweep,
        ),
    ]
}


def run_experiment(exp_id: str, study: Study | None = None) -> str:
    """Run one experiment by id and return its rendered report."""
    try:
        experiment = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return experiment.run(study)


def experiment_ids() -> tuple[str, ...]:
    return tuple(EXPERIMENTS)
