"""The high-level `Study` facade: the whole paper in one object.

A :class:`Study` generates (and caches) the seven application workloads
at a chosen scale, and exposes each of the paper's tables, figures and
claims as one method.  The examples and benchmarks are thin wrappers
around it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cycles import CycleReport, analyze_cycles
from repro.analysis.rates import data_rate_series
from repro.analysis.report import render_table1, render_table2
from repro.analysis.sequentiality import SequentialityReport, analyze_sequentiality
from repro.sim.experiments import (
    AppSSDRun,
    BufferingRun,
    SweepPoint,
    cache_size_sweep,
    run_two_venus,
    ssd_utilization_per_app,
    writebehind_ablation,
)
from repro.util.rng import DEFAULT_SEED
from repro.util.timeseries import RateSeries
from repro.workloads.base import GeneratedWorkload, generate_workload
from repro.workloads.catalog import APP_NAMES

#: Per-app default scales: the heavier generators run fewer cycles so a
#: full study stays interactive, while every app still runs enough cycles
#: for its cyclic structure to show.
DEFAULT_SCALES: dict[str, float] = {
    "bvi": 0.05,
    "forma": 0.1,
    "ccm": 0.2,
    "gcm": 0.2,
    "les": 0.25,
    "venus": 0.2,
    "upw": 0.2,
}


@dataclass
class Study:
    """Cached access to every reproduced artifact."""

    scale: float | None = None  #: None = per-app DEFAULT_SCALES
    seed: int = DEFAULT_SEED
    #: worker processes for sweep-shaped experiments (1 = serial; the
    #: numbers are identical at any worker count)
    jobs: int | None = 1
    _workloads: dict[str, GeneratedWorkload] = field(default_factory=dict)

    def app_scale(self, name: str) -> float:
        return self.scale if self.scale is not None else DEFAULT_SCALES[name]

    def workload(self, name: str) -> GeneratedWorkload:
        """The named application's generated workload (cached)."""
        if name not in self._workloads:
            self._workloads[name] = generate_workload(
                name, scale=self.app_scale(name), seed=self.seed
            )
        return self._workloads[name]

    def all_workloads(self) -> list[GeneratedWorkload]:
        return [self.workload(name) for name in APP_NAMES]

    # -- tables --------------------------------------------------------------
    def table1(self) -> str:
        """Table 1, measured vs paper, totals extrapolated to full runs."""
        return render_table1(self.all_workloads())

    def table2(self) -> str:
        """Table 2, measured vs paper."""
        return render_table2(self.all_workloads())

    # -- application figures ---------------------------------------------------
    def app_rate_series(self, name: str) -> RateSeries:
        """MB per CPU second at 1 s bins (the Figure 3/4 curves)."""
        return data_rate_series(self.workload(name).trace, clock="cpu")

    def figure3(self) -> RateSeries:
        """Figure 3: data rate over process CPU time for venus."""
        return self.app_rate_series("venus")

    def figure4(self) -> RateSeries:
        """Figure 4: data rate over process CPU time for les."""
        return self.app_rate_series("les")

    def cycles(self, name: str) -> CycleReport:
        return analyze_cycles(self.app_rate_series(name))

    def sequentiality(self, name: str) -> SequentialityReport:
        return analyze_sequentiality(self.workload(name).trace)

    # -- simulation figures -----------------------------------------------------
    def figure6(self) -> BufferingRun:
        """Figure 6: 2 x venus through a 32 MB main-memory cache."""
        return run_two_venus(
            cache_mb=32, scale=self.app_scale("venus"), seed=self.seed
        )

    def figure7(self) -> BufferingRun:
        """Figure 7: 2 x venus through a 128 MB SSD-class cache."""
        return run_two_venus(
            cache_mb=128, ssd=True, scale=self.app_scale("venus"), seed=self.seed
        )

    def figure8(self, **kwargs) -> list[SweepPoint]:
        """Figure 8: idle time vs cache size, 4 KB and 8 KB blocks."""
        kwargs.setdefault("scale", self.app_scale("venus"))
        kwargs.setdefault("jobs", self.jobs)
        return cache_size_sweep(**kwargs)

    # -- claims ------------------------------------------------------------------
    def ssd_runs(self, **kwargs) -> list[AppSSDRun]:
        kwargs.setdefault("jobs", self.jobs)
        return ssd_utilization_per_app(**kwargs)

    def writebehind(self, **kwargs) -> tuple[BufferingRun, BufferingRun]:
        kwargs.setdefault("scale", self.app_scale("venus"))
        kwargs.setdefault("jobs", self.jobs)
        return writebehind_ablation(**kwargs)
