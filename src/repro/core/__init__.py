"""High-level API: the whole study behind one object and a registry.

>>> from repro.core import Study, run_experiment
>>> study = Study(scale=0.1)
>>> print(study.table2())        # doctest: +SKIP
>>> print(run_experiment("fig8", study))  # doctest: +SKIP
"""

from repro.core.registry import (
    EXPERIMENTS,
    Experiment,
    experiment_ids,
    run_experiment,
)
from repro.core.study import DEFAULT_SCALES, Study

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "experiment_ids",
    "run_experiment",
    "DEFAULT_SCALES",
    "Study",
]
