"""repro -- reproduction of Miller, *Input/Output Behavior of
Supercomputing Applications* (UCB/CSD 91/616, 1991).

Subpackages, bottom to top:

* :mod:`repro.util` -- units (10 us trace ticks, Cray megawords),
  statistics, time series, text rendering;
* :mod:`repro.trace` -- the paper's compressed ASCII trace format and
  the procstat collection pipeline;
* :mod:`repro.runtime` -- the simulated application runtime the workload
  models program against (traced file API, process clocks);
* :mod:`repro.workloads` -- calibrated models of the seven traced
  applications (bvi, ccm, forma, gcm, les, venus, upw);
* :mod:`repro.analysis` -- Tables 1-2, rate curves, sequentiality,
  I/O-type classification, cycle detection;
* :mod:`repro.sim` -- the buffering/caching simulator: round-robin CPU,
  buffer cache with read-ahead/write-behind, seek-closeness disk, SSD
  hit-penalty mode;
* :mod:`repro.core` -- the :class:`~repro.core.Study` facade and the
  per-table/figure experiment registry.

Quick start::

    from repro.core import Study
    study = Study(scale=0.1)
    print(study.table1())
"""

from repro.core import Study, run_experiment

__version__ = "1.0.0"

__all__ = ["Study", "run_experiment", "__version__"]
