"""Parallel experiment execution: sweep runner + memoized result store.

The scaling layer the section-6 experiments run on:

* :mod:`repro.exec.runner` -- :class:`SweepRunner` fans independent
  ``(workload, config)`` points over a process pool with per-point
  deterministic seeding (serial == parallel, bit for bit);
* :mod:`repro.exec.cache` -- :class:`ResultCache`, a content-addressed
  on-disk memo of :class:`SimulationResult` pickles;
* :mod:`repro.exec.keys` -- stable point keys (exact-float canonical
  JSON + a code-version tag);
* :mod:`repro.exec.grid` -- :class:`GridSpec`, the cross-product spec
  behind the ``sweep`` CLI command.

``grid`` names are re-exported lazily (PEP 562): ``grid`` imports the
canned experiments, which themselves run on the runner, so loading it
eagerly here would be circular.
"""

from repro.exec.cache import CacheCounters, ResultCache, default_cache_dir
from repro.exec.keys import canonical_json, code_version_tag, point_key
from repro.exec.runner import (
    AppWorkloadSpec,
    PointResult,
    SweepPointSpec,
    SweepRunner,
    TraceFileSpec,
    resolve_jobs,
)

_GRID_EXPORTS = (
    "GridSpec",
    "parse_floats",
    "parse_toggles",
    "render_sweep_table",
    "sweep_summary",
)

__all__ = [
    "AppWorkloadSpec",
    "CacheCounters",
    "PointResult",
    "ResultCache",
    "SweepPointSpec",
    "SweepRunner",
    "TraceFileSpec",
    "canonical_json",
    "code_version_tag",
    "default_cache_dir",
    "point_key",
    "resolve_jobs",
    *_GRID_EXPORTS,
]


def __getattr__(name: str):
    if name in _GRID_EXPORTS:
        from repro.exec import grid

        return getattr(grid, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
