"""Parallel experiment execution: sweep runner + memoized result store.

The scaling layer the section-6 experiments run on:

* :mod:`repro.exec.runner` -- :class:`SweepRunner` resolves cache hits
  and per-point deterministic seeding, then delegates execution to a
  backend (serial == parallel, bit for bit);
* :mod:`repro.exec.executor` -- the pluggable backends: serial, process
  pool, and the queue of long-lived workers (see docs/EXECUTORS.md);
* :mod:`repro.exec.cache` -- :class:`ResultCache`, a content-addressed
  on-disk memo of :class:`SimulationResult` pickles;
* :mod:`repro.exec.cache_tiers` -- :class:`TieredResultCache`, a local
  tier in front of a shared directory tier with budgeted LRU GC and
  packfile compaction;
* :mod:`repro.exec.keys` -- stable point keys (exact-float canonical
  JSON + a code-version tag);
* :mod:`repro.exec.grid` -- :class:`GridSpec`, the cross-product spec
  behind the ``sweep`` CLI command.

``grid`` names are re-exported lazily (PEP 562): ``grid`` imports the
canned experiments, which themselves run on the runner, so loading it
eagerly here would be circular.
"""

from repro.exec.cache import CacheCounters, ResultCache, default_cache_dir
from repro.exec.cache_tiers import (
    CacheTier,
    TieredResultCache,
    resolve_cache_tiers,
    tiered_cache_from_spec,
)
from repro.exec.executor import (
    EXECUTOR_NAMES,
    Executor,
    PointTask,
    PoolExecutor,
    QueueExecutor,
    SerialExecutor,
    make_executor,
    resolve_executor_name,
)
from repro.exec.keys import canonical_json, code_version_tag, point_key
from repro.exec.runner import (
    AppWorkloadSpec,
    PointResult,
    SweepPointSpec,
    SweepRunner,
    TraceFileSpec,
    resolve_jobs,
)

_GRID_EXPORTS = (
    "GridSpec",
    "parse_floats",
    "parse_toggles",
    "render_sweep_table",
    "sweep_summary",
)

__all__ = [
    "AppWorkloadSpec",
    "CacheCounters",
    "CacheTier",
    "EXECUTOR_NAMES",
    "Executor",
    "PointResult",
    "PointTask",
    "PoolExecutor",
    "QueueExecutor",
    "ResultCache",
    "SerialExecutor",
    "SweepPointSpec",
    "SweepRunner",
    "TieredResultCache",
    "TraceFileSpec",
    "canonical_json",
    "code_version_tag",
    "default_cache_dir",
    "make_executor",
    "point_key",
    "resolve_cache_tiers",
    "resolve_executor_name",
    "resolve_jobs",
    "tiered_cache_from_spec",
    *_GRID_EXPORTS,
]


def __getattr__(name: str):
    if name in _GRID_EXPORTS:
        from repro.exec import grid

        return getattr(grid, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
