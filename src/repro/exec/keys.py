"""Stable cache keys for simulation points.

A sweep point is identified by *what* it simulates -- the
:class:`~repro.sim.config.SimConfig`, the workload specification and the
version of the simulator code -- never by *when* or *where* it ran.  The
key is the SHA-256 of a canonical JSON rendering in which:

* dict keys come out in dataclass field-declaration order (the configs'
  ``to_dict`` guarantees this) and ``canonical_json`` additionally sorts
  any free-form dicts, so insertion order never leaks in;
* floats are rendered with :meth:`float.hex`, which is exact -- two
  configs hash equal iff their floats are bit-identical, and the text
  never depends on repr shortest-digit behaviour;
* the code-version tag hashes every ``repro`` source file, so editing the
  simulator invalidates previously cached results.
"""

from __future__ import annotations

import hashlib
import json
from functools import lru_cache
from pathlib import Path

from repro.sim.config import SimConfig


def canonical_value(value):
    """Recursively convert a value into a JSON-safe canonical form."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        # float.hex is exact and stable; repr is *usually* stable but
        # documents no such guarantee for round-tripping across builds.
        return {"__float__": value.hex()}
    if isinstance(value, str):
        return value
    if isinstance(value, dict):
        return {str(k): canonical_value(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    if hasattr(value, "to_dict"):
        return canonical_value(value.to_dict())
    raise TypeError(f"cannot canonicalize {type(value).__name__}: {value!r}")


def canonical_json(value) -> str:
    """Deterministic JSON text for ``value`` (see :func:`canonical_value`)."""
    return json.dumps(
        canonical_value(value), sort_keys=True, separators=(",", ":")
    )


@lru_cache(maxsize=None)
def code_version_tag() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Any edit to the package -- simulator, workload models, trace codec --
    changes the tag, invalidating all cached results.  Coarse, but safe:
    the cache must never serve a result the current code would not
    reproduce.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def point_key_material(
    config: SimConfig, workload_material: dict, sweep_seed: int | None
) -> dict:
    """The dict whose canonical JSON is hashed into the point key."""
    return {
        "config": config.to_dict(),
        "workload": workload_material,
        "sweep_seed": sweep_seed,
        "code_version": code_version_tag(),
    }


def point_key(config: SimConfig, workload_material: dict, sweep_seed: int | None) -> str:
    """Content-addressed key for one ``(config, workload)`` sweep point."""
    text = canonical_json(point_key_material(config, workload_material, sweep_seed))
    return hashlib.sha256(text.encode()).hexdigest()
