"""Pluggable sweep execution backends: serial, process pool, task queue.

A :class:`SweepRunner` decides *what* to simulate (cache lookups, keys,
seeds); an :class:`Executor` decides *how* the remaining points run.
Three backends ship:

* :class:`SerialExecutor` -- inline, no processes.  What ``jobs == 1``
  always did; also the ground truth the conformance suite compares the
  other backends against.
* :class:`PoolExecutor` -- one :class:`concurrent.futures.ProcessPoolExecutor`
  per batch.  The default for parallel runs (current behavior).
* :class:`QueueExecutor` -- long-lived worker processes pulling point
  specs from a shared :mod:`multiprocessing` task queue.  The
  multi-host-shaped backend: work is claimed, not pre-assigned, and a
  worker that dies mid-point is replaced and its point re-queued
  (``exec.executor.worker_restarts`` counts the replacements).

The contract every backend honors -- locked down for each executor x
cache-tier combination by ``tests/harness/executor_contract.py``:

* every task is simulated exactly once (or re-run verbatim after a
  worker death) and produces the bit-identical result of a direct
  ``simulate()`` call -- the backend never enters the point key;
* ``on_result(task, result, elapsed_s)`` fires once per task as it
  completes;
* a failing point raises :class:`~repro.util.errors.SweepError` naming
  the point, abandoning still-queued work (fail fast);
* ``should_cancel`` returning true raises
  :class:`~repro.util.errors.SweepCancelled`, leaking neither worker
  processes nor shared-memory segments.

Backend selection (:func:`resolve_executor_name`): explicit name >
``$REPRO_EXECUTOR`` > automatic (serial for one job, pool otherwise).
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_lib
import time
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.obs.registry import get_registry
from repro.util.errors import SweepCancelled, SweepError

if TYPE_CHECKING:
    from repro.exec.runner import SweepPointSpec
    from repro.exec.shm import SegmentPublisher
    from repro.sim.metrics import SimulationResult

#: Valid ``--executor`` / ``$REPRO_EXECUTOR`` values.
EXECUTOR_NAMES = ("serial", "pool", "queue")

#: How often executor loops wake to poll ``should_cancel`` (and, for the
#: queue backend, worker liveness) while no point has completed.
CANCEL_POLL_S = 0.05

#: Test hook: when this env var names an existing *file*, the first queue
#: worker to claim a task unlinks it (atomic -- exactly one worker wins)
#: and dies hard via ``os._exit``; when it names a *directory*, every
#: claiming worker dies, so retry exhaustion is reachable.  The chaos
#: suite uses this to exercise worker restart without patching internals.
KILL_FLAG_ENV = "REPRO_EXEC_KILL_FLAG"

#: A task whose worker died is re-queued at most this many times before
#: the sweep fails -- a point that reliably kills its host (OOM, native
#: crash) must not retry forever.
MAX_TASK_RETRIES = 2


def resolve_executor_name(name: str | None = None) -> str | None:
    """Backend choice: explicit ``name`` > ``$REPRO_EXECUTOR`` > None (auto)."""
    if name is None:
        env = os.environ.get("REPRO_EXECUTOR", "").strip().lower()
        name = env or None
    if name is not None and name not in EXECUTOR_NAMES:
        raise ValueError(
            f"unknown executor {name!r}; expected one of {EXECUTOR_NAMES}"
        )
    return name


def make_executor(name: str, jobs: int = 1) -> "Executor":
    """Instantiate the named backend sized for ``jobs`` workers."""
    if name == "serial":
        return SerialExecutor()
    if name == "pool":
        return PoolExecutor(jobs=jobs)
    if name == "queue":
        return QueueExecutor(jobs=jobs)
    raise ValueError(
        f"unknown executor {name!r}; expected one of {EXECUTOR_NAMES}"
    )


@dataclass(frozen=True)
class PointTask:
    """One unit of executor work: simulate ``point`` with ``seed``.

    ``index`` is the caller's position for the task (used to deliver
    results back in the right slot); ``label`` is presentation only.
    """

    index: int
    point: "SweepPointSpec"
    seed: int
    label: str = ""


OnResult = Callable[[PointTask, "SimulationResult", float], None]


def publish_workloads(
    tasks: Sequence[PointTask], shared_memory: bool | None
) -> tuple["SegmentPublisher | None", dict]:
    """Materialize each distinct task workload once; publish to shm.

    Best-effort by design: a workload whose materialization or publish
    fails is simply not shared (its workers materialize and report
    errors exactly as the per-worker path would), so the fan-out can
    never turn a runnable sweep into a failing one or mask a point's
    real error with a transport error.  A skipped workload is counted
    (``exec.shm.publish_skipped``) and warned about with the exception
    type, so operators can see *why* sharing degraded instead of a
    silently slower sweep.
    """
    from repro.exec.shm import SegmentPublisher, shm_available

    if shared_memory is False or not shm_available():
        return None, {}
    reg = get_registry()
    publisher = SegmentPublisher()
    refs: dict = {}
    for task in tasks:
        spec = task.point.workload
        if spec in refs:
            continue
        try:
            traces = spec.materialize()
        except Exception as exc:
            refs[spec] = None
            reg.counter("exec.shm.publish_skipped").inc()
            warnings.warn(
                f"workload for point {task.label or task.index!r} could "
                f"not be pre-materialized for sharing "
                f"({type(exc).__name__}: {exc}); its workers will "
                "materialize from the spec and surface any real error",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        refs[spec] = publisher.publish(traces)
    return publisher, refs


def _point_error(task: PointTask, detail) -> SweepError:
    point = task.point
    return SweepError(
        f"sweep point {point.label or point.workload!r} failed: {detail}"
    )


class Executor:
    """One strategy for running a batch of sweep point tasks."""

    name: str = "?"

    def execute(
        self,
        tasks: Sequence[PointTask],
        *,
        on_result: OnResult,
        should_cancel: Callable[[], bool] | None = None,
        shared_memory: bool | None = None,
    ) -> None:
        raise NotImplementedError

    @staticmethod
    def _cancelled(should_cancel: Callable[[], bool] | None) -> bool:
        return should_cancel is not None and bool(should_cancel())


class SerialExecutor(Executor):
    """Run every task inline, in order, in this process."""

    name = "serial"

    def execute(
        self,
        tasks: Sequence[PointTask],
        *,
        on_result: OnResult,
        should_cancel: Callable[[], bool] | None = None,
        shared_memory: bool | None = None,
    ) -> None:
        from repro.exec.runner import _simulate_point

        reg = get_registry()
        for task in tasks:
            if self._cancelled(should_cancel):
                raise SweepCancelled("sweep cancelled before completion")
            t0 = time.perf_counter()
            with reg.span("exec.runner.point_s", label=task.label):
                try:
                    result = _simulate_point(task.point, task.seed)
                except SweepError:
                    raise
                except Exception as exc:
                    raise _point_error(task, exc) from exc
            on_result(task, result, time.perf_counter() - t0)


class PoolExecutor(Executor):
    """One :class:`ProcessPoolExecutor` per batch (the parallel default)."""

    name = "pool"

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs))

    def execute(
        self,
        tasks: Sequence[PointTask],
        *,
        on_result: OnResult,
        should_cancel: Callable[[], bool] | None = None,
        shared_memory: bool | None = None,
    ) -> None:
        reg = get_registry()
        publisher, refs = publish_workloads(tasks, shared_memory)
        try:
            with reg.span("exec.runner.pool_s", label=f"jobs={self.jobs}"):
                self._drive(tasks, refs, on_result, should_cancel)
        finally:
            # Success, failure, cancellation and Ctrl-C all unlink every
            # segment; workers' existing attachments stay valid until
            # pool exit.
            if publisher is not None:
                publisher.close()

    def _drive(
        self,
        tasks: Sequence[PointTask],
        refs: dict,
        on_result: OnResult,
        should_cancel: Callable[[], bool] | None,
    ) -> None:
        from concurrent.futures import (
            FIRST_COMPLETED,
            ProcessPoolExecutor,
            wait,
        )

        from repro.exec.runner import _simulate_point_shared

        t0 = time.perf_counter()
        poll_s = CANCEL_POLL_S if should_cancel is not None else None
        order = {task: n for n, task in enumerate(tasks)}
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                pool.submit(
                    _simulate_point_shared,
                    task.point,
                    task.seed,
                    refs.get(task.point.workload),
                ): task
                for task in tasks
            }
            pending = set(futures)
            while pending:
                if self._cancelled(should_cancel):
                    unfinished = self._abandon(pending)
                    raise SweepCancelled(
                        f"sweep cancelled with {unfinished} point(s) "
                        "unfinished"
                    )
                done, pending = wait(
                    pending, timeout=poll_s, return_when=FIRST_COMPLETED
                )
                # Handle completions in submission order so the same
                # point wins any first-error race on every run.
                for future in sorted(done, key=lambda f: order[futures[f]]):
                    task = futures[future]
                    exc = future.exception()
                    if exc is not None:
                        # Fail fast: the first broken point cancels
                        # everything still queued instead of letting the
                        # pool grind on (or hang).
                        self._abandon(pending)
                        raise _point_error(task, exc) from exc
                    on_result(task, future.result(), time.perf_counter() - t0)

    @staticmethod
    def _abandon(pending: set) -> int:
        """Cancel queued futures, wait out running ones; count losses."""
        from concurrent.futures import wait

        for future in pending:
            future.cancel()
        wait(pending)
        return len(pending)


def _maybe_kill_for_test() -> None:
    """Die hard if the chaos kill flag is armed (see :data:`KILL_FLAG_ENV`)."""
    flag = os.environ.get(KILL_FLAG_ENV, "").strip()
    if not flag:
        return
    if os.path.isdir(flag):
        os._exit(43)
    try:
        os.unlink(flag)
    except OSError:
        return
    os._exit(43)


def _queue_worker(slot: int, claims, task_q, result_q) -> None:
    """Long-lived worker loop: pull specs until the ``None`` sentinel.

    The claimed task index is recorded in the shared ``claims`` array
    (synchronously, unlike queue puts which buffer through a feeder
    thread) *before* simulation starts, so the parent can tell exactly
    which task a crashed worker was holding even when the crash loses
    every in-flight queue message.
    """
    while True:
        item = task_q.get()
        if item is None:
            return
        index, point, seed, shared = item
        with claims.get_lock():
            claims[slot] = index
        _maybe_kill_for_test()
        try:
            from repro.exec.runner import _simulate_point_shared

            result = _simulate_point_shared(point, seed, shared)
        except BaseException as exc:
            result_q.put(
                ("error", slot, index, f"{type(exc).__name__}: {exc}")
            )
        else:
            result_q.put(("done", slot, index, result))
        with claims.get_lock():
            claims[slot] = -1


class QueueExecutor(Executor):
    """Long-lived workers pulling point specs from a shared task queue.

    The multi-host-shaped backend: tasks are *claimed* from a queue, not
    pre-assigned, so a slow point never serializes the rest of the batch
    behind it, and worker lifecycle is explicit.  A worker that dies
    mid-point (crash, OOM-kill) is detected by the liveness sweep, its
    claimed task is re-queued (at most :data:`MAX_TASK_RETRIES` times
    per task), and a replacement worker is spawned --
    ``exec.executor.worker_restarts`` counts the replacements.  Results
    are delivered in completion order, like the pool backend.
    """

    name = "queue"

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs))

    def execute(
        self,
        tasks: Sequence[PointTask],
        *,
        on_result: OnResult,
        should_cancel: Callable[[], bool] | None = None,
        shared_memory: bool | None = None,
    ) -> None:
        if not tasks:
            return
        reg = get_registry()
        publisher, refs = publish_workloads(tasks, shared_memory)
        ctx = multiprocessing.get_context()
        n_workers = min(self.jobs, len(tasks))
        # One claim slot per worker ever spawned: initial workers plus
        # the restart budget (per-task retries plus a small allowance
        # for deaths between tasks).
        max_restarts = n_workers + MAX_TASK_RETRIES * len(tasks)
        claims = ctx.Array("q", [-1] * (n_workers + max_restarts))
        task_q = ctx.Queue()
        result_q = ctx.Queue()
        for task in tasks:
            task_q.put(
                (task.index, task.point, task.seed,
                 refs.get(task.point.workload))
            )
        state = _QueueState(
            ctx=ctx,
            claims=claims,
            task_q=task_q,
            result_q=result_q,
            refs=refs,
            max_restarts=max_restarts,
        )
        clean = False
        try:
            with reg.span(
                "exec.runner.pool_s", label=f"queue jobs={n_workers}"
            ):
                for _ in range(n_workers):
                    state.spawn()
                self._collect(tasks, state, on_result, should_cancel, reg)
            clean = True
        finally:
            state.shutdown(clean=clean)
            if publisher is not None:
                publisher.close()

    def _collect(
        self,
        tasks: Sequence[PointTask],
        state: "_QueueState",
        on_result: OnResult,
        should_cancel: Callable[[], bool] | None,
        reg,
    ) -> None:
        t0 = time.perf_counter()
        by_index = {task.index: task for task in tasks}
        done: set[int] = set()
        while len(done) < len(tasks):
            if self._cancelled(should_cancel):
                raise SweepCancelled(
                    f"sweep cancelled with {len(tasks) - len(done)} "
                    "point(s) unfinished"
                )
            try:
                msg = state.result_q.get(timeout=CANCEL_POLL_S)
            except queue_lib.Empty:
                state.reap(by_index, done, reg)
                continue
            kind, slot, index = msg[0], msg[1], msg[2]
            if kind == "error":
                raise _point_error(by_index[index], msg[3])
            # A task re-queued after a worker death can, in a narrow
            # race, complete twice; deliver only the first result.
            if index in done:
                continue
            done.add(index)
            on_result(by_index[index], msg[3], time.perf_counter() - t0)


class _QueueState:
    """Worker bookkeeping for one :class:`QueueExecutor` batch."""

    def __init__(self, *, ctx, claims, task_q, result_q, refs, max_restarts):
        self.ctx = ctx
        self.claims = claims
        self.task_q = task_q
        self.result_q = result_q
        self.refs = refs
        self.max_restarts = max_restarts
        self.workers: dict = {}  # process -> claim slot
        self.retries: dict[int, int] = {}  # task index -> requeue count
        self.next_slot = 0
        self.spawned = 0

    def spawn(self):
        if self.next_slot >= len(self.claims):
            raise SweepError(
                "queue executor exhausted its worker-restart budget "
                f"({self.max_restarts} restarts)"
            )
        proc = self.ctx.Process(
            target=_queue_worker,
            args=(self.next_slot, self.claims, self.task_q, self.result_q),
            daemon=True,
        )
        self.workers[proc] = self.next_slot
        self.next_slot += 1
        self.spawned += 1
        proc.start()
        return proc

    def reap(self, by_index: dict, done: set, reg) -> None:
        """Replace dead workers; re-queue the task each one was holding."""
        for proc in [p for p in self.workers if p.exitcode is not None]:
            slot = self.workers.pop(proc)
            proc.join()
            with self.claims.get_lock():
                index = self.claims[slot]
                self.claims[slot] = -1
            if index >= 0 and index not in done:
                retries = self.retries.get(index, 0) + 1
                self.retries[index] = retries
                task = by_index[index]
                if retries > MAX_TASK_RETRIES:
                    raise _point_error(
                        task,
                        f"worker died {retries} time(s) running this "
                        f"point (last exit code {proc.exitcode})",
                    )
                self.task_q.put(
                    (task.index, task.point, task.seed,
                     self.refs.get(task.point.workload))
                )
            if len(done) < len(by_index):
                reg.counter("exec.executor.worker_restarts").inc()
                self.spawn()

    def shutdown(self, *, clean: bool) -> None:
        """Stop workers and release the queues.

        Clean exit: every result was received, so all workers are idle
        on ``task_q.get`` -- one ``None`` sentinel each releases them.
        Unclean (error/cancel): terminate outright; re-queued or
        undelivered work is abandoned by design.
        """
        if clean:
            for _ in self.workers:
                self.task_q.put(None)
        else:
            for proc in self.workers:
                if proc.is_alive():
                    proc.terminate()
        for proc in self.workers:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10)
        for q in (self.task_q, self.result_q):
            q.close()
            # Never hang the parent on a feeder thread draining into a
            # queue nobody will read again.
            q.cancel_join_thread()
