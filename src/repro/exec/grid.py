"""Grid specifications for the ``sweep`` CLI: axes -> sweep points.

A :class:`GridSpec` is the cross product of cache sizes x block sizes x
read-ahead x write-behind toggles over N copies of one application (the
Figure 6-8 family of experiments).  Points come out in a fixed nested
order -- block, cache, read-ahead, write-behind -- so tables, cache keys
and derived seeds never depend on argument order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exec.runner import AppWorkloadSpec, PointResult, SweepPointSpec
from repro.sim.config import CacheConfig, SimConfig, ssd_cache
from repro.sim.experiments import FIG8_BLOCK_SIZES_KB, FIG8_CACHE_SIZES_MB
from repro.util.rng import DEFAULT_SEED
from repro.util.tables import TextTable
from repro.util.units import KB, MB


def build_sim_config(
    *,
    cache_mb: float,
    block_kb: float,
    ssd: bool = False,
    read_ahead: bool = True,
    write_behind: bool = True,
    n_cpus: int = 1,
) -> SimConfig:
    """One :class:`SimConfig` from CLI/server-shaped knobs.

    Single source of truth for turning user-facing units (MB caches, KB
    blocks, on/off toggles) into a config: ``repro simulate``, the sweep
    grid and the sweep server all build configs here, which is what
    guarantees a job submitted over HTTP produces the *same* point key
    -- and therefore the same cached result and digest -- as the CLI.
    """
    kwargs = dict(
        block_bytes=int(block_kb * KB),
        read_ahead=read_ahead,
        write_behind=write_behind,
    )
    if ssd:
        cache = ssd_cache(int(cache_mb * MB), **kwargs)
    else:
        cache = CacheConfig(size_bytes=int(cache_mb * MB), **kwargs)
    return SimConfig(cache=cache).with_scheduler(n_cpus=n_cpus)


def _parse_axis(text: str, convert) -> tuple:
    """Parse a comma-separated CLI axis (``"4,8,16"``) into a tuple."""
    values = tuple(convert(tok.strip()) for tok in text.split(",") if tok.strip())
    if not values:
        raise ValueError(f"empty axis: {text!r}")
    return values


def parse_floats(text: str) -> tuple[float, ...]:
    return _parse_axis(text, float)


def parse_toggles(text: str) -> tuple[bool, ...]:
    """``"on,off"`` -> (True, False); accepts on/off, true/false, 1/0."""

    def one(tok: str) -> bool:
        low = tok.lower()
        if low in ("on", "true", "1", "yes"):
            return True
        if low in ("off", "false", "0", "no"):
            return False
        raise ValueError(f"bad toggle {tok!r} (want on/off)")

    values = _parse_axis(text, one)
    if len(set(values)) != len(values):
        raise ValueError(f"repeated toggle value in {text!r}")
    return values


@dataclass(frozen=True)
class GridSpec:
    """The cross product defining one sweep."""

    app: str = "venus"
    n_copies: int = 2
    scale: float = 0.25
    workload_seed: int = DEFAULT_SEED
    cache_sizes_mb: tuple[float, ...] = FIG8_CACHE_SIZES_MB
    block_sizes_kb: tuple[float, ...] = FIG8_BLOCK_SIZES_KB
    read_ahead: tuple[bool, ...] = (True,)
    write_behind: tuple[bool, ...] = (True,)
    ssd: bool = False
    n_cpus: int = 1

    @property
    def n_points(self) -> int:
        return (
            len(self.cache_sizes_mb)
            * len(self.block_sizes_kb)
            * len(self.read_ahead)
            * len(self.write_behind)
        )

    def points(self) -> list[SweepPointSpec]:
        workload = AppWorkloadSpec(
            app=self.app,
            scale=self.scale,
            seed=self.workload_seed,
            n_copies=self.n_copies,
        )
        kind = "SSD" if self.ssd else "mem"
        out = []
        for block_kb in self.block_sizes_kb:
            for cache_mb in self.cache_sizes_mb:
                for ra in self.read_ahead:
                    for wb in self.write_behind:
                        config = build_sim_config(
                            cache_mb=cache_mb,
                            block_kb=block_kb,
                            ssd=self.ssd,
                            read_ahead=ra,
                            write_behind=wb,
                            n_cpus=self.n_cpus,
                        )
                        label = (
                            f"{self.n_copies}x{self.app} {kind} "
                            f"{cache_mb:g}MB/{block_kb:g}KB "
                            f"ra={'on' if ra else 'off'} "
                            f"wb={'on' if wb else 'off'}"
                        )
                        out.append(
                            SweepPointSpec(
                                workload=workload, config=config, label=label
                            )
                        )
        return out


def render_sweep_table(results: list[PointResult], *, title: str = "sweep") -> str:
    """The result table the ``sweep`` CLI command prints."""
    table = TextTable(
        ["point", "idle(s)", "utilization", "hit%", "source", "sim(s)"],
        title=title,
    )
    for r in results:
        table.add_row(
            [
                r.label or r.key[:12],
                round(r.result.idle_seconds, 2),
                f"{r.result.utilization:.2%}",
                f"{r.result.cache.hit_fraction:.1%}",
                "cache" if r.cached else "run",
                "-" if r.cached else round(r.elapsed_s, 2),
            ]
        )
    return table.render()


def sweep_summary(results: list[PointResult]) -> str:
    """One line of accounting: how much work the memo cache saved."""
    n_cached = sum(1 for r in results if r.cached)
    n_run = len(results) - n_cached
    return (
        f"{len(results)} point(s): {n_run} simulated, "
        f"{n_cached} from cache"
    )
