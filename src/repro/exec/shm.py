"""Zero-copy workload fan-out over POSIX shared memory.

A parallel sweep ships *specs* to its workers, and before this module
every worker re-materialized each workload from its spec -- re-decoding
the same ASCII trace or re-generating the same synthetic workload once
per process.  Here the parent materializes each distinct workload's
columns **once**, publishes them into a
:class:`multiprocessing.shared_memory.SharedMemory` segment, and workers
attach read-only :class:`~repro.trace.array.TraceArray` views straight
onto the segment: no decode, no generation, no copy -- just a map.

Layout: one segment per distinct workload, holding every column of
every trace of that workload back to back, 64-byte aligned.  The
picklable :class:`SharedWorkload` ref (segment name + per-column
dtype/offset/count) is what crosses the process boundary -- a few
hundred bytes, like the specs it rides along with.

Lifecycle
---------
The parent's :class:`SegmentPublisher` owns every segment it creates and
``close()`` (idempotent, exception-safe) both closes and unlinks them;
the sweep runner calls it in a ``finally`` so success, failure and
Ctrl-C all clean up.  Workers attach by name and deliberately *keep*
their attachment (and its arrays) cached for the life of the process:
POSIX keeps the memory alive until the last map goes away, so the
parent unlinking early never invalidates a worker's view, and pool
shutdown releases everything.  Pool workers share the parent's
``multiprocessing`` resource tracker, so a worker's attach-time
register is a no-op against the parent's existing registration and the
parent's unlink remains the single point of cleanup -- workers must
*not* unregister segments they only borrowed.

Every failure path degrades: if shared memory is unavailable (platform,
``$REPRO_SHM=off``, ``/dev/shm`` full) or a worker cannot attach, the
worker falls back to materializing from the spec exactly as before --
the fan-out is a transport optimization and must never change results
or turn a runnable sweep into a failing one.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.obs.registry import get_registry
from repro.trace.array import _FIELDS, TraceArray

#: Column payload alignment inside a segment.
_ALIGN = 64

#: Values of ``$REPRO_SHM`` that disable the shared-memory path.
_OFF_VALUES = {"0", "off", "no", "none", "false", "disabled"}


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def shm_available() -> bool:
    """True when the shared-memory fan-out can be used at all."""
    if os.environ.get("REPRO_SHM", "").strip().lower() in _OFF_VALUES:
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:
        return False
    return True


@dataclass(frozen=True)
class SharedColumn:
    """One column's location inside a segment."""

    name: str
    dtype: str
    offset: int
    count: int


@dataclass(frozen=True)
class SharedWorkload:
    """Picklable handle to one workload published in shared memory."""

    segment: str
    #: one tuple of :class:`SharedColumn` per trace of the workload
    traces: tuple
    nbytes: int


class SegmentPublisher:
    """Parent-side owner of every segment one sweep publishes.

    ``publish()`` lays a workload's traces into a fresh segment and
    returns the :class:`SharedWorkload` ref to ship to workers;
    ``close()`` tears every segment down.  Publish failures return None
    (with a counter and a warning) so the caller simply skips sharing
    that workload.
    """

    def __init__(self) -> None:
        self._segments: list = []

    @property
    def open_segments(self) -> int:
        return len(self._segments)

    def publish(self, traces: Sequence[TraceArray]) -> SharedWorkload | None:
        reg = get_registry()
        try:
            from multiprocessing import shared_memory
        except ImportError:
            return None
        layout: list[tuple] = []
        cursor = 0
        for trace in traces:
            cols = []
            for name, _ in _FIELDS:
                col = getattr(trace, name)
                cursor = _align(cursor)
                cols.append(
                    SharedColumn(
                        name=name,
                        dtype=col.dtype.str,
                        offset=cursor,
                        count=len(col),
                    )
                )
                cursor += col.nbytes
            layout.append(tuple(cols))
        total = max(1, cursor)
        try:
            shm = shared_memory.SharedMemory(create=True, size=total)
            for trace, cols in zip(traces, layout):
                for ref in cols:
                    dst = np.ndarray(
                        (ref.count,),
                        dtype=np.dtype(ref.dtype),
                        buffer=shm.buf,
                        offset=ref.offset,
                    )
                    dst[:] = getattr(trace, ref.name)
        except OSError as exc:
            reg.counter("exec.shm.publish_errors").inc()
            warnings.warn(
                f"shared-memory publish failed ({exc}); workers will "
                "materialize this workload from its spec",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        self._segments.append(shm)
        reg.counter("exec.shm.segments_opened").inc()
        reg.counter("exec.shm.bytes_published").inc(total)
        reg.counter("exec.shm.workloads_published").inc()
        return SharedWorkload(
            segment=shm.name, traces=tuple(layout), nbytes=total
        )

    def close(self) -> None:
        """Close and unlink every published segment (idempotent)."""
        reg = get_registry()
        segments, self._segments = self._segments, []
        for shm in segments:
            for step in (shm.close, shm.unlink):
                try:
                    step()
                except (OSError, FileNotFoundError):
                    pass
            reg.counter("exec.shm.segments_closed").inc()

    def __enter__(self) -> "SegmentPublisher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- worker side -------------------------------------------------------------

#: Segment-name -> (SharedMemory, [TraceArray, ...]); one attachment per
#: segment for the life of the worker process (see the module docstring).
_ATTACHED: dict = {}


def attach_workload(ref: SharedWorkload) -> list[TraceArray]:
    """Attach to a published workload and return read-only trace views.

    Raises on any failure (missing segment, size mismatch); callers are
    expected to fall back to materializing from the spec.
    """
    cached = _ATTACHED.get(ref.segment)
    if cached is not None:
        return cached[1]
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=ref.segment)
    if shm.size < ref.nbytes:
        shm.close()
        raise ValueError(
            f"segment {ref.segment}: {shm.size} bytes mapped, "
            f"{ref.nbytes} expected"
        )
    traces: list[TraceArray] = []
    for cols in ref.traces:
        arrays = {}
        for col in cols:
            view = np.ndarray(
                (col.count,),
                dtype=np.dtype(col.dtype),
                buffer=shm.buf,
                offset=col.offset,
            )
            view.flags.writeable = False
            arrays[col.name] = view
        traces.append(TraceArray(**arrays))
    _ATTACHED[ref.segment] = (shm, traces)
    return traces
