"""Content-addressed on-disk store for :class:`SimulationResult`\\ s.

Layout (two-level fan-out keeps directories small even for huge sweeps)::

    <root>/<key[:2]>/<key>.pkl

where ``key`` is the hex point key from :mod:`repro.exec.keys`.  Each
entry is a pickle of ``{"key": ..., "result": SimulationResult}``; the
embedded key is checked on load so a renamed or corrupted file can never
alias another point.  Writes go through a temp file + ``os.replace`` so
concurrent workers (or concurrent sweeps) never observe a torn entry.

The root directory defaults to ``$REPRO_CACHE_DIR``, falling back to
``~/.cache/repro/results`` (honouring ``$XDG_CACHE_HOME``).
"""

from __future__ import annotations

import os
import pickle
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.registry import get_registry
from repro.sim.metrics import SimulationResult

#: Everything that can legitimately go wrong while decoding an entry:
#: filesystem errors plus the full range of unpickling failures (a
#: truncated file raises EOFError, a renamed class AttributeError/
#: ImportError, garbage bytes UnpicklingError or ValueError...).
_READ_ERRORS = (
    OSError, ValueError, KeyError, EOFError, AttributeError,
    ImportError, IndexError, pickle.UnpicklingError,
)

#: What a failed *store* can raise: filesystem errors and serialization
#: errors (a local/lambda object raises AttributeError from pickle).
#: Anything else (a bug) must propagate.
_WRITE_ERRORS = (OSError, pickle.PicklingError, TypeError, AttributeError)


def default_cache_dir() -> Path:
    """Resolve the result-cache root from the environment."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "results"


@dataclass
class CacheCounters:
    """Hit/miss/store accounting for one :class:`ResultCache` lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: entries that existed on disk but could not be decoded (counted as
    #: misses too -- a corrupt entry costs a re-run, never a wrong result)
    corrupt: int = 0
    #: stores that failed (filesystem or serialization error)
    store_errors: int = 0


@dataclass
class ResultCache:
    """Memoized simulation results, addressed by content key."""

    root: Path = field(default_factory=default_cache_dir)
    counters: CacheCounters = field(default_factory=CacheCounters)
    #: keys whose corrupt entry was already warned about -- one
    #: RuntimeWarning per key (mirroring the per-segment shm attach
    #: warning), not one per lookup, so a hot key with a rotten entry
    #: does not flood a long sweep; every occurrence is still counted.
    _corrupt_warned: set = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> SimulationResult | None:
        """The stored result for ``key``, or None on miss.

        Unreadable or mismatched entries count as misses: a stale or
        corrupted file must never poison a sweep, only cost a re-run.
        Unlike a plain absent entry, a *corrupt* one is surfaced --
        every occurrence bumps ``exec.cache.corrupt_entries`` and the
        first occurrence per key emits one RuntimeWarning -- so silent
        cache rot is visible without flooding.

        A hit refreshes the entry's timestamps (``os.utime``), giving
        tiered caches (:mod:`repro.exec.cache_tiers`) a reliable LRU
        clock even on ``noatime``/``relatime`` mounts.
        """
        path = self.path_for(key)
        try:
            fh = path.open("rb")
        except FileNotFoundError:
            self.counters.misses += 1
            return None
        try:
            with fh:
                entry = pickle.load(fh)
            if entry.get("key") != key:
                raise ValueError("key mismatch")
            result = entry["result"]
            if not isinstance(result, SimulationResult):
                raise ValueError("not a SimulationResult")
        except _READ_ERRORS as exc:
            self.counters.misses += 1
            self.counters.corrupt += 1
            get_registry().counter("exec.cache.corrupt_entries").inc()
            if key not in self._corrupt_warned:
                self._corrupt_warned.add(key)
                warnings.warn(
                    f"result cache entry {path} is unreadable "
                    f"({type(exc).__name__}: {exc}); treating as a miss",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return None
        self.counters.hits += 1
        try:
            os.utime(path)
        except OSError:
            pass
        return result

    def put(self, key: str, result: SimulationResult) -> Path | None:
        """Store ``result`` under ``key`` atomically; returns the path.

        A failed store (filesystem full/read-only, unpicklable result)
        degrades to a warning plus a counter and returns None -- the
        sweep already has its result; losing the memo must not lose the
        run.  Genuinely unexpected exceptions still propagate.
        """
        path = self.path_for(key)
        tmp: str | None = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(
                    {"key": key, "result": result},
                    fh,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            os.replace(tmp, path)
        except BaseException as exc:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            if isinstance(exc, _WRITE_ERRORS):
                self.counters.store_errors += 1
                get_registry().counter("exec.cache.store_errors").inc()
                warnings.warn(
                    f"result cache store failed for key {key[:16]}... at "
                    f"{path} ({type(exc).__name__}: {exc})",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return None
            raise
        self.counters.stores += 1
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))
