"""Tiered result caching: a local disk tier in front of a shared tier.

The DVC-remote shape: every process keeps a fast **local** tier (first
consulted, always written) and may layer a **shared** directory tier
behind it -- a network mount or other common directory that many hosts
populate and read.  ``get`` reads through (local miss falls back to the
shared tier, and a shared hit is *promoted* into the local tier);
``put`` writes back to both.

Each tier is a :class:`~repro.exec.cache.ResultCache` directory plus:

* **GC under a size budget** -- :meth:`CacheTier.gc` evicts least
  recently *used* entries (the cache touches atime+mtime on every hit,
  so the LRU clock works even on ``noatime`` mounts) until the tier fits
  its budget.  The most recently used entry is never evicted, so the
  access that triggered a GC cannot evict its own entry.  The budget is
  a soft target: the surviving MRU entry may alone exceed a tiny budget.
* **Compaction** -- :meth:`CacheTier.compact` gathers small loose
  entries into a single packfile (``pack/pack-<digest>.pack`` plus a
  JSON offset index), turning thousands of tiny files into one
  sequential read.  Loose entries shadow pack entries, so re-storing a
  key after compaction simply wins.

Counters (per tier name): ``exec.cache.<tier>.{hits,misses,stores,
evictions,promotions,writebacks,compactions,packed_entries}``.

Selection: CLI ``--cache-tier DIR[=BUDGET]`` (repeatable: first is the
local tier, second the shared tier) > ``$REPRO_CACHE_TIERS`` (same
entries, comma-separated).  Budgets accept ``K``/``M``/``G`` suffixes.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import warnings
from pathlib import Path
from typing import Sequence

from repro.exec.cache import _READ_ERRORS, ResultCache
from repro.obs.registry import get_registry
from repro.sim.metrics import SimulationResult

#: Environment fallback for the tier stack (comma-separated
#: ``DIR[=BUDGET]`` entries, local first).
TIERS_ENV = "REPRO_CACHE_TIERS"

#: Loose entries at or below this size are candidates for packing.
PACK_THRESHOLD_BYTES = 64 * 1024

_SIZE_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3}


def parse_size(text: str) -> int:
    """``"64M"`` -> bytes; bare integers are bytes already."""
    cleaned = str(text).strip().lower()
    if not cleaned:
        raise ValueError("empty size")
    scale = 1
    if cleaned[-1] in _SIZE_SUFFIXES:
        scale = _SIZE_SUFFIXES[cleaned[-1]]
        cleaned = cleaned[:-1]
    try:
        value = int(float(cleaned) * scale)
    except ValueError:
        raise ValueError(f"unparseable size {text!r}") from None
    if value <= 0:
        raise ValueError(f"size must be positive, got {text!r}")
    return value


class CacheTier:
    """One cache directory: loose entries + packfiles + budgeted GC."""

    def __init__(
        self,
        root: str | Path,
        *,
        name: str = "local",
        budget_bytes: int | None = None,
    ) -> None:
        self.name = name
        self.cache = ResultCache(Path(root))
        self.budget_bytes = budget_bytes
        self._pack_index: dict[str, tuple[Path, int, int]] | None = None
        self._corrupt_warned: set[str] = set()

    @property
    def root(self) -> Path:
        return self.cache.root

    @property
    def pack_dir(self) -> Path:
        return self.root / "pack"

    def _counter(self, what: str):
        return get_registry().counter(f"exec.cache.{self.name}.{what}")

    # -- lookup / store ------------------------------------------------------

    def get(self, key: str) -> SimulationResult | None:
        result = None
        if self.cache.path_for(key).exists():
            result = self.cache.get(key)  # touches the LRU clock on hit
        if result is None:
            result = self._pack_get(key)
        if result is None:
            self._counter("misses").inc()
            return None
        self._counter("hits").inc()
        return result

    def put(self, key: str, result: SimulationResult) -> Path | None:
        path = self.cache.put(key, result)
        if path is not None:
            self._counter("stores").inc()
            self.gc()
        return path

    def __contains__(self, key: str) -> bool:
        if key in self.cache:
            return True
        if self._pack_index is None:
            self._load_pack_index()
        return key in self._pack_index

    # -- GC under a size budget ----------------------------------------------

    def _units(self) -> list[tuple[Path, int, float]]:
        """Evictable units as ``(path, bytes, lru_stamp)``.

        A unit is one loose entry or one packfile (with its index); the
        stamp is the freshest of atime/mtime so hits recorded via
        ``os.utime`` count even where the mount suppresses atime.
        """
        units = []
        for pattern, base in (("*/*.pkl", self.root), ("*.pack", self.pack_dir)):
            if not base.is_dir():
                continue
            for path in base.glob(pattern):
                try:
                    st = path.stat()
                except OSError:
                    continue
                units.append(
                    (path, st.st_size, max(st.st_atime, st.st_mtime))
                )
        return units

    def total_bytes(self) -> int:
        return sum(size for _, size, _ in self._units())

    def gc(self) -> int:
        """Evict LRU units until the tier fits its budget; count evictions.

        No-op without a budget.  The single most recently used unit is
        always spared (a just-read or just-written entry must survive
        the GC its own access triggered).
        """
        if self.budget_bytes is None:
            return 0
        units = self._units()
        total = sum(size for _, size, _ in units)
        if total <= self.budget_bytes:
            return 0
        protected = max(units, key=lambda u: u[2])[0] if units else None
        evicted = 0
        for path, size, _ in sorted(units, key=lambda u: u[2]):
            if total <= self.budget_bytes:
                break
            if path == protected:
                continue
            evicted += self._evict_unit(path)
            total -= size
        if evicted:
            self._counter("evictions").add(evicted)
        return evicted

    def _evict_unit(self, path: Path) -> int:
        """Remove one unit; returns the number of *entries* it held."""
        entries = 1
        if path.suffix == ".pack":
            index_path = path.with_suffix(".json")
            try:
                entries = len(json.loads(index_path.read_text())["entries"])
            except (OSError, ValueError, KeyError, TypeError):
                entries = 1
            for victim in (path, index_path):
                try:
                    victim.unlink()
                except OSError:
                    pass
            self._pack_index = None
            return entries
        try:
            path.unlink()
        except OSError:
            return 0
        return entries

    # -- packfile compaction -------------------------------------------------

    def compact(
        self,
        *,
        max_entry_bytes: int = PACK_THRESHOLD_BYTES,
        min_entries: int = 2,
    ) -> int:
        """Merge small loose entries into one packfile; returns entries packed.

        The pack holds each entry's original pickle bytes verbatim at a
        recorded offset, so a packed entry round-trips bit-identically.
        Loose files are unlinked only after the pack and its index are
        durably in place.
        """
        small: list[tuple[str, Path]] = []
        for path in self.root.glob("*/*.pkl"):
            try:
                if path.stat().st_size <= max_entry_bytes:
                    small.append((path.stem, path))
            except OSError:
                continue
        if len(small) < min_entries:
            return 0
        small.sort()
        blobs: list[tuple[str, bytes]] = []
        for key, path in small:
            try:
                blobs.append((key, path.read_bytes()))
            except OSError:
                continue
        if len(blobs) < min_entries:
            return 0
        entries: dict[str, tuple[int, int]] = {}
        offset = 0
        payload = bytearray()
        for key, blob in blobs:
            entries[key] = (offset, len(blob))
            payload.extend(blob)
            offset += len(blob)
        import hashlib

        pack_id = hashlib.sha256(bytes(payload)).hexdigest()[:16]
        self.pack_dir.mkdir(parents=True, exist_ok=True)
        pack_path = self.pack_dir / f"pack-{pack_id}.pack"
        self._write_atomic(pack_path, bytes(payload))
        self._write_atomic(
            pack_path.with_suffix(".json"),
            json.dumps(
                {"pack": pack_path.name, "entries": entries}
            ).encode(),
        )
        packed_keys = set(entries)
        for key, path in small:
            if key not in packed_keys:
                continue
            try:
                path.unlink()
            except OSError:
                pass
        self._pack_index = None
        self._counter("compactions").inc()
        self._counter("packed_entries").add(len(entries))
        return len(entries)

    def _write_atomic(self, path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _load_pack_index(self) -> None:
        index: dict[str, tuple[Path, int, int]] = {}
        if self.pack_dir.is_dir():
            for idx_path in sorted(self.pack_dir.glob("*.json")):
                try:
                    data = json.loads(idx_path.read_text())
                    pack_path = self.pack_dir / data["pack"]
                    for key, (off, length) in data["entries"].items():
                        index[key] = (pack_path, int(off), int(length))
                except (OSError, ValueError, KeyError, TypeError):
                    continue  # a corrupt index only costs re-runs
        self._pack_index = index

    def _pack_get(self, key: str) -> SimulationResult | None:
        if self._pack_index is None:
            self._load_pack_index()
        hit = self._pack_index.get(key)
        if hit is None:
            return None
        pack_path, offset, length = hit
        try:
            with open(pack_path, "rb") as fh:
                fh.seek(offset)
                blob = fh.read(length)
            entry = pickle.loads(blob)
            if entry.get("key") != key:
                raise ValueError("key mismatch")
            result = entry["result"]
            if not isinstance(result, SimulationResult):
                raise ValueError("not a SimulationResult")
        except FileNotFoundError:
            # The pack was evicted (possibly by another process); the
            # index is stale, not corrupt.
            self._pack_index = None
            return None
        except _READ_ERRORS as exc:
            get_registry().counter("exec.cache.corrupt_entries").inc()
            if key not in self._corrupt_warned:
                self._corrupt_warned.add(key)
                warnings.warn(
                    f"packed cache entry {key[:16]}... in {pack_path} is "
                    f"unreadable ({type(exc).__name__}: {exc}); treating "
                    "as a miss",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return None
        try:
            os.utime(pack_path)  # the whole pack is the LRU unit
        except OSError:
            pass
        return result


class TieredResultCache:
    """ResultCache-compatible read-through / write-back tier stack.

    ``get``: local tier first; on a miss, the shared tier -- a shared
    hit is promoted (copied) into the local tier so the next read is
    local.  ``put``: written to the local tier and written back to the
    shared tier, so one host's computation warms every host.
    """

    def __init__(self, local: CacheTier, shared: CacheTier | None = None):
        self.local = local
        self.shared = shared

    @property
    def tiers(self) -> list[CacheTier]:
        return [t for t in (self.local, self.shared) if t is not None]

    @property
    def root(self) -> Path:
        return self.local.root

    def get(self, key: str) -> SimulationResult | None:
        result = self.local.get(key)
        if result is not None:
            return result
        if self.shared is not None:
            result = self.shared.get(key)
            if result is not None:
                self.local.put(key, result)
                get_registry().counter("exec.cache.local.promotions").inc()
                return result
        return None

    def put(self, key: str, result: SimulationResult) -> Path | None:
        path = self.local.put(key, result)
        if self.shared is not None:
            if self.shared.put(key, result) is not None:
                get_registry().counter("exec.cache.shared.writebacks").inc()
        return path

    def __contains__(self, key: str) -> bool:
        return any(key in tier for tier in self.tiers)


# -- spec parsing ------------------------------------------------------------


def parse_tier_entry(text: str) -> tuple[str, int | None]:
    """``"DIR"`` or ``"DIR=BUDGET"`` -> ``(dir, budget_bytes | None)``."""
    entry = text.strip()
    if not entry:
        raise ValueError("empty cache-tier entry")
    if "=" in entry:
        path, _, budget = entry.rpartition("=")
        if not path:
            raise ValueError(f"cache-tier entry {text!r} has no directory")
        return path, parse_size(budget)
    return entry, None


def tiered_cache_from_spec(
    spec: str | Sequence[str],
) -> TieredResultCache:
    """Build the tier stack from CLI/env entries (local first, then shared)."""
    if isinstance(spec, str):
        entries = [e for e in spec.split(",") if e.strip()]
    else:
        entries = [e for e in spec if str(e).strip()]
    if not entries:
        raise ValueError("cache-tier spec names no directories")
    if len(entries) > 2:
        raise ValueError(
            f"at most two cache tiers (local, shared); got {len(entries)}"
        )
    parsed = [parse_tier_entry(str(e)) for e in entries]
    local = CacheTier(parsed[0][0], name="local", budget_bytes=parsed[0][1])
    shared = None
    if len(parsed) == 2:
        shared = CacheTier(
            parsed[1][0], name="shared", budget_bytes=parsed[1][1]
        )
    return TieredResultCache(local, shared)


def resolve_cache_tiers(
    cli_tiers: Sequence[str] | str | None = None,
) -> TieredResultCache | None:
    """Tier stack from CLI entries > ``$REPRO_CACHE_TIERS`` > None."""
    if cli_tiers:
        return tiered_cache_from_spec(cli_tiers)
    env = os.environ.get(TIERS_ENV, "").strip()
    if env:
        return tiered_cache_from_spec(env)
    return None
