"""Parallel sweep execution with per-point deterministic seeding.

The unit of work is a :class:`SweepPointSpec` -- a workload specification
plus a :class:`~repro.sim.config.SimConfig`.  A :class:`SweepRunner` fans
independent points out over a :class:`concurrent.futures.ProcessPoolExecutor`
(or runs them inline when ``jobs == 1``) and memoizes results in an
optional :class:`~repro.exec.cache.ResultCache`.

Determinism
-----------
Each point's simulator seed is a pure function of what is being
simulated -- by default its config's own ``seed`` field -- never of
worker identity or completion order, so serial and parallel runs of the
same sweep produce bit-identical :class:`SimulationResult`\\ s, and a
sweep reproduces direct ``simulate()`` calls exactly.

Deliberately, every point of a grid sees the *same* disk-latency draws
(common random numbers): differences across an ablation are then
attributable to the configuration, not to the random stream, and the
paper's paired comparisons (Figure 8's near-coincident 4K/8K curves,
the write-behind ablation) stay paired.  Deriving a distinct stream per
point was tried and rejected: it injects cross-point variance that can
swamp small config effects.  Set ``SweepRunner.seed`` to override every
point's stream uniformly and sample a different one.

Workload transport
------------------
Workloads cross the process boundary as small *specs*, not as traces: a
worker materializes (and memoizes, per process) the trace arrays from the
spec, so a 14-point sweep ships a few hundred bytes per point instead of
megabytes of columns.
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Sequence, Union

from repro.exec.cache import ResultCache
from repro.exec.keys import point_key
from repro.obs.registry import get_registry
from repro.sim.config import SimConfig
from repro.sim.metrics import SimulationResult
from repro.sim.procmodel import relabel_copies
from repro.sim.system import simulate
from repro.trace.array import TraceArray
from repro.util.errors import SweepError
from repro.util.rng import DEFAULT_SEED


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit ``jobs`` > ``$REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(env) if env else (os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


# -- workload specifications -------------------------------------------------


@dataclass(frozen=True)
class AppWorkloadSpec:
    """N non-sharing copies of one modelled application."""

    app: str
    scale: float
    seed: int = DEFAULT_SEED
    n_copies: int = 1

    def key_material(self) -> dict:
        return {
            "kind": "app",
            "app": self.app,
            "scale": self.scale,
            "seed": self.seed,
            "n_copies": self.n_copies,
        }

    def materialize(self) -> list[TraceArray]:
        workload = generated_workload(self.app, self.scale, self.seed)
        if self.n_copies == 1:
            return [workload.trace]
        return relabel_copies(workload.trace, self.n_copies)

    def cpu_seconds(self) -> float:
        """Total CPU demand of all copies (the no-idle baseline)."""
        return self.n_copies * generated_workload(
            self.app, self.scale, self.seed
        ).cpu_seconds


@dataclass(frozen=True)
class TraceFileSpec:
    """Trace files replayed as one process each (the ``simulate`` CLI).

    The key material hashes the file *contents*, so editing a trace file
    invalidates its cached results even at the same path.
    """

    paths: tuple[str, ...]
    share_files: bool = False
    file_id_stride: int = 1_000_000

    def key_material(self) -> dict:
        return {
            "kind": "files",
            "sha256": [self._digest(p) for p in self.paths],
            "share_files": self.share_files,
            "file_id_stride": self.file_id_stride,
        }

    @staticmethod
    def _digest(path: str) -> str:
        h = hashlib.sha256()
        with open(path, "rb") as fh:
            for chunk in iter(lambda: fh.read(1 << 20), b""):
                h.update(chunk)
        return h.hexdigest()

    def materialize(self) -> list[TraceArray]:
        from repro.trace.io import read_trace_array

        traces = []
        for i, path in enumerate(self.paths):
            trace = read_trace_array(path)
            if len(trace.process_ids()) != 1:
                raise SweepError(f"{path}: need single-process traces")
            trace = trace.with_process_id(i + 1)
            if not self.share_files:
                # Distinct instances must not alias each other's data
                # sets (the paper ran copies "not sharing data sets").
                cols = trace.columns().copy()
                cols["file_id"] = trace.file_id + i * self.file_id_stride
                trace = type(trace)(**cols)
            traces.append(trace)
        return traces


WorkloadSpecLike = Union[AppWorkloadSpec, TraceFileSpec]

#: Per-process memo of generated workloads, keyed by (app, scale, seed).
#: Each pool worker generates a given workload once, no matter how many
#: sweep points replay it.
_WORKLOADS: dict = {}


def generated_workload(app: str, scale: float, seed: int):
    """Memoized :func:`generate_workload` (per process)."""
    from repro.workloads.base import generate_workload

    key = (app, scale, seed)
    if key not in _WORKLOADS:
        _WORKLOADS[key] = generate_workload(app, scale=scale, seed=seed)
    return _WORKLOADS[key]


# -- sweep points ------------------------------------------------------------


@dataclass(frozen=True)
class SweepPointSpec:
    """One independent ``(workload, config)`` simulation."""

    workload: WorkloadSpecLike
    config: SimConfig
    #: presentation only -- never part of the cache key
    label: str = ""

    def key(self, sweep_seed: int | None) -> str:
        return point_key(self.config, self.workload.key_material(), sweep_seed)


@dataclass(frozen=True)
class PointResult:
    """Outcome of one sweep point."""

    point: SweepPointSpec
    result: SimulationResult
    key: str
    sim_seed: int
    cached: bool
    elapsed_s: float

    @property
    def label(self) -> str:
        return self.point.label


def _simulate_point(point: SweepPointSpec, sim_seed: int) -> SimulationResult:
    """Worker entry: materialize the workload and run the simulator."""
    traces = point.workload.materialize()
    return simulate(traces, point.config.with_seed(sim_seed))


# -- the runner --------------------------------------------------------------


@dataclass
class SweepRunner:
    """Fan independent sweep points out over processes, memoizing results.

    ``jobs=None`` resolves via :func:`resolve_jobs` (``$REPRO_JOBS`` or
    the CPU count); ``jobs=1`` runs inline with no pool.  ``cache=None``
    disables memoization.  ``seed=None`` (the default) simulates every
    point with its config's own seed; an int overrides all of them with
    one shared stream (see the module docstring).
    """

    jobs: int | None = 1
    cache: ResultCache | None = None
    seed: int | None = None
    #: points simulated (not served from cache) over this runner's lifetime
    simulated: int = field(default=0, init=False)
    #: points served from the result cache
    cache_hits: int = field(default=0, init=False)

    def effective_jobs(self, n_points: int) -> int:
        return min(resolve_jobs(self.jobs), max(1, n_points))

    def sim_seed(self, point: SweepPointSpec) -> int:
        """The point's simulator seed (shared across the sweep on
        purpose -- see the module docstring on common random numbers)."""
        return self.seed if self.seed is not None else point.config.seed

    def run_point(self, point: SweepPointSpec) -> PointResult:
        return self.run([point])[0]

    def run(self, points: Sequence[SweepPointSpec]) -> list[PointResult]:
        """Run all points (cache, then pool) and return them in order."""
        reg = get_registry()
        points = list(points)
        keys = [p.key(self.seed) for p in points]
        seeds = [self.sim_seed(p) for p in points]
        results: list[SimulationResult | None] = [None] * len(points)
        cached = [False] * len(points)
        elapsed = [0.0] * len(points)

        todo: list[int] = []
        for i, key in enumerate(keys):
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                results[i] = hit
                cached[i] = True
                self.cache_hits += 1
                reg.counter("exec.runner.cache_hits").inc()
            else:
                todo.append(i)

        if todo:
            n_jobs = self.effective_jobs(len(todo))
            if n_jobs == 1:
                for i in todo:
                    t0 = time.perf_counter()
                    with reg.span(
                        "exec.runner.point_s",
                        label=points[i].label or keys[i][:12],
                    ):
                        results[i] = self._guarded(points[i], seeds[i])
                    elapsed[i] = time.perf_counter() - t0
            else:
                # Workers are separate processes: their in-process
                # metrics do not flow back; only per-point wall time and
                # the counters below are recorded here.
                with reg.span("exec.runner.pool_s", label=f"jobs={n_jobs}"):
                    self._run_pool(points, seeds, todo, n_jobs, results, elapsed)
            for i in todo:
                if self.cache is not None:
                    self.cache.put(keys[i], results[i])
                self.simulated += 1
                reg.counter("exec.runner.points_simulated").inc()
                reg.emit(
                    "sweep_point",
                    label=points[i].label or keys[i][:12],
                    cached=False,
                    elapsed_s=elapsed[i],
                )

        return [
            PointResult(
                point=points[i],
                result=results[i],
                key=keys[i],
                sim_seed=seeds[i],
                cached=cached[i],
                elapsed_s=elapsed[i],
            )
            for i in range(len(points))
        ]

    def _guarded(self, point: SweepPointSpec, seed: int) -> SimulationResult:
        try:
            return _simulate_point(point, seed)
        except SweepError:
            raise
        except Exception as exc:
            raise SweepError(
                f"sweep point {point.label or point.workload!r} failed: {exc}"
            ) from exc

    def _run_pool(
        self,
        points: list[SweepPointSpec],
        seeds: list[int],
        todo: list[int],
        n_jobs: int,
        results: list,
        elapsed: list[float],
    ) -> None:
        t0 = time.perf_counter()
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            futures = {
                pool.submit(_simulate_point, points[i], seeds[i]): i for i in todo
            }
            # Fail fast: the first broken point cancels everything still
            # queued instead of letting the pool grind on (or hang).
            done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
            first_error: tuple[int, BaseException] | None = None
            for future in done:
                i = futures[future]
                exc = future.exception()
                if exc is not None:
                    if first_error is None or todo.index(i) < todo.index(
                        first_error[0]
                    ):
                        first_error = (i, exc)
                else:
                    results[i] = future.result()
                    elapsed[i] = time.perf_counter() - t0
            if first_error is not None:
                for future in not_done:
                    future.cancel()
                i, exc = first_error
                point = points[i]
                raise SweepError(
                    f"sweep point {point.label or point.workload!r} failed: {exc}"
                ) from exc
