"""Parallel sweep execution with per-point deterministic seeding.

The unit of work is a :class:`SweepPointSpec` -- a workload specification
plus a :class:`~repro.sim.config.SimConfig`.  A :class:`SweepRunner`
resolves cache hits, keys and seeds, then hands the remaining points to
a pluggable :class:`~repro.exec.executor.Executor` backend (serial /
process pool / task queue -- see :mod:`repro.exec.executor`) and
memoizes results in an optional :class:`~repro.exec.cache.ResultCache`
(or tiered stack, :mod:`repro.exec.cache_tiers`).

Determinism
-----------
Each point's simulator seed is a pure function of what is being
simulated -- by default its config's own ``seed`` field -- never of
worker identity or completion order, so serial and parallel runs of the
same sweep produce bit-identical :class:`SimulationResult`\\ s, and a
sweep reproduces direct ``simulate()`` calls exactly.

Deliberately, every point of a grid sees the *same* disk-latency draws
(common random numbers): differences across an ablation are then
attributable to the configuration, not to the random stream, and the
paper's paired comparisons (Figure 8's near-coincident 4K/8K curves,
the write-behind ablation) stay paired.  Deriving a distinct stream per
point was tried and rejected: it injects cross-point variance that can
swamp small config effects.  Set ``SweepRunner.seed`` to override every
point's stream uniformly and sample a different one.

Workload transport
------------------
Workloads cross the process boundary as small *specs*, not as traces: a
14-point sweep ships a few hundred bytes per point instead of megabytes
of columns.  When the pool path runs, the parent materializes each
distinct workload **once** and publishes its columns over
:mod:`multiprocessing.shared_memory` (:mod:`repro.exec.shm`); workers
attach read-only views instead of re-decoding or re-generating.  When
shared memory is unavailable -- or a worker cannot attach -- the worker
falls back to materializing from the spec exactly as before, through a
small per-process LRU memo.  Either way the trace rehydration itself
goes through the compiled trace store (:mod:`repro.trace.store`) when
the content-addressed compile cache is enabled, so warm runs skip ASCII
decode and workload generation entirely.
"""

from __future__ import annotations

import hashlib
import os
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Sequence, Union

from repro.exec.cache import ResultCache
from repro.exec.executor import (
    PointTask,
    make_executor,
    publish_workloads,
    resolve_executor_name,
)
from repro.exec.keys import point_key
from repro.exec.shm import (
    SegmentPublisher,
    SharedWorkload,
    attach_workload,
    shm_available,
)
from repro.obs.registry import get_registry
from repro.sim.config import SimConfig
from repro.sim.metrics import SimulationResult
from repro.sim.procmodel import relabel_copies
from repro.sim.system import simulate
from repro.trace.array import TraceArray
from repro.util.errors import SweepCancelled, SweepError
from repro.util.rng import DEFAULT_SEED


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit ``jobs`` > ``$REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(env) if env else (os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


# -- workload specifications -------------------------------------------------


@dataclass(frozen=True)
class AppWorkloadSpec:
    """N non-sharing copies of one modelled application."""

    app: str
    scale: float
    seed: int = DEFAULT_SEED
    n_copies: int = 1

    def key_material(self) -> dict:
        return {
            "kind": "app",
            "app": self.app,
            "scale": self.scale,
            "seed": self.seed,
            "n_copies": self.n_copies,
        }

    def materialize(self) -> list[TraceArray]:
        workload = generated_workload(self.app, self.scale, self.seed)
        if self.n_copies == 1:
            return [workload.trace]
        return relabel_copies(workload.trace, self.n_copies)

    def cpu_seconds(self) -> float:
        """Total CPU demand of all copies (the no-idle baseline)."""
        return self.n_copies * generated_workload(
            self.app, self.scale, self.seed
        ).cpu_seconds


@dataclass(frozen=True)
class TraceFileSpec:
    """Trace files replayed as one process each (the ``simulate`` CLI).

    The key material hashes the file *contents* (streamed in bounded
    chunks -- a multi-gigabyte trace never has to fit in memory to be
    keyed), so editing a trace file invalidates its cached results even
    at the same path.  Compiled store files (``.rpt``) are keyed by the
    source digest recorded in their header, so a compiled trace and the
    ASCII file it came from produce the *same* point key and hit the
    same result-cache entries.  ``use_store`` routes ASCII inputs
    through the content-addressed compile cache (decode once, mmap ever
    after); it is an execution detail and never part of the key.
    """

    paths: tuple[str, ...]
    share_files: bool = False
    file_id_stride: int = 1_000_000
    use_store: bool = False

    def key_material(self) -> dict:
        return {
            "kind": "files",
            "sha256": [self._digest(p) for p in self.paths],
            "share_files": self.share_files,
            "file_id_stride": self.file_id_stride,
        }

    @staticmethod
    def _digest(path: str) -> str:
        from repro.trace.store import (
            file_digest,
            is_store_file,
            read_store_header,
        )

        if is_store_file(path):
            source = read_store_header(path).source_sha256
            if source:
                return source
        return file_digest(path)

    def _load(self, path: str) -> TraceArray:
        from repro.trace.store import (
            TraceStoreCache,
            is_store_file,
            load_compiled,
        )

        if is_store_file(path):
            return load_compiled(path).trace
        if self.use_store:
            return TraceStoreCache.default().get_or_compile_file(path)
        from repro.trace.io import read_trace_array

        return read_trace_array(path)

    def materialize(self) -> list[TraceArray]:
        traces = []
        for i, path in enumerate(self.paths):
            trace = self._load(path)
            if len(trace.process_ids()) != 1:
                raise SweepError(f"{path}: need single-process traces")
            trace = trace.with_process_id(i + 1)
            if not self.share_files:
                # Distinct instances must not alias each other's data
                # sets (the paper ran copies "not sharing data sets").
                cols = trace.columns().copy()
                cols["file_id"] = trace.file_id + i * self.file_id_stride
                trace = type(trace)(**cols)
            traces.append(trace)
        return traces


WorkloadSpecLike = Union[AppWorkloadSpec, TraceFileSpec]


def _memo_capacity() -> int:
    """Workload-memo bound: ``$REPRO_WORKLOAD_MEMO`` (default 8)."""
    env = os.environ.get("REPRO_WORKLOAD_MEMO", "").strip()
    try:
        return max(1, int(env)) if env else 8
    except ValueError:
        return 8


class _WorkloadMemo:
    """Small per-process LRU of generated workloads.

    A long sweep over many distinct apps/scales/seeds used to grow every
    worker's RSS without bound (each entry holds full trace columns);
    bounding the memo keeps workers flat while still making the common
    case -- many points replaying one workload -- a single generation.
    """

    def __init__(self) -> None:
        self._entries: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def get(self, key):
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        capacity = _memo_capacity()
        while len(self._entries) > capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


#: Per-process memo of generated workloads, keyed by (app, scale, seed).
#: Each pool worker generates a given workload at most once per sweep,
#: no matter how many points replay it; see :class:`_WorkloadMemo` for
#: the bound.
_WORKLOADS = _WorkloadMemo()


def clear_workload_memo() -> None:
    """Drop this process's generated-workload memo (tests, benchmarks)."""
    _WORKLOADS.clear()


def _workload_store_digest(app: str, scale: float, seed: int) -> str:
    """Content key for a generated workload in the compiled trace store.

    Keyed on the generation parameters plus the store format version and
    the package-wide code tag, so editing any source invalidates stored
    workloads exactly like it invalidates cached results.
    """
    from repro.exec.keys import canonical_json, code_version_tag
    from repro.trace.store import STORE_VERSION

    material = {
        "kind": "generated",
        "app": app,
        "scale": scale,
        "seed": seed,
        "store_version": STORE_VERSION,
        "code_version": code_version_tag(),
    }
    return hashlib.sha256(canonical_json(material).encode()).hexdigest()


def _workload_from_store(app: str, scale: float, seed: int, compiled):
    """Rebuild a :class:`GeneratedWorkload` from a stored bundle."""
    from repro.trace.record import CommentRecord
    from repro.workloads.base import GeneratedWorkload
    from repro.workloads.catalog import paper_row

    meta = compiled.header.meta.get("workload")
    if not isinstance(meta, dict):
        raise ValueError("bundle carries no workload metadata")
    return GeneratedWorkload(
        name=meta["name"],
        trace=compiled.trace,
        data_size_bytes=int(meta["data_size_bytes"]),
        comments=[CommentRecord(text) for text in meta["comments"]],
        cpu_seconds=float(meta["cpu_seconds"]),
        wall_seconds=float(meta["wall_seconds"]),
        scale=float(meta["scale"]),
        paper=paper_row(app),
    )


def _stored_generated_workload(app: str, scale: float, seed: int):
    """Generated workload via the compile cache (None on any miss/error).

    On a hit the trace columns are memory-mapped out of the bundle -- no
    generation, no decode.  On a miss the workload is generated once and
    stored for every later process and run.  Any store trouble degrades
    to plain generation; caching must never break a sweep.
    """
    from repro.trace.store import TraceStoreCache
    from repro.workloads.base import generate_workload

    cache = TraceStoreCache.default()
    if not cache.enabled:
        return None
    digest = _workload_store_digest(app, scale, seed)
    hit = cache.load(digest)
    if hit is not None:
        try:
            return _workload_from_store(app, scale, seed, hit)
        except (KeyError, TypeError, ValueError) as exc:
            warnings.warn(
                f"stored workload {digest[:16]}... is unusable ({exc}); "
                "regenerating",
                RuntimeWarning,
                stacklevel=2,
            )
    workload = generate_workload(app, scale=scale, seed=seed)
    cache.store(
        digest,
        workload.trace,
        source={
            "kind": "generated",
            "sha256": digest,
            "app": app,
            "scale": scale,
            "seed": seed,
        },
        meta={
            "workload": {
                "name": workload.name,
                "scale": workload.scale,
                "data_size_bytes": workload.data_size_bytes,
                "cpu_seconds": workload.cpu_seconds,
                "wall_seconds": workload.wall_seconds,
                "comments": [c.text for c in workload.comments],
            }
        },
    )
    return workload


def generated_workload(app: str, scale: float, seed: int):
    """Memoized :func:`generate_workload` (per process, store-backed)."""
    key = (app, scale, seed)
    hit = _WORKLOADS.get(key)
    if hit is not None:
        return hit
    workload = _stored_generated_workload(app, scale, seed)
    if workload is None:
        from repro.workloads.base import generate_workload

        workload = generate_workload(app, scale=scale, seed=seed)
    _WORKLOADS.put(key, workload)
    return workload


# -- sweep points ------------------------------------------------------------


@dataclass(frozen=True)
class SweepPointSpec:
    """One independent ``(workload, config)`` simulation."""

    workload: WorkloadSpecLike
    config: SimConfig
    #: presentation only -- never part of the cache key
    label: str = ""

    def key(self, sweep_seed: int | None) -> str:
        return point_key(self.config, self.workload.key_material(), sweep_seed)


@dataclass(frozen=True)
class PointResult:
    """Outcome of one sweep point."""

    point: SweepPointSpec
    result: SimulationResult
    key: str
    sim_seed: int
    cached: bool
    elapsed_s: float

    @property
    def label(self) -> str:
        return self.point.label


def _simulate_point(point: SweepPointSpec, sim_seed: int) -> SimulationResult:
    """Worker entry: materialize the workload and run the simulator."""
    traces = point.workload.materialize()
    return simulate(traces, point.config.with_seed(sim_seed))


#: Transport errors :func:`~repro.exec.shm.attach_workload` can actually
#: raise: the segment is gone or was never created (``OSError``, which
#: covers ``FileNotFoundError``), or its size/layout does not match the
#: ref (``ValueError`` from the size check or view construction).
#: Anything else is a real bug and must propagate, not silently turn
#: the fan-out off.
_ATTACH_ERRORS = (OSError, ValueError)

#: Segments this process has already warned about failing to attach --
#: one RuntimeWarning per segment (i.e. per workload per sweep), not one
#: per point, so a degraded 100-point sweep does not print 100 warnings.
_ATTACH_WARNED: set = set()


def _simulate_point_shared(
    point: SweepPointSpec,
    sim_seed: int,
    shared: SharedWorkload | None,
) -> SimulationResult:
    """Pool-worker entry: attach the published workload, else materialize.

    The attach is strictly an input transport: the views are read-only
    and byte-identical to what ``materialize()`` builds, so results are
    bit-identical either way -- a failed attach degrades to the
    per-worker path rather than failing the point.  Degradation is
    *visible*: each failure bumps ``exec.shm.attach_failures`` and the
    first failure per segment emits a RuntimeWarning, so a sweep whose
    fan-out quietly fell back to per-worker materialization no longer
    looks identical to one that shared every workload.
    """
    traces = None
    if shared is not None:
        try:
            traces = attach_workload(shared)
        except _ATTACH_ERRORS as exc:
            get_registry().counter("exec.shm.attach_failures").inc()
            if shared.segment not in _ATTACH_WARNED:
                _ATTACH_WARNED.add(shared.segment)
                warnings.warn(
                    f"shared-memory attach failed for segment "
                    f"{shared.segment} ({type(exc).__name__}: {exc}); "
                    "materializing this workload from its spec",
                    RuntimeWarning,
                    stacklevel=2,
                )
    if traces is None:
        traces = point.workload.materialize()
    return simulate(traces, point.config.with_seed(sim_seed))


# -- the runner --------------------------------------------------------------


@dataclass
class SweepRunner:
    """Fan independent sweep points out over processes, memoizing results.

    ``jobs=None`` resolves via :func:`resolve_jobs` (``$REPRO_JOBS`` or
    the CPU count); ``jobs=1`` runs inline with no pool.  ``cache=None``
    disables memoization; any object with the ``get``/``put`` shape
    works, including :class:`~repro.exec.cache_tiers.TieredResultCache`.
    ``seed=None`` (the default) simulates every point with its config's
    own seed; an int overrides all of them with one shared stream (see
    the module docstring).

    ``executor=None`` picks the backend automatically (serial for one
    effective job, the process pool otherwise) after consulting
    ``$REPRO_EXECUTOR``; name one of
    :data:`~repro.exec.executor.EXECUTOR_NAMES` to force it.  The
    backend is an execution detail -- it never enters point keys and
    never changes digests.

    ``shared_memory=None`` (the default) publishes each distinct
    workload's columns over shared memory for pool runs whenever the
    platform supports it (``$REPRO_SHM=off`` disables); ``True``/``False``
    force it.  The transport never changes results -- workers that
    cannot attach materialize from their spec as before.

    Observation hooks (both optional, both outside the determinism
    contract -- they never touch what is simulated):

    * ``progress`` is called with one dict per lifecycle event:
      ``{"event": "sweep_start", "points": N, "todo": M, "cached": K}``
      once up front, then ``{"event": "point_done", "index", "label",
      "key", "cached", "elapsed_s"}`` per point *as it completes* (cache
      hits first, then live points in completion order).  The sweep
      server bridges these into per-job server-sent event streams.
    * ``should_cancel`` is polled between points (serial) and between
      completions (pool/queue, every
      :data:`~repro.exec.executor.CANCEL_POLL_S`); once it returns true
      the backend abandons queued work, waits out running points, tears
      down shared memory and raises
      :class:`~repro.util.errors.SweepCancelled`.
    """

    jobs: int | None = 1
    cache: ResultCache | None = None
    seed: int | None = None
    executor: str | None = None
    shared_memory: bool | None = None
    progress: Callable[[dict], None] | None = None
    should_cancel: Callable[[], bool] | None = None
    #: points simulated (not served from cache) over this runner's lifetime
    simulated: int = field(default=0, init=False)
    #: points served from the result cache
    cache_hits: int = field(default=0, init=False)

    def effective_jobs(self, n_points: int) -> int:
        return min(resolve_jobs(self.jobs), max(1, n_points))

    def sim_seed(self, point: SweepPointSpec) -> int:
        """The point's simulator seed (shared across the sweep on
        purpose -- see the module docstring on common random numbers)."""
        return self.seed if self.seed is not None else point.config.seed

    def run_point(self, point: SweepPointSpec) -> PointResult:
        return self.run([point])[0]

    def run(self, points: Sequence[SweepPointSpec]) -> list[PointResult]:
        """Run all points (cache, then pool) and return them in order."""
        reg = get_registry()
        points = list(points)
        keys = [p.key(self.seed) for p in points]
        seeds = [self.sim_seed(p) for p in points]
        results: list[SimulationResult | None] = [None] * len(points)
        cached = [False] * len(points)
        elapsed = [0.0] * len(points)

        todo: list[int] = []
        for i, key in enumerate(keys):
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                results[i] = hit
                cached[i] = True
                self.cache_hits += 1
                reg.counter("exec.runner.cache_hits").inc()
            else:
                todo.append(i)

        self._notify(
            event="sweep_start",
            points=len(points),
            todo=len(todo),
            cached=len(points) - len(todo),
        )
        for i in range(len(points)):
            if cached[i]:
                self._notify_point(points, keys, elapsed, i, cached=True)

        if todo:
            self._check_cancelled()
            n_jobs = self.effective_jobs(len(todo))
            # Workers of the process-backed executors are separate
            # processes: their in-process metrics do not flow back; only
            # per-point wall time and the counters below are recorded
            # here.
            backend = make_executor(self._executor_name(n_jobs), jobs=n_jobs)
            tasks = [
                PointTask(
                    index=i,
                    point=points[i],
                    seed=seeds[i],
                    label=points[i].label or keys[i][:12],
                )
                for i in todo
            ]

            def deliver(task: PointTask, result, elapsed_s: float) -> None:
                results[task.index] = result
                elapsed[task.index] = elapsed_s
                self._notify_point(points, keys, elapsed, task.index, cached=False)

            backend.execute(
                tasks,
                on_result=deliver,
                should_cancel=self.should_cancel,
                shared_memory=self.shared_memory,
            )
            for i in todo:
                if self.cache is not None:
                    self.cache.put(keys[i], results[i])
                self.simulated += 1
                reg.counter("exec.runner.points_simulated").inc()
                reg.emit(
                    "sweep_point",
                    label=points[i].label or keys[i][:12],
                    cached=False,
                    elapsed_s=elapsed[i],
                )

        return [
            PointResult(
                point=points[i],
                result=results[i],
                key=keys[i],
                sim_seed=seeds[i],
                cached=cached[i],
                elapsed_s=elapsed[i],
            )
            for i in range(len(points))
        ]

    def _notify(self, **event) -> None:
        """Deliver one progress event to the hook (if any).

        Hook exceptions propagate: the hook belongs to the caller, and
        swallowing its bugs here would hide them behind a sweep that
        "worked" while reporting nothing.
        """
        if self.progress is not None:
            self.progress(dict(event))

    def _notify_point(
        self,
        points: list[SweepPointSpec],
        keys: list[str],
        elapsed: list[float],
        i: int,
        *,
        cached: bool,
    ) -> None:
        self._notify(
            event="point_done",
            index=i,
            label=points[i].label or keys[i][:12],
            key=keys[i],
            cached=cached,
            elapsed_s=elapsed[i],
        )

    def _cancelled(self) -> bool:
        return self.should_cancel is not None and bool(self.should_cancel())

    def _check_cancelled(self) -> None:
        if self._cancelled():
            raise SweepCancelled("sweep cancelled before completion")

    def _executor_name(self, n_jobs: int) -> str:
        """Resolved backend name for this run (see module docstring)."""
        name = resolve_executor_name(self.executor)
        if name is None:
            name = "serial" if n_jobs == 1 else "pool"
        return name

    def _shm_enabled(self) -> bool:
        if self.shared_memory is False:
            return False
        return shm_available()

    def _publish_workloads(
        self, points: list[SweepPointSpec], todo: list[int]
    ) -> tuple[SegmentPublisher | None, dict]:
        """Materialize each distinct todo workload once; publish to shm.

        Thin wrapper over :func:`repro.exec.executor.publish_workloads`
        (which the backends call directly) honoring this runner's
        ``shared_memory`` setting.
        """
        if not self._shm_enabled():
            return None, {}
        tasks = [
            PointTask(
                index=i, point=points[i], seed=0, label=points[i].label
            )
            for i in todo
        ]
        return publish_workloads(tasks, self.shared_memory)
