"""The sweep server: routing, worker pool, SSE bridging, shutdown.

One asyncio event loop owns all bookkeeping (jobs table, queue, SSE
subscribers); simulations run in a small thread pool so the loop never
blocks on a multi-second sweep.  Each job executes on a plain
:class:`~repro.exec.runner.SweepRunner` under a job-private
:class:`~repro.obs.registry.MetricsRegistry` installed thread-locally,
with an :class:`EventBridge` as the event sink -- runner progress events
and obs events alike are marshalled onto the loop and fanned out to the
job's server-sent-event subscribers.  The runner tier is exactly the CLI
tier (same points, same result cache), which is what makes server
results bit-identical to batch results.

Cancellation is cooperative: the loop sets a per-job
:class:`threading.Event` that the runner polls between points (and
between pool completions), tearing down any shared-memory segments
before :class:`~repro.util.errors.SweepCancelled` propagates -- a
cancelled job never leaks ``/dev/shm`` segments.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import os
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.exec.cache import ResultCache
from repro.exec.runner import SweepRunner
from repro.obs.registry import MetricsRegistry, use_registry
from repro.obs.report import render_report
from repro.serve.jobs import Job, JobSpecError, JobState, parse_job, point_payload
from repro.serve.protocol import (
    ProtocolError,
    Request,
    error_response,
    json_response,
    read_request,
    response_bytes,
    sse_event,
    sse_preamble,
)
from repro.serve.queue import JobQueue, QueueClosed, QueueFull
from repro.util.errors import SweepCancelled


@dataclass
class ServeConfig:
    """Knobs for one server instance (the ``repro serve`` flags)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (tests); read it back from ``SweepServer.port``
    port: int = 8177
    #: concurrent job executions (thread pool size)
    workers: int = 2
    #: queued-job bound; a full queue answers 429
    max_pending: int = 16
    #: result-cache root (None -> the default resolution chain)
    cache_dir: str | Path | None = None
    #: disable the result cache entirely
    no_cache: bool = False
    #: how long shutdown waits for running jobs before cancelling them
    drain_timeout_s: float = 10.0
    #: default execution backend for jobs that do not name one (None ->
    #: the runner's automatic choice; see docs/EXECUTORS.md)
    executor: str | None = None
    #: tiered-cache spec, ``DIR[=BUDGET][,DIR[=BUDGET]]`` (local first,
    #: then shared); overrides ``cache_dir`` and honors
    #: ``$REPRO_CACHE_TIERS`` when unset
    cache_tiers: str | None = None

    def result_cache(self):
        if self.no_cache:
            return None
        from repro.exec.cache_tiers import resolve_cache_tiers

        tiered = resolve_cache_tiers(self.cache_tiers)
        if tiered is not None:
            return tiered
        if self.cache_dir is not None:
            return ResultCache(root=Path(self.cache_dir))
        return ResultCache()


class EventBridge:
    """Event sink that marshals events from a worker thread to the loop.

    Implements the obs event-sink protocol (``emit(kind, **fields)``), so
    a job's registry can point straight at it, and doubles as the
    :class:`~repro.exec.runner.SweepRunner` progress hook via
    :meth:`progress`.  Every record crosses to the event loop with
    ``call_soon_threadsafe`` where the server appends it to the job
    history and fans it out to SSE subscribers.

    Fork guard: pool workers of a ``jobs > 1`` sweep are forked from the
    executing thread and inherit its thread-local registry -- and with it
    this sink, whose loop does not exist in the child.  ``emit`` drops
    anything from a foreign pid instead of corrupting the parent loop.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, publish):
        self._loop = loop
        self._publish = publish
        self._pid = os.getpid()

    def emit(self, kind: str, **fields) -> None:
        if os.getpid() != self._pid:
            return
        record = {"kind": kind, **fields}
        try:
            self._loop.call_soon_threadsafe(self._publish, record)
        except RuntimeError:
            # Loop already closed (shutdown race); the event is
            # observability, never correctness -- drop it.
            pass

    def progress(self, event: dict) -> None:
        """Adapter for ``SweepRunner.progress`` dicts (``event`` -> kind)."""
        fields = dict(event)
        kind = fields.pop("event", "progress")
        self.emit(kind, **fields)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class SweepServer:
    """The asyncio HTTP daemon.  See :mod:`repro.serve` for the API."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.registry = MetricsRegistry(enabled=True)
        self.jobs: dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._queue = JobQueue(self.config.max_pending)
        self._cache = self.config.result_cache()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-serve"
        )
        self._server: asyncio.AbstractServer | None = None
        self._workers: list[asyncio.Task] = []
        self._conns: set[asyncio.Task] = set()
        self._running: set[Job] = set()

    # -- lifecycle -----------------------------------------------------

    @property
    def port(self) -> int:
        """The actually-bound port (meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        self._workers = [
            asyncio.create_task(self._worker(), name=f"serve-worker-{n}")
            for n in range(self.config.workers)
        ]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def shutdown(self, *, drain: bool | None = None) -> None:
        """Stop accepting, then drain or cancel in-flight jobs.

        ``drain=True`` (the default) lets running jobs finish for up to
        ``drain_timeout_s`` before cancelling them; ``drain=False``
        cancels immediately.  Queued-but-unstarted jobs are always
        cancelled -- they never observed any service.  Either way every
        worker joins and the runner's own teardown has already unlinked
        any shared-memory segments before this returns.
        """
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        for job in self._queue.drain():
            self._finish(job, JobState.CANCELLED, "server shutting down")
        self._queue.close()
        if drain is False:
            for job in list(self._running):
                job.cancel.set()
        if self._workers:
            done, pending = await asyncio.wait(
                self._workers, timeout=self.config.drain_timeout_s
            )
            if pending:
                for job in list(self._running):
                    job.cancel.set()
                await asyncio.wait(pending)
        self._executor.shutdown(wait=True)
        for task in list(self._conns):
            task.cancel()
        if self._conns:
            await asyncio.gather(*self._conns, return_exceptions=True)

    # -- job execution -------------------------------------------------

    async def _worker(self) -> None:
        """One consumer: pull jobs off the queue until the queue closes."""
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            if job is None:
                return
            if job.cancel.is_set():
                self._finish(job, JobState.CANCELLED, "cancelled while queued")
                continue
            job.state = JobState.RUNNING
            self._running.add(job)
            self._publish(job, {"kind": "job_state", "state": "running"})
            try:
                results, counters = await loop.run_in_executor(
                    self._executor, self._execute_job, job, loop
                )
            except SweepCancelled as exc:
                self._finish(job, JobState.CANCELLED, str(exc))
            except Exception as exc:
                self._finish(
                    job, JobState.FAILED, f"{type(exc).__name__}: {exc}"
                )
            else:
                job.results = results
                # Merge the job registry's counters here on the loop --
                # single-threaded by construction, so concurrent jobs
                # never race on the server's instruments.
                for name, value in counters.items():
                    self.registry.counter(name).add(value)
                self._finish(job, JobState.DONE)
            finally:
                self._running.discard(job)

    def _execute_job(self, job: Job, loop: asyncio.AbstractEventLoop):
        """Run one job on the runner tier (called in a worker thread)."""
        bridge = EventBridge(loop, lambda record: self._publish(job, record))
        registry = MetricsRegistry(enabled=True, event_sink=bridge)
        with use_registry(registry):
            runner = SweepRunner(
                jobs=job.runner_jobs,
                cache=self._cache if job.use_result_cache else None,
                executor=job.executor or self.config.executor,
                progress=bridge.progress,
                should_cancel=job.cancel.is_set,
            )
            point_results = runner.run(job.points)
        payloads = [point_payload(r) for r in point_results]
        return payloads, registry.counters()

    def _finish(self, job: Job, state: JobState, error: str | None = None):
        """Move a job to a terminal state and end its event streams."""
        job.state = state
        job.error = error
        tally = {
            JobState.DONE: "serve.jobs.done",
            JobState.FAILED: "serve.jobs.failed",
            JobState.CANCELLED: "serve.jobs.cancelled",
        }[state]
        self.registry.counter(tally).inc()
        record = {"kind": "end", "state": state.value}
        if error is not None:
            record["error"] = error
        self._publish(job, record)
        for q in list(job.subscribers):
            q.put_nowait(None)

    def _publish(self, job: Job, record: dict) -> None:
        """Append one event to the job history and fan out (loop only)."""
        kind = record.get("kind")
        if kind == "point_done":
            job.done_points += 1
            if record.get("cached"):
                job.cached_points += 1
            job.elapsed_s = max(
                job.elapsed_s, float(record.get("elapsed_s") or 0.0)
            )
        record = job.record_event(record)
        for q in list(job.subscribers):
            q.put_nowait(record)

    # -- HTTP ----------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conns.add(task)
        try:
            try:
                request = await read_request(reader)
            except ProtocolError as exc:
                writer.write(error_response(exc.status, str(exc)))
                return
            if request is None:
                return
            self.registry.counter("serve.http.requests").inc()
            try:
                await self._route(request, writer)
            except ProtocolError as exc:
                writer.write(error_response(exc.status, str(exc)))
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:
                writer.write(
                    error_response(500, f"{type(exc).__name__}: {exc}")
                )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._conns.discard(task)
            with contextlib.suppress(Exception):
                await writer.drain()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _route(self, request: Request, writer) -> None:
        method, path = request.method, request.path.rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]

        if path == "/healthz" and method == "GET":
            writer.write(json_response(200, self._health()))
        elif path == "/metrics" and method == "GET":
            report = render_report(self.registry, title="repro serve metrics")
            writer.write(
                response_bytes(
                    200,
                    (report + "\n").encode("utf-8"),
                    content_type="text/plain; charset=utf-8",
                )
            )
        elif path == "/jobs" and method == "POST":
            writer.write(self._submit(request))
        elif path == "/jobs" and method == "GET":
            writer.write(
                json_response(
                    200,
                    {"jobs": [j.describe() for j in self.jobs.values()]},
                )
            )
        elif len(parts) >= 2 and parts[0] == "jobs":
            job = self.jobs.get(parts[1])
            if job is None:
                raise ProtocolError(404, f"no such job {parts[1]!r}")
            await self._job_route(request, writer, job, parts[2:])
        else:
            raise ProtocolError(404, f"no route for {method} {path}")

    def _health(self) -> dict:
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state.value] = states.get(job.state.value, 0) + 1
        return {
            "ok": True,
            "pid": os.getpid(),
            "queued": len(self._queue),
            "max_pending": self._queue.max_pending,
            "workers": self.config.workers,
            "jobs": states,
        }

    def _submit(self, request: Request) -> bytes:
        body = request.json()
        job_id = f"j{next(self._ids):06d}"
        try:
            job = parse_job(body, job_id)
        except JobSpecError as exc:
            raise ProtocolError(400, str(exc)) from exc
        try:
            self._queue.put_nowait(job, priority=job.priority)
        except QueueFull as exc:
            self.registry.counter("serve.jobs.rejected").inc()
            raise ProtocolError(429, str(exc)) from exc
        except QueueClosed as exc:
            raise ProtocolError(503, str(exc)) from exc
        self.jobs[job.id] = job
        self.registry.counter("serve.jobs.submitted").inc()
        return json_response(202, job.describe())

    async def _job_route(
        self, request: Request, writer, job: Job, rest: list[str]
    ) -> None:
        method = request.method
        if not rest and method == "GET":
            writer.write(json_response(200, job.describe()))
        elif rest == ["result"] and method == "GET":
            writer.write(self._result(job))
        elif rest == ["cancel"] and method == "POST":
            writer.write(self._cancel(job))
        elif rest == ["events"] and method == "GET":
            await self._stream_events(writer, job)
        else:
            raise ProtocolError(
                404, f"no route for {method} /jobs/{job.id}/{'/'.join(rest)}"
            )

    def _result(self, job: Job) -> bytes:
        if job.state is JobState.DONE:
            payload = job.describe()
            payload["results"] = job.results
            return json_response(200, payload)
        if job.state.terminal:
            # failed or cancelled: the describe payload carries the error
            return json_response(200, job.describe())
        raise ProtocolError(
            409,
            f"job {job.id} is {job.state.value}; results exist once it "
            "is done",
        )

    def _cancel(self, job: Job) -> bytes:
        """Cancel a job; idempotent at every stage of its lifecycle."""
        if job.state.terminal:
            return json_response(200, job.describe())
        if job.state is JobState.QUEUED and self._queue.remove(job):
            self._finish(job, JobState.CANCELLED, "cancelled while queued")
            return json_response(200, job.describe())
        # Running (or about to be picked up): flip the event the runner
        # polls; the worker will observe SweepCancelled and finish it.
        job.cancel.set()
        return json_response(200, job.describe())

    async def _stream_events(self, writer, job: Job) -> None:
        """Serve one job's SSE stream: history replay, then live events.

        Subscribe *before* replaying -- both happen without an await in
        between, so on the loop-confined jobs table no event can fall in
        the gap; anything published after the snapshot arrives on the
        live queue.
        """
        queue: asyncio.Queue = asyncio.Queue()
        job.subscribers.append(queue)
        try:
            writer.write(sse_preamble())
            if job.dropped_events:
                writer.write(
                    sse_event(
                        {"kind": "gap", "dropped": job.dropped_events},
                        seq=-1,
                    )
                )
            history = list(job.events)
            for record in history:
                writer.write(sse_event(record, seq=record["seq"]))
            await writer.drain()
            if job.state.terminal:
                return
            while True:
                record = await queue.get()
                if record is None:
                    return
                writer.write(sse_event(record, seq=record["seq"]))
                await writer.drain()
        finally:
            with contextlib.suppress(ValueError):
                job.subscribers.remove(queue)


# -- entry points ------------------------------------------------------


async def _amain(config: ServeConfig) -> int:
    server = SweepServer(config)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(sig, stop.set)
    print(
        f"repro serve: listening on http://{config.host}:{server.port} "
        f"({config.workers} worker(s), queue bound {config.max_pending})",
        flush=True,
    )
    await stop.wait()
    print("repro serve: shutting down (draining jobs)...", flush=True)
    await server.shutdown()
    return 0


def run_server(config: ServeConfig | None = None) -> int:
    """Run a server until SIGINT/SIGTERM; the ``repro serve`` entry."""
    return asyncio.run(_amain(config or ServeConfig()))


class ServerThread:
    """A server on a background thread (tests, the CI smoke script).

    >>> with ServerThread() as srv:                    # doctest: +SKIP
    ...     client = ServeClient(port=srv.port)

    The context manager owns the loop thread: entering starts the server
    (on an ephemeral port by default) and blocks until it is accepting;
    exiting requests shutdown and joins the thread.
    """

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig(port=0)
        self.server: SweepServer | None = None
        self.port: int | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread failed to start in time")
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=60)

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surface startup failures to start()
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        server = SweepServer(self.config)
        await server.start()
        self.server = server
        self.port = server.port
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await server.shutdown()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
