"""Simulation-as-a-service: the async sweep server.

The batch CLI answers one question per invocation; this package keeps a
simulator resident and serves many small questions cheaply -- the
FBench-style what-if consumption pattern the memoized result cache and
shared-memory fan-out were built for.  ``repro serve`` starts an
asyncio HTTP/JSON daemon; clients submit simulate/sweep jobs, poll or
stream their progress as server-sent events, and fetch results that are
**bit-identical** (same point keys, same digests) to what the CLI
produces for the same inputs.

Modules
-------
* :mod:`repro.serve.protocol` -- minimal HTTP/1.1 + SSE framing over
  asyncio streams (the container ships no third-party web framework,
  and the API surface is small enough not to want one);
* :mod:`repro.serve.queue` -- bounded priority job queue with admission
  control (a full queue rejects with 429 instead of buffering without
  bound);
* :mod:`repro.serve.jobs` -- job model, spec parsing (JSON body ->
  sweep points) and result payload serialization;
* :mod:`repro.serve.app` -- the server: routing, worker pool, SSE
  bridging of the obs event stream, graceful shutdown;
* :mod:`repro.serve.client` -- blocking stdlib client helper used by
  tests, the CI smoke job and scripts.
"""

from repro.serve.app import ServeConfig, ServerThread, SweepServer, run_server
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.jobs import JobSpecError, JobState
from repro.serve.queue import QueueFull

__all__ = [
    "JobSpecError",
    "JobState",
    "QueueFull",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServerThread",
    "SweepServer",
    "run_server",
]
