"""Job model and spec parsing: JSON bodies -> sweep points -> payloads.

A job is a list of :class:`~repro.exec.runner.SweepPointSpec`\\ s plus
runner knobs, built from the same pieces the CLI uses -- ``simulate``
bodies go through :class:`~repro.exec.runner.TraceFileSpec` and
:func:`~repro.exec.grid.build_sim_config`, ``sweep`` bodies through
:class:`~repro.exec.grid.GridSpec` -- so a job submitted over HTTP
produces byte-for-byte the same point keys and result digests as the
equivalent CLI invocation.  That bit-identity is the server's core
contract and is what lets HTTP clients share the on-disk result cache
with batch runs.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

from repro.exec.grid import GridSpec, build_sim_config, parse_floats, parse_toggles
from repro.exec.runner import PointResult, SweepPointSpec, TraceFileSpec
from repro.sim.faults import FaultPlan
from repro.util.rng import DEFAULT_SEED
from repro.workloads.base import available_models


class JobSpecError(ValueError):
    """A submitted job body is malformed (answered with HTTP 400)."""


class JobState(str, enum.Enum):
    """Lifecycle of one job.

    ``queued -> running -> {done, failed, cancelled}``; a queued job can
    also go straight to ``cancelled``.  States are serialized as their
    lowercase string values.
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


#: Bound on the per-job event history kept for late SSE subscribers.
#: A 1000-point sweep emits ~1005 events; beyond the bound the oldest
#: events drop off (subscribers are told how many they missed).
MAX_EVENT_HISTORY = 4096


@dataclass(eq=False)  # identity semantics: jobs live in sets and heaps
class Job:
    """One submitted job and everything the server tracks about it.

    Mutable fields are only ever written from the server's event loop
    (worker threads report back via ``call_soon_threadsafe``), except
    ``cancel`` -- a :class:`threading.Event` the loop sets and the
    executing :class:`~repro.exec.runner.SweepRunner` polls from its
    worker thread.
    """

    id: str
    kind: str
    priority: int
    points: list[SweepPointSpec]
    runner_jobs: int = 1
    use_result_cache: bool = True
    #: execution backend name (None -> the server default, then auto)
    executor: str | None = None
    state: JobState = JobState.QUEUED
    error: str | None = None
    results: list[dict] | None = None
    done_points: int = 0
    cached_points: int = 0
    elapsed_s: float = 0.0
    cancel: threading.Event = field(default_factory=threading.Event)
    #: bounded history of every event emitted for this job (for late
    #: subscribers); ``dropped_events`` counts what fell off the front
    events: list[dict] = field(default_factory=list)
    dropped_events: int = 0
    next_seq: int = 0
    #: live SSE subscriber queues (asyncio.Queue, loop-confined)
    subscribers: list = field(default_factory=list)

    def describe(self) -> dict:
        """The status payload for ``GET /jobs/<id>``."""
        payload = {
            "id": self.id,
            "kind": self.kind,
            "priority": self.priority,
            "state": self.state.value,
            "points": len(self.points),
            "done_points": self.done_points,
            "cached_points": self.cached_points,
            "elapsed_s": self.elapsed_s,
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload

    def record_event(self, record: dict) -> dict:
        """Append one event to the history (bounded) and stamp its seq."""
        record = dict(record)
        record["job"] = self.id
        record["seq"] = self.next_seq
        self.next_seq += 1
        self.events.append(record)
        if len(self.events) > MAX_EVENT_HISTORY:
            del self.events[0]
            self.dropped_events += 1
        return record


def _axis_floats(value, name: str) -> tuple[float, ...]:
    """A float axis from a JSON list or a CLI-style "4,8,16" string."""
    try:
        if isinstance(value, str):
            return parse_floats(value)
        if isinstance(value, (int, float)):
            return (float(value),)
        if isinstance(value, list) and value:
            return tuple(float(v) for v in value)
    except (TypeError, ValueError) as exc:
        raise JobSpecError(f"bad {name} axis {value!r}: {exc}") from exc
    raise JobSpecError(f"bad {name} axis {value!r}")


def _axis_toggles(value, name: str) -> tuple[bool, ...]:
    """A toggle axis from a JSON bool/list or a CLI-style "on,off" string."""
    try:
        if isinstance(value, str):
            return parse_toggles(value)
        if isinstance(value, bool):
            return (value,)
        if isinstance(value, list) and value:
            toggles = tuple(bool(v) for v in value)
            if len(set(toggles)) != len(toggles):
                raise ValueError("repeated toggle value")
            return toggles
    except (TypeError, ValueError) as exc:
        raise JobSpecError(f"bad {name} axis {value!r}: {exc}") from exc
    raise JobSpecError(f"bad {name} axis {value!r}")


def _fault_config(spec: dict, base):
    """Apply an inline ``faults`` spec or ``fault_plan`` dict to a config."""
    faults = spec.get("faults")
    plan_data = spec.get("fault_plan")
    if faults and plan_data:
        raise JobSpecError("use either 'faults' or 'fault_plan', not both")
    try:
        if faults:
            if not isinstance(faults, str):
                raise JobSpecError(f"'faults' must be a spec string: {faults!r}")
            return FaultPlan.from_spec(faults).apply(base)
        if plan_data:
            if not isinstance(plan_data, dict):
                raise JobSpecError(
                    f"'fault_plan' must be a JSON object: {plan_data!r}"
                )
            return FaultPlan.from_dict(plan_data).apply(base)
    except (TypeError, ValueError) as exc:
        if isinstance(exc, JobSpecError):
            raise
        raise JobSpecError(f"bad fault plan: {exc}") from exc
    return base


def _simulate_points(spec: dict) -> list[SweepPointSpec]:
    """Points for a ``simulate`` job -- mirrors ``repro simulate``."""
    traces = spec.get("traces")
    if (
        not isinstance(traces, list)
        or not traces
        or not all(isinstance(t, str) for t in traces)
    ):
        raise JobSpecError("'traces' must be a non-empty list of paths")
    try:
        config = build_sim_config(
            cache_mb=float(spec.get("cache_mb", 32.0)),
            block_kb=float(spec.get("block_kb", 4.0)),
            ssd=bool(spec.get("ssd", False)),
            read_ahead=bool(spec.get("read_ahead", True)),
            write_behind=bool(spec.get("write_behind", True)),
            n_cpus=int(spec.get("cpus", 1)),
        )
    except (TypeError, ValueError) as exc:
        raise JobSpecError(f"bad simulate config: {exc}") from exc
    config = _fault_config(spec, config)
    workload = TraceFileSpec(
        paths=tuple(traces),
        share_files=bool(spec.get("share_files", False)),
        use_store=bool(spec.get("trace_store", False)),
    )
    label = spec.get("label") or f"simulate {' '.join(traces)}"
    return [SweepPointSpec(workload=workload, config=config, label=str(label))]


def _sweep_points(spec: dict) -> list[SweepPointSpec]:
    """Points for a ``sweep`` job -- mirrors ``repro sweep``."""
    app = str(spec.get("app", "venus"))
    if app not in available_models():
        raise JobSpecError(
            f"unknown application {app!r}; known: "
            f"{', '.join(available_models())}"
        )
    try:
        grid = GridSpec(
            app=app,
            n_copies=int(spec.get("copies", 2)),
            scale=float(spec.get("scale", 0.25)),
            workload_seed=int(spec.get("seed", DEFAULT_SEED)),
            cache_sizes_mb=_axis_floats(
                spec.get("cache_mb", "4,8,16,32,64,128,256"), "cache_mb"
            ),
            block_sizes_kb=_axis_floats(spec.get("block_kb", "4,8"), "block_kb"),
            read_ahead=_axis_toggles(spec.get("read_ahead", True), "read_ahead"),
            write_behind=_axis_toggles(
                spec.get("write_behind", True), "write_behind"
            ),
            ssd=bool(spec.get("ssd", False)),
            n_cpus=int(spec.get("cpus", 1)),
        )
    except JobSpecError:
        raise
    except (TypeError, ValueError) as exc:
        raise JobSpecError(f"bad sweep grid: {exc}") from exc
    return grid.points()


_KINDS = {"simulate": _simulate_points, "sweep": _sweep_points}

#: Bound on worker processes one job may request (`spec.jobs`); a
#: client cannot fork-bomb the host through the API.
MAX_RUNNER_JOBS = 16


def parse_job(body: dict, job_id: str) -> Job:
    """Build a :class:`Job` from a submitted JSON body.

    Body shape: ``{"kind": "simulate" | "sweep", "spec": {...},
    "priority": int}``.  Raises :class:`JobSpecError` on anything
    malformed -- parsing happens at submission time so a bad job is a
    400 for its submitter, never a late failure in a worker.
    """
    kind = body.get("kind")
    builder = _KINDS.get(kind)
    if builder is None:
        raise JobSpecError(
            f"unknown job kind {kind!r}; expected one of {sorted(_KINDS)}"
        )
    spec = body.get("spec") or {}
    if not isinstance(spec, dict):
        raise JobSpecError(f"'spec' must be a JSON object: {spec!r}")
    try:
        priority = int(body.get("priority", 0))
    except (TypeError, ValueError) as exc:
        raise JobSpecError(f"bad priority {body.get('priority')!r}") from exc
    try:
        runner_jobs = int(spec.get("jobs", 1))
    except (TypeError, ValueError) as exc:
        raise JobSpecError(f"bad jobs {spec.get('jobs')!r}") from exc
    if not 1 <= runner_jobs <= MAX_RUNNER_JOBS:
        raise JobSpecError(
            f"jobs must be in [1, {MAX_RUNNER_JOBS}], got {runner_jobs}"
        )
    executor = spec.get("executor")
    if executor is not None:
        from repro.exec.executor import EXECUTOR_NAMES

        if executor not in EXECUTOR_NAMES:
            raise JobSpecError(
                f"unknown executor {executor!r}; expected one of "
                f"{sorted(EXECUTOR_NAMES)}"
            )
    return Job(
        id=job_id,
        kind=kind,
        priority=priority,
        points=builder(spec),
        runner_jobs=runner_jobs,
        use_result_cache=bool(spec.get("result_cache", True)),
        executor=executor,
    )


def point_payload(point_result: PointResult) -> dict:
    """Serialize one point's outcome for the result endpoint.

    Carries the point key and the full result digest -- the two values
    the bit-identity contract is stated in terms of -- plus the summary
    scalars the CLI sweep table prints.
    """
    result = point_result.result
    return {
        "label": point_result.label,
        "key": point_result.key,
        "digest": result.digest(),
        "cached": point_result.cached,
        "sim_seed": point_result.sim_seed,
        "elapsed_s": point_result.elapsed_s,
        "wall_seconds": result.wall_seconds,
        "completion_seconds": result.completion_seconds,
        "busy_seconds": result.accounted_busy_seconds,
        "idle_seconds": result.idle_seconds,
        "utilization": result.utilization,
        "hit_fraction": result.cache.hit_fraction,
        "disk_read_mb": result.disk_read_rate.total,
        "disk_write_mb": result.disk_write_rate.total,
        "goodput_bytes": result.goodput_bytes,
        "events_run": result.events_run,
        "summary": result.summary(),
    }
