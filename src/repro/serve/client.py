"""Blocking stdlib client for the sweep server.

Thin deliberate wrapper over :mod:`http.client` -- tests, the CI smoke
job and small scripts talk to ``repro serve`` through this without any
third-party HTTP stack.  One connection per request, mirroring the
server's ``Connection: close`` protocol.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Iterator

from repro.util.errors import ReproError


class ServeClientError(ReproError):
    """A non-success answer from the server; carries the HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ServeClient:
    """Talk to one sweep server.

    Raises :class:`ServeClientError` on any non-2xx answer; the
    ``status`` attribute distinguishes admission rejection (429) from a
    bad spec (400) and friends.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8177,
        *,
        timeout: float = 60.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, bytes, str]:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            ctype = response.getheader("Content-Type", "")
            return response.status, data, ctype
        finally:
            conn.close()

    def _json(self, method: str, path: str, payload: dict | None = None) -> dict:
        status, data, _ctype = self._request(method, path, payload)
        try:
            decoded = json.loads(data) if data else {}
        except ValueError:
            decoded = {"error": data.decode("utf-8", "replace")}
        if status >= 300:
            raise ServeClientError(
                status, decoded.get("error", f"HTTP {status}")
            )
        return decoded

    # -- the API -------------------------------------------------------

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def metrics(self) -> str:
        status, data, _ctype = self._request("GET", "/metrics")
        if status >= 300:
            raise ServeClientError(status, data.decode("utf-8", "replace"))
        return data.decode("utf-8")

    def submit(self, kind: str, spec: dict, *, priority: int = 0) -> dict:
        return self._json(
            "POST",
            "/jobs",
            {"kind": kind, "spec": spec, "priority": priority},
        )

    def submit_sweep(self, spec: dict, *, priority: int = 0) -> dict:
        return self.submit("sweep", spec, priority=priority)

    def submit_simulate(self, spec: dict, *, priority: int = 0) -> dict:
        return self.submit("simulate", spec, priority=priority)

    def jobs(self) -> list[dict]:
        return self._json("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll_s: float = 0.05
    ) -> dict:
        """Poll until the job reaches a terminal state; returns it."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            time.sleep(poll_s)

    def events(self, job_id: str) -> Iterator[dict]:
        """Stream the job's server-sent events as decoded dicts.

        Yields every ``data:`` payload in order and returns after the
        terminal ``end`` event (or when the server closes the stream).
        """
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 300:
                data = response.read()
                try:
                    message = json.loads(data).get("error", "")
                except ValueError:
                    message = data.decode("utf-8", "replace")
                raise ServeClientError(response.status, message)
            for raw in response:
                line = raw.decode("utf-8").rstrip("\r\n")
                if not line.startswith("data:"):
                    continue
                record = json.loads(line[len("data:"):].strip())
                yield record
                if record.get("kind") == "end":
                    return
        finally:
            conn.close()
