"""Bounded priority job queue with admission control.

The server's backpressure lives here: a queue that is full **rejects**
(HTTP 429 at the API layer) instead of buffering without bound, because
a simulation job pins megabytes of trace columns once running and the
polite failure mode for a saturated service is an immediate, retryable
"try later", not an ever-growing backlog with ever-worse latency.

The queue is confined to the server's event loop -- every method is
called from loop context, so there are no locks; waiting consumers park
on futures.  Priorities are ints, **higher runs sooner**; ties break
FIFO by submission order.
"""

from __future__ import annotations

import heapq
from asyncio import Future, get_running_loop
from collections import deque

from repro.util.errors import ReproError


class QueueFull(ReproError):
    """Admission control rejected a job (the queue is at capacity)."""


class QueueClosed(ReproError):
    """The queue is shut down and accepts no further jobs."""


class JobQueue:
    """Priority queue of pending jobs, bounded at ``max_pending``.

    ``put_nowait`` raises :class:`QueueFull` beyond the bound and
    :class:`QueueClosed` after :meth:`close`; ``get`` suspends until a
    job is available (or returns None once closed and drained, the
    worker-shutdown signal).  :meth:`remove` supports cancelling a job
    that has not started.
    """

    def __init__(self, max_pending: int):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self._heap: list[tuple[int, int, object]] = []
        self._seq = 0
        self._waiters: deque[Future] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.max_pending

    @property
    def closed(self) -> bool:
        return self._closed

    def put_nowait(self, job, priority: int = 0) -> None:
        if self._closed:
            raise QueueClosed("job queue is shut down")
        if self.full:
            raise QueueFull(
                f"job queue is full ({len(self._heap)} pending, "
                f"bound {self.max_pending})"
            )
        # heapq is a min-heap; negate so higher priority pops first,
        # with the submission sequence breaking ties FIFO.
        heapq.heappush(self._heap, (-priority, self._seq, job))
        self._seq += 1
        self._wake_one()

    async def get(self):
        """Next job by (priority, FIFO) order; None once closed and empty."""
        while True:
            if self._heap:
                return heapq.heappop(self._heap)[2]
            if self._closed:
                return None
            waiter: Future = get_running_loop().create_future()
            self._waiters.append(waiter)
            await waiter

    def remove(self, job) -> bool:
        """Drop one pending job (identity match); False when not queued."""
        for index, entry in enumerate(self._heap):
            if entry[2] is job:
                self._heap[index] = self._heap[-1]
                self._heap.pop()
                heapq.heapify(self._heap)
                return True
        return False

    def drain(self) -> list:
        """Remove and return every pending job (shutdown: cancel them)."""
        jobs = [entry[2] for entry in sorted(self._heap)]
        self._heap.clear()
        return jobs

    def close(self) -> None:
        """Refuse new jobs and wake every waiting consumer."""
        self._closed = True
        while self._waiters:
            self._wake_one()

    def _wake_one(self) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                return
