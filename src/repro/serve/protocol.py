"""Minimal HTTP/1.1 request/response + SSE framing over asyncio streams.

Just enough protocol for the sweep server's JSON API: parse one request
per connection, write one response (or one server-sent event stream)
and close.  ``Connection: close`` semantics keep the state machine
trivial -- a sweep job costs seconds of simulation, so per-request
connection setup is noise, and the stdlib-only constraint rules out a
framework.

Server-sent events follow the WHATWG framing: each event is an
``event:`` name line, one ``data:`` line carrying a JSON object, an
``id:`` line with the event's sequence number, and a blank line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlsplit

#: Largest accepted request body (a job spec is a few hundred bytes;
#: anything near this bound is a client bug, not a bigger sweep).
MAX_BODY_BYTES = 1 << 20

#: Largest accepted request line or header line.
MAX_LINE_BYTES = 16 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """A malformed request; carries the HTTP status to answer with."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, list[str]] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """The body as a JSON object (empty body -> empty object)."""
        if not self.body:
            return {}
        try:
            data = json.loads(self.body)
        except ValueError as exc:
            raise ProtocolError(400, f"body is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ProtocolError(400, "body must be a JSON object")
        return data

    def param(self, name: str, default: str | None = None) -> str | None:
        values = self.query.get(name)
        return values[0] if values else default


async def read_request(reader) -> Request | None:
    """Parse one request off ``reader``; None on clean EOF before any bytes.

    Raises :class:`ProtocolError` on malformed input; the server answers
    with the carried status and closes.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, OSError):
        return None
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(400, "request line too long")
    parts = line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed request line {line!r}")
    method, target, _version = parts
    split = urlsplit(target)

    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(400, "header line too long")
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError as exc:
            raise ProtocolError(400, f"bad Content-Length {length!r}") from exc
        if n < 0:
            raise ProtocolError(400, f"bad Content-Length {n}")
        if n > MAX_BODY_BYTES:
            raise ProtocolError(413, f"body of {n} bytes exceeds the limit")
        if n:
            try:
                body = await reader.readexactly(n)
            except Exception as exc:
                raise ProtocolError(400, f"truncated body: {exc}") from exc

    return Request(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=parse_qs(split.query),
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """One complete HTTP/1.1 response (always ``Connection: close``)."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def json_response(status: int, payload: dict) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return response_bytes(status, body)


def error_response(status: int, message: str) -> bytes:
    return json_response(status, {"error": message, "status": status})


def sse_preamble() -> bytes:
    """Response head opening a server-sent event stream (no length --
    the stream ends when the connection closes)."""
    return (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/event-stream\r\n"
        "Cache-Control: no-store\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")


def sse_event(record: dict, *, seq: int | None = None) -> bytes:
    """One server-sent event.

    ``record["kind"]`` becomes the SSE ``event:`` name; the whole record
    is the JSON ``data:`` payload (single line by construction --
    ``json.dumps`` never emits raw newlines).
    """
    kind = str(record.get("kind", "message"))
    lines = [f"event: {kind}"]
    if seq is not None:
        lines.append(f"id: {seq}")
    lines.append(f"data: {json.dumps(record, sort_keys=True, default=str)}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def parse_sse_stream(lines) -> "list[dict]":
    """Decode SSE frames from an iterable of text lines (client/tests).

    Returns the ``data:`` JSON payloads in order; ``event:``/``id:``
    lines are carried inside the payloads already (``kind``/``seq``), so
    only data lines matter here.
    """
    events = []
    for line in lines:
        line = line.rstrip("\r\n")
        if line.startswith("data:"):
            events.append(json.loads(line[len("data:"):].strip()))
    return events
