"""Performance microbenchmarks: the ``repro bench`` harness.

The simulator's value rests on replaying multi-million-record traces
quickly, so this module pins a number on each layer of the hot path:

* ``engine`` -- raw calendar throughput (events/s): self-rescheduling
  callback chains through :class:`~repro.sim.events.Engine`, nothing
  else.  This is the ceiling every other benchmark lives under.
* ``cache`` -- buffer-cache request throughput (ops/s): a serial stream
  of multi-block reads and writes over a working set larger than the
  cache, exercising allocation, eviction, write-behind and read-ahead.
* ``decode`` -- ASCII trace decode bandwidth (MB/s) through the batch
  columnar path (:meth:`~repro.trace.decode.TraceDecoder.decode_array`).
* ``store`` -- compiled-store rehydration bandwidth (MB/s of the same
  ASCII bytes) through :func:`~repro.trace.store.load_compiled`,
  including a full touch of every mapped column; the detail carries the
  speedup over ASCII decode of the identical trace (the zero-decode
  path's headline number, target >= 5x).
* ``fig8`` -- end-to-end wall-clock of the Figure 8 cache-size sweep,
  the workload the paper's headline figure is built from.  The rows are
  digested so a perf run that silently changes results is an error, not
  a speedup.
* ``fig8_warm`` -- the same sweep in a fresh-process scenario with a
  *warm* trace store: the workload memo is cleared and the columns
  rehydrate from compiled bundles instead of being regenerated, which
  is what the second and every later ``repro run fig8`` pays.

Every benchmark returns a :class:`BenchResult`; :func:`run_suite`
assembles them into the ``BENCH_sim.json`` payload and
:func:`compare_to_baseline` turns a committed baseline
(``benchmarks/perf/baseline.json``) into a regression verdict.  Times
come from ``time.perf_counter``; run-to-run noise on shared CI workers
is why the regression gate is deliberately loose (25% by default) and
non-gating, and why the short sections (``engine``, ``cache``,
``decode``) each run a discarded warm-up pass (recorded in the detail)
followed by best-of-repeats.

``repro bench --profile`` additionally wraps every section in
:mod:`cProfile` and writes per-section top-30 cumulative reports to
``BENCH_profile.txt`` (uploaded as a CI artifact), so the next perf PR
starts from measured hot paths instead of guesses; profiled payloads
are flagged and refused by the baseline comparison.
"""

from __future__ import annotations

import cProfile
import hashlib
import io
import json
import os
import pstats
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.obs.registry import MetricsRegistry
from repro.sim.config import CacheConfig, SimConfig
from repro.sim.devices import DiskModel
from repro.sim.events import Engine
from repro.sim.experiments import cache_size_sweep
from repro.sim.faults import FaultInjector
from repro.sim.metrics import Metrics
from repro.sim.recovery import RecoveringDevice
from repro.trace.decode import TraceDecoder
from repro.trace.encode import TraceEncoder
from repro.util.rng import DEFAULT_SEED
from repro.util.units import KB, MB
from repro.workloads.base import generate_workload

#: Payload format version for ``BENCH_sim.json``.
SCHEMA = "repro-bench/1"


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's outcome.

    ``higher_is_better`` tells the baseline comparison which direction
    is a regression: throughputs regress downward, wall-clocks upward.
    """

    name: str
    value: float
    unit: str
    wall_s: float
    higher_is_better: bool
    detail: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "value": self.value,
            "unit": self.unit,
            "wall_s": round(self.wall_s, 4),
            "higher_is_better": self.higher_is_better,
            "detail": self.detail,
        }


# -- individual benchmarks --------------------------------------------------

def bench_engine(
    n_events: int = 200_000, *, chains: int = 4, repeats: int = 3
) -> BenchResult:
    """Calendar throughput: ``chains`` self-rescheduling event chains.

    One untimed warm-up pass (recorded in the detail, never ranked)
    absorbs allocator and bytecode-cache warm-up, then the best of
    ``repeats`` timed passes is reported -- the same noise treatment
    ``decode`` got in PR 9, without which a few-percent regression on
    this sub-100 ms section drowns in scheduler jitter.
    """

    def _once() -> tuple[float, int]:
        reg = MetricsRegistry(enabled=False)
        engine = Engine(obs=reg)
        remaining = [n_events]

        def tick() -> None:
            left = remaining[0] - 1
            remaining[0] = left
            # `chains` events are always in flight; stop refilling when
            # the ones already scheduled will land exactly on n_events.
            if left >= chains:
                engine.schedule(1e-6, tick)

        t0 = time.perf_counter()
        for _ in range(chains):
            engine.schedule(1e-6, tick)
        engine.run()
        return time.perf_counter() - t0, engine.events_run

    warmup_wall, _ = _once()
    wall, events_run = float("inf"), 0
    for _ in range(max(1, repeats)):
        w, ev = _once()
        if w < wall:
            wall, events_run = w, ev
    return BenchResult(
        name="engine",
        value=events_run / wall,
        unit="events/s",
        wall_s=wall,
        higher_is_better=True,
        detail={
            "events_run": events_run,
            "chains": chains,
            "repeats": max(1, repeats),
            "warmup_wall_s": round(warmup_wall, 4),
        },
    )


def bench_cache(n_requests: int = 40_000, *, repeats: int = 3) -> BenchResult:
    """Buffer-cache request throughput over an eviction-heavy stream.

    One synthetic client issues 16 KB requests serially (each submitted
    from the previous one's completion callback, like a replayed
    process), alternating half-KB-aligned passes of writes and reads
    over a working set twice the cache -- so the stream exercises
    allocation, clean-LRU eviction, write-behind flushing and the
    sequential-read prefetcher rather than just the hit path.

    As with ``engine``: one warm-up pass recorded separately in the
    detail, then best-of-``repeats`` timed passes (fresh cache, engine
    and device each pass -- the stream must stay cold).
    """

    def _once() -> tuple[float, int, float]:
        reg = MetricsRegistry(enabled=False)
        cfg = SimConfig(
            cache=CacheConfig(size_bytes=16 * MB, block_bytes=4 * KB)
        )
        engine = Engine(obs=reg)
        metrics = Metrics()
        disk = DiskModel(cfg.disk, seed=DEFAULT_SEED, obs=reg)
        injector = FaultInjector(cfg.faults, seed=DEFAULT_SEED)
        device = RecoveringDevice(
            disk, engine, injector, cfg.recovery, metrics, obs=reg
        )
        from repro.sim.cache import BufferCache

        length = 16 * KB
        span = 32 * MB
        cache = BufferCache(
            cfg.cache, engine, disk, metrics,
            file_sizes={1: span}, device=device, obs=reg,
        )
        cursor = [0]
        pumping = [False]
        fired_inline = [False]

        def on_done(_penalty: float = 0.0) -> None:
            if pumping[0]:
                fired_inline[0] = True  # hit completed inside submit
            else:
                pump()  # miss completed from the calendar: keep going

        def pump() -> None:
            # Trampoline, not recursion: cached writes/hits complete
            # inline, and a callback-chained issue loop would overflow
            # the stack.
            pumping[0] = True
            while cursor[0] < n_requests:
                i = cursor[0]
                cursor[0] = i + 1
                offset = (i * length) % span
                fired_inline[0] = False
                if (i // 512) % 2:
                    cache.read(1, offset, length, 1, on_done)
                else:
                    cache.write(1, offset, length, 1, on_done)
                if not fired_inline[0]:
                    break
            pumping[0] = False

        t0 = time.perf_counter()
        pump()
        engine.run()
        wall = time.perf_counter() - t0
        return wall, engine.events_run, metrics.cache.hit_fraction

    warmup_wall, _, _ = _once()
    wall, events_run, hit_fraction = float("inf"), 0, 0.0
    for _ in range(max(1, repeats)):
        w, ev, hits = _once()
        if w < wall:
            wall, events_run, hit_fraction = w, ev, hits
    return BenchResult(
        name="cache",
        value=n_requests / wall,
        unit="ops/s",
        wall_s=wall,
        higher_is_better=True,
        detail={
            "requests": n_requests,
            "events_run": events_run,
            "hit_fraction": round(hit_fraction, 4),
            "repeats": max(1, repeats),
            "warmup_wall_s": round(warmup_wall, 4),
        },
    )


def bench_decode(
    scale: float = 0.1, *, min_mb: float = 2.0, repeats: int = 3
) -> BenchResult:
    """ASCII decode bandwidth through the batch columnar path.

    A single scaled venus trace is well under a megabyte, so the encoded
    stream is tiled until it reaches ``min_mb`` -- repeated lines are
    legal input (the decoder's reconstruction state simply carries
    across copies) and keep the measurement out of timer-noise range.

    The decode is run ``repeats`` times (a fresh decoder each time; the
    vectorized path only engages from a fresh one) and the best pass is
    reported: the first pass through a multi-megabyte corpus pays page
    faults and allocator warm-up that say nothing about decode speed.
    """
    workload = generate_workload("venus", scale=scale, seed=DEFAULT_SEED)
    encoder = TraceEncoder(omit_operation_ids=True)
    lines = [encoder.encode(r) for r in workload.trace.to_records()]
    nbytes = sum(len(line) + 1 for line in lines)
    copies = max(1, -(-int(min_mb * MB) // max(1, nbytes)))
    lines = lines * copies
    nbytes *= copies

    wall = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        decoded = TraceDecoder().decode_array(lines)
        wall = min(wall, time.perf_counter() - t0)
    return BenchResult(
        name="decode",
        value=nbytes / MB / wall,
        unit="MB/s",
        wall_s=wall,
        higher_is_better=True,
        detail={
            "records": len(decoded),
            "ascii_bytes": nbytes,
            "repeats": max(1, repeats),
        },
    )


def bench_store(scale: float = 0.1, *, min_mb: float = 2.0) -> BenchResult:
    """Compiled-store rehydration vs ASCII decode of the identical trace.

    The same tiled venus stream as :func:`bench_decode` is written to
    disk, decoded once from ASCII (timed), compiled to a store bundle
    (untimed -- compilation is a one-off), then loaded back through the
    memory-mapped path with every column fully touched (timed).  The
    value is MB/s of the *ASCII-equivalent* bytes so it is directly
    comparable to the ``decode`` benchmark; the detail carries the
    speedup ratio, the zero-decode acceptance number.

    The compile cache is pinned off *inside the section itself* (same
    save/restore discipline as :func:`bench_fig8`): a warm
    ``$REPRO_TRACE_CACHE`` left over from the caller's environment or an
    earlier section must not let the timed load ride a memoized compile
    and report an incomparable number.
    """
    import numpy as np

    from repro.trace.store import compile_trace, load_compiled

    workload = generate_workload("venus", scale=scale, seed=DEFAULT_SEED)
    encoder = TraceEncoder(omit_operation_ids=True)
    lines = [encoder.encode(r) for r in workload.trace.to_records()]
    nbytes = sum(len(line) + 1 for line in lines)
    copies = max(1, -(-int(min_mb * MB) // max(1, nbytes)))
    lines = lines * copies
    nbytes *= copies

    saved = os.environ.get("REPRO_TRACE_CACHE")
    os.environ["REPRO_TRACE_CACHE"] = "off"
    try:
        with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as td:
            ascii_path = Path(td) / "bench.trace"
            ascii_path.write_text("\n".join(lines) + "\n", encoding="ascii")

            t0 = time.perf_counter()
            with open(ascii_path, "rb") as fh:
                decoded = TraceDecoder().decode_array(fh)
            ascii_s = time.perf_counter() - t0

            bundle = compile_trace(ascii_path)
            t0 = time.perf_counter()
            compiled = load_compiled(bundle)
            touched = sum(
                int(np.add.reduce(col, dtype=np.int64) & 0xFF)
                for col in compiled.trace.columns().values()
            )
            store_s = time.perf_counter() - t0
            store_bytes = bundle.stat().st_size
    finally:
        if saved is None:
            os.environ.pop("REPRO_TRACE_CACHE", None)
        else:
            os.environ["REPRO_TRACE_CACHE"] = saved

    assert len(decoded) == len(compiled.trace)
    return BenchResult(
        name="store",
        value=nbytes / MB / store_s,
        unit="MB/s",
        wall_s=store_s,
        higher_is_better=True,
        detail={
            "records": len(decoded),
            "ascii_bytes": nbytes,
            "store_bytes": store_bytes,
            "ascii_decode_s": round(ascii_s, 4),
            "store_load_s": round(store_s, 6),
            "speedup_vs_ascii": round(ascii_s / store_s, 1),
            "touch_checksum": touched,
        },
    )


def bench_fig8(scale: float = 0.1, *, jobs: int = 1) -> BenchResult:
    """End-to-end wall-clock of the Figure 8 cache-size sweep.

    Runs without the on-disk result cache (a memoized sweep would
    benchmark JSON loading) and with the compiled trace store disabled,
    so the measurement stays *cold* -- a warm user cache must not make
    a bench run incomparable to the committed baseline (``fig8_warm``
    measures the warm path deliberately).  The sweep rows are digested
    into the detail so two bench runs can be checked for identical
    results, not just comparable speed.
    """
    saved = os.environ.get("REPRO_TRACE_CACHE")
    os.environ["REPRO_TRACE_CACHE"] = "off"
    try:
        t0 = time.perf_counter()
        points = cache_size_sweep(scale=scale, seed=DEFAULT_SEED, jobs=jobs)
        wall = time.perf_counter() - t0
    finally:
        if saved is None:
            os.environ.pop("REPRO_TRACE_CACHE", None)
        else:
            os.environ["REPRO_TRACE_CACHE"] = saved
    digest = _fig8_digest(points)
    return BenchResult(
        name="fig8",
        value=wall,
        unit="s",
        wall_s=wall,
        higher_is_better=False,
        detail={
            "points": len(points),
            "scale": scale,
            "jobs": jobs,
            "digest": digest[:16],
        },
    )


def bench_fig8_batch(scale: float = 0.1, *, jobs: int = 1) -> BenchResult:
    """The Figure 8 sweep under the run-level batch kernel.

    Identical measurement protocol to :func:`bench_fig8` -- cold trace
    cache, same scale, same digest over the sweep rows -- with
    ``REPRO_ENGINE_IMPL=batch`` pinned for the section.  The digest in
    the detail must equal the ``fig8`` section's digest (bit-identical
    results are the batch kernel's contract); the wall-clock ratio
    against ``fig8`` is the kernel's speedup on this hardware.
    """
    saved_cache = os.environ.get("REPRO_TRACE_CACHE")
    saved_engine = os.environ.get("REPRO_ENGINE_IMPL")
    os.environ["REPRO_TRACE_CACHE"] = "off"
    os.environ["REPRO_ENGINE_IMPL"] = "batch"
    try:
        t0 = time.perf_counter()
        points = cache_size_sweep(scale=scale, seed=DEFAULT_SEED, jobs=jobs)
        wall = time.perf_counter() - t0
    finally:
        if saved_cache is None:
            os.environ.pop("REPRO_TRACE_CACHE", None)
        else:
            os.environ["REPRO_TRACE_CACHE"] = saved_cache
        if saved_engine is None:
            os.environ.pop("REPRO_ENGINE_IMPL", None)
        else:
            os.environ["REPRO_ENGINE_IMPL"] = saved_engine
    digest = _fig8_digest(points)
    return BenchResult(
        name="fig8_batch",
        value=wall,
        unit="s",
        wall_s=wall,
        higher_is_better=False,
        detail={
            "points": len(points),
            "scale": scale,
            "jobs": jobs,
            "engine_impl": "batch",
            "digest": digest[:16],
        },
    )


@contextmanager
def _temp_trace_cache():
    """Point ``$REPRO_TRACE_CACHE`` at a throwaway dir for one benchmark."""
    saved = os.environ.get("REPRO_TRACE_CACHE")
    with tempfile.TemporaryDirectory(prefix="repro-bench-tc-") as td:
        os.environ["REPRO_TRACE_CACHE"] = td
        try:
            yield Path(td)
        finally:
            if saved is None:
                os.environ.pop("REPRO_TRACE_CACHE", None)
            else:
                os.environ["REPRO_TRACE_CACHE"] = saved


def _fig8_digest(points) -> str:
    return hashlib.sha256(
        json.dumps(
            [
                (p.cache_mb, p.block_kb, p.idle_seconds, p.hit_fraction)
                for p in points
            ],
            sort_keys=True,
        ).encode()
    ).hexdigest()


def bench_fig8_warm(scale: float = 0.1) -> BenchResult:
    """Figure 8 sweep wall-clock with a warm compiled trace store.

    Models the second and every later run of the experiment in a fresh
    process: the per-process workload memo is cleared (as a new process
    or pool worker would start) and the venus columns rehydrate from a
    compiled bundle instead of re-running the workload model.  Three
    things are measured against a throwaway trace-store cache:

    * ``rehydrate_cold_s`` -- first-ever materialization (generate the
      workload, compile and store the bundle);
    * ``rehydrate_warm_s`` -- the same materialization in a fresh
      process with the store warm (header parse + mmap);
    * the value: the full sweep's wall-clock on the warm store, which
      is what every later ``repro run fig8`` invocation pays.

    The per-process saving (``rehydrate_cold_s - rehydrate_warm_s``) is
    deterministic and scales with worker count -- every pool worker used
    to pay the cold cost.  The row digest must match ``fig8``'s: the
    warm path is a transport change, never a results change.
    """
    from repro.exec.runner import clear_workload_memo, generated_workload

    with _temp_trace_cache():
        clear_workload_memo()
        t0 = time.perf_counter()
        generated_workload("venus", scale, DEFAULT_SEED)
        rehydrate_cold_s = time.perf_counter() - t0

        clear_workload_memo()
        t0 = time.perf_counter()
        generated_workload("venus", scale, DEFAULT_SEED)
        rehydrate_warm_s = time.perf_counter() - t0

        clear_workload_memo()
        t0 = time.perf_counter()
        points = cache_size_sweep(scale=scale, seed=DEFAULT_SEED, jobs=1)
        wall = time.perf_counter() - t0
    clear_workload_memo()
    return BenchResult(
        name="fig8_warm",
        value=wall,
        unit="s",
        wall_s=wall,
        higher_is_better=False,
        detail={
            "points": len(points),
            "scale": scale,
            "rehydrate_cold_s": round(rehydrate_cold_s, 4),
            "rehydrate_warm_s": round(rehydrate_warm_s, 6),
            "rehydrate_speedup": round(rehydrate_cold_s / rehydrate_warm_s, 1),
            "saved_per_process_s": round(rehydrate_cold_s - rehydrate_warm_s, 4),
            "digest": _fig8_digest(points)[:16],
        },
    )


# -- suite ------------------------------------------------------------------

#: name -> (quick kwargs, full kwargs)
_SUITE: dict[str, tuple[Callable[..., BenchResult], dict, dict]] = {
    "engine": (bench_engine, {"n_events": 60_000}, {"n_events": 200_000}),
    "cache": (bench_cache, {"n_requests": 10_000}, {"n_requests": 40_000}),
    "decode": (
        bench_decode,
        {"scale": 0.1, "min_mb": 1.0},
        {"scale": 0.1, "min_mb": 4.0},
    ),
    "store": (
        bench_store,
        {"scale": 0.1, "min_mb": 1.0},
        {"scale": 0.1, "min_mb": 4.0},
    ),
    "fig8": (bench_fig8, {"scale": 0.05}, {"scale": 0.1}),
    "fig8_batch": (bench_fig8_batch, {"scale": 0.05}, {"scale": 0.1}),
    "fig8_warm": (bench_fig8_warm, {"scale": 0.05}, {"scale": 0.1}),
}


def run_suite(
    *,
    quick: bool = False,
    jobs: int = 1,
    repeats: int = 1,
    profile_to: str | Path | None = None,
) -> dict:
    """Run every benchmark; returns the ``BENCH_sim.json`` payload.

    ``repeats`` re-runs each benchmark and keeps the best measurement
    (throughput max / wall-clock min) -- the standard way to strip
    scheduler noise from a microbenchmark.

    ``profile_to`` wraps every section in :mod:`cProfile` and writes a
    per-section top-30 cumulative report to that path (the
    ``BENCH_profile.txt`` CI artifact).  Profiling taxes the hot path by
    design, so a profiled payload carries ``"profiled": true`` and its
    numbers must not be compared against an unprofiled baseline --
    :func:`compare_to_baseline` refuses to.
    """
    results: dict[str, BenchResult] = {}
    profiles: dict[str, cProfile.Profile] = {}
    for name, (fn, quick_kwargs, full_kwargs) in _SUITE.items():
        kwargs = dict(quick_kwargs if quick else full_kwargs)
        if name in ("fig8", "fig8_batch"):
            kwargs["jobs"] = jobs
        prof = cProfile.Profile() if profile_to is not None else None
        best: BenchResult | None = None
        for _ in range(max(1, repeats)):
            if prof is not None:
                prof.enable()
            r = fn(**kwargs)
            if prof is not None:
                prof.disable()
            if (
                best is None
                or (r.higher_is_better and r.value > best.value)
                or (not r.higher_is_better and r.value < best.value)
            ):
                best = r
        results[name] = best
        if prof is not None:
            profiles[name] = prof
    _annotate_batch_speedup(results)
    payload = {
        "schema": SCHEMA,
        "quick": quick,
        "repeats": repeats,
        "benchmarks": {name: r.to_json() for name, r in results.items()},
    }
    if profile_to is not None:
        payload["profiled"] = True
        payload["profile"] = str(write_profile_report(profiles, profile_to))
    return payload


def write_profile_report(
    profiles: dict[str, cProfile.Profile], path: str | Path
) -> Path:
    """Write one top-30 cumulative pstats block per bench section.

    The report is where the *next* perf PR starts: cumulative ordering
    names the layer to attack (kernel vs cache vs decode), and the
    per-section split keeps a fig8 sweep's two million calls from
    burying the cache bench's hot path.
    """
    path = Path(path)
    buf = io.StringIO()
    for name, prof in profiles.items():
        buf.write(f"== section: {name} (top 30 by cumulative time) ==\n")
        stats = pstats.Stats(prof, stream=buf)
        stats.strip_dirs().sort_stats("cumulative").print_stats(30)
        buf.write("\n")
    path.write_text(buf.getvalue())
    return path


def _annotate_batch_speedup(results: dict[str, BenchResult]) -> None:
    """Record the batch kernel's speedup over the event engine.

    Writes ``speedup_vs_event`` (event wall / batch wall; > 1 means the
    batch kernel is faster) and ``digests_match`` into the
    ``fig8_batch`` detail, so the payload itself says whether the batch
    variant pulled its weight -- the regression a PR once shipped
    silently (batch 3.89 s vs event 3.74 s) is now visible in every
    bench artifact.  The CI bench job flags (non-gating) on
    ``speedup_vs_event < 1``.
    """
    event = results.get("fig8")
    batch = results.get("fig8_batch")
    if event is None or batch is None or not batch.wall_s:
        return
    batch.detail["speedup_vs_event"] = round(event.wall_s / batch.wall_s, 3)
    batch.detail["digests_match"] = (
        event.detail.get("digest") == batch.detail.get("digest")
    )


def compare_to_baseline(
    payload: dict, baseline: dict, *, max_regression: float = 0.25
) -> list[str]:
    """Regression messages for every benchmark worse than the baseline.

    A throughput benchmark regresses when it drops below
    ``(1 - max_regression)`` of the baseline value; a wall-clock
    benchmark when it exceeds ``(1 + max_regression)``.  Benchmarks
    missing from either side are skipped (a new benchmark must not fail
    the first run that introduces it).  Quick and full payloads run
    different workload sizes, so comparing across modes is refused.
    """
    if payload.get("quick") != baseline.get("quick"):
        raise ValueError(
            "cannot compare a "
            f"{'quick' if payload.get('quick') else 'full'} run against a "
            f"{'quick' if baseline.get('quick') else 'full'} baseline"
        )
    if payload.get("profiled") and not baseline.get("profiled"):
        raise ValueError(
            "cannot compare a profiled run against an unprofiled "
            "baseline: cProfile instrumentation taxes every measurement"
        )
    problems: list[str] = []
    base_benches = baseline.get("benchmarks", {})
    for name, entry in payload.get("benchmarks", {}).items():
        base = base_benches.get(name)
        if base is None:
            continue
        value, ref = entry["value"], base["value"]
        if entry.get("higher_is_better", True):
            floor = ref * (1.0 - max_regression)
            if value < floor:
                problems.append(
                    f"{name}: {value:.1f} {entry['unit']} is below "
                    f"{floor:.1f} ({ref:.1f} baseline - {max_regression:.0%})"
                )
        else:
            ceiling = ref * (1.0 + max_regression)
            if value > ceiling:
                problems.append(
                    f"{name}: {value:.2f} {entry['unit']} exceeds "
                    f"{ceiling:.2f} ({ref:.2f} baseline + {max_regression:.0%})"
                )
    return problems


def _table_suffix(name: str, detail: dict) -> str:
    """Workload identity a reader needs on the table line itself.

    The ``cache`` section runs 10k requests in quick mode but 40k in
    full mode; without the request count (and the hit fraction it
    implies) on the line, a quick run reads as a 4x regression against
    a full baseline.
    """
    if name == "cache" and "requests" in detail:
        suffix = f"  requests={detail['requests']:,}"
        if "hit_fraction" in detail:
            suffix += f" hits={detail['hit_fraction']:.2%}"
        return suffix
    return ""


def render_table(payload: dict) -> str:
    """Human-readable summary of a bench payload."""
    lines = [
        f"== repro bench ({'quick' if payload.get('quick') else 'full'}) =="
    ]
    if payload.get("profiled"):
        lines[0] += " [profiled: timings include cProfile overhead]"
    for name, entry in payload["benchmarks"].items():
        lines.append(
            f"{name:8s} {entry['value']:>12,.1f} {entry['unit']:<9s}"
            f" [{entry['wall_s']:.2f} s]"
            + _table_suffix(name, entry.get("detail", {}))
        )
    batch = payload["benchmarks"].get("fig8_batch", {}).get("detail", {})
    speedup = batch.get("speedup_vs_event")
    if speedup is not None:
        verdict = "faster" if speedup > 1.0 else "SLOWER (flag)"
        lines.append(
            f"batch kernel: {speedup:.2f}x vs event engine ({verdict}),"
            f" digests {'match' if batch.get('digests_match') else 'DIFFER'}"
        )
    return "\n".join(lines)


def write_payload(payload: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())
