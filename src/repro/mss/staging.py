"""Job start-up staging: how long before a data set is online.

A batch job whose files sit on the MSS cannot start streaming at disk
speed until every data file has been staged in.  This experiment stages
a generated workload's files through a drive-limited MSS and reports the
time-to-ready -- the start-up latency the section 6 simulations begin
*after*.  Multi-file data sets (venus's six files) parallelize across
drives; single-file sets are tape-bandwidth-bound no matter how many
drives exist.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mss.hierarchy import Level, MassStorageSystem, MSSConfig
from repro.sim.events import Engine
from repro.util.units import MB
from repro.workloads.base import GeneratedWorkload


@dataclass(frozen=True)
class StagingResult:
    """Outcome of staging one workload's files."""

    name: str
    n_files: int
    total_bytes: int
    n_drives: int
    ready_at_s: float  #: when the last file arrived on disk
    drive_busy_s: float
    max_queue_depth: int

    @property
    def effective_bandwidth_mb_s(self) -> float:
        if self.ready_at_s <= 0:
            return 0.0
        return self.total_bytes / MB / self.ready_at_s


def data_file_sizes(workload: GeneratedWorkload) -> dict[int, int]:
    """Per-file apparent sizes (max accessed end offset) of a workload."""
    trace = workload.trace
    sizes: dict[int, int] = {}
    ends = trace.offset + trace.length
    for fid in trace.file_ids():
        sizes[int(fid)] = int(ends[trace.file_id == fid].max())
    return sizes


def stage_workload(
    workload: GeneratedWorkload,
    *,
    n_drives: int = 4,
    level: Level = Level.NEARLINE,
    config: MSSConfig | None = None,
) -> StagingResult:
    """Stage every file of a workload from tape; returns the latency."""
    engine = Engine()
    if config is None:
        config = MSSConfig(n_drives=n_drives)
    mss = MassStorageSystem(engine, config)
    sizes = data_file_sizes(workload)
    ready: dict[int, float] = {}
    for fid, size in sizes.items():
        mss.register(fid, size, level)
    for fid in sizes:
        mss.open_file(fid, lambda f=fid: ready.setdefault(f, engine.now))
    engine.run()
    return StagingResult(
        name=workload.name,
        n_files=len(sizes),
        total_bytes=sum(sizes.values()),
        n_drives=config.n_drives,
        ready_at_s=max(ready.values()) if ready else 0.0,
        drive_busy_s=mss.stats.busy_seconds,
        max_queue_depth=mss.stats.max_queue_depth,
    )
