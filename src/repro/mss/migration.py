"""Idle-time migration: keeping the online disks from filling.

A watermark policy in the style of contemporary MSS daemons (the paper's
reference [1] surveys them): when online usage crosses the high
watermark, demote least-recently-accessed files until usage falls below
the low watermark.  Files pinned (currently open) are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mss.hierarchy import Level, MassStorageSystem
from repro.util.errors import SimulationError


@dataclass
class MigrationReport:
    """What one migration pass did."""

    migrated_files: list[int] = field(default_factory=list)
    bytes_freed: int = 0

    @property
    def n_migrated(self) -> int:
        return len(self.migrated_files)


@dataclass
class MigrationPolicy:
    """High/low watermark LRU demotion."""

    mss: MassStorageSystem
    high_watermark: float = 0.9
    low_watermark: float = 0.75
    pinned: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not 0 < self.low_watermark < self.high_watermark <= 1:
            raise ValueError(
                "need 0 < low_watermark < high_watermark <= 1"
            )

    def pin(self, file_id: int) -> None:
        """Protect an open file from demotion."""
        self.pinned.add(file_id)

    def unpin(self, file_id: int) -> None:
        self.pinned.discard(file_id)

    @property
    def usage_fraction(self) -> float:
        return self.mss.disk_used_bytes / self.mss.config.disk_capacity_bytes

    def needed(self) -> bool:
        return self.usage_fraction > self.high_watermark

    def run_pass(self) -> MigrationReport:
        """Demote LRU files until below the low watermark (or stuck)."""
        report = MigrationReport()
        if not self.needed():
            return report
        target = self.low_watermark * self.mss.config.disk_capacity_bytes
        candidates = sorted(
            (
                fid
                for fid in self.mss.files_at(Level.DISK)
                if fid not in self.pinned
            ),
            key=self.mss.last_access,
        )
        for fid in candidates:
            if self.mss.disk_used_bytes <= target:
                break
            size = self.mss.size_of(fid)
            self.mss.migrate_out(fid)
            report.migrated_files.append(fid)
            report.bytes_freed += size
        return report

    def ensure_room(self, size_bytes: int) -> MigrationReport:
        """Free at least ``size_bytes`` of online space (for a stage-in).

        Raises when even demoting every unpinned file cannot make room.
        """
        report = MigrationReport()
        candidates = sorted(
            (
                fid
                for fid in self.mss.files_at(Level.DISK)
                if fid not in self.pinned
            ),
            key=self.mss.last_access,
        )
        i = 0
        while self.mss.disk_free_bytes < size_bytes:
            if i >= len(candidates):
                raise SimulationError(
                    f"cannot free {size_bytes} bytes: all remaining disk "
                    "residents are pinned"
                )
            fid = candidates[i]
            i += 1
            size = self.mss.size_of(fid)
            self.mss.migrate_out(fid)
            report.migrated_files.append(fid)
            report.bytes_freed += size
        return report
