"""The mass storage system: the bottom of the paper's storage hierarchy.

"The I/O system has ... several terabytes of nearline and offline tape
storage.  The tape storage is divided into two parts -- a nearline
storage facility called the Mass Storage System (MSS), which can
automatically mount tapes with requested data, and the extensive offline
tape library which requires operator intervention."

The buffering study (section 6) sits above this layer, but a production
file's life starts here: before a job can stream its data set at disk
speed, the data must be *staged in* through a small number of tape
drives.  This package models that hierarchy -- residence levels, a
drive-limited staging queue, and an idle-time migration policy -- so the
whole disk/SSD/tape pyramid of section 2.2 is executable.
"""

from repro.mss.hierarchy import (
    DriveStats,
    Level,
    MassStorageSystem,
    MSSConfig,
    StageRequest,
)
from repro.mss.migration import MigrationPolicy, MigrationReport

__all__ = [
    "DriveStats",
    "Level",
    "MassStorageSystem",
    "MSSConfig",
    "StageRequest",
    "MigrationPolicy",
    "MigrationReport",
]
