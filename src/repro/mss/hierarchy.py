"""Residence levels and drive-limited staging.

Files live at one of three levels:

* ``DISK`` -- online; a job can open and stream immediately;
* ``NEARLINE`` -- on a robot-mounted tape: staging in costs a mount plus
  a tape-speed transfer, through one of a small number of drives;
* ``OFFLINE`` -- in the vault: an operator fetch (minutes) precedes the
  mount.

Unlike the paper's *disk* model, the tape drives do queue: the robot
arms and drives are the scarce resource, so concurrent stage requests
wait FIFO for a free drive.  All timing runs on the same event engine
the buffering simulator uses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.sim.events import Engine
from repro.util.errors import SimulationError
from repro.util.units import MB


class Level(Enum):
    DISK = "disk"
    NEARLINE = "nearline"
    OFFLINE = "offline"


@dataclass(frozen=True)
class MSSConfig:
    """Hierarchy timing and capacity parameters (late-1980s class)."""

    n_drives: int = 4
    #: robot pick + thread + position
    mount_s: float = 15.0
    #: operator fetch from the vault, on top of the mount
    operator_fetch_s: float = 300.0
    tape_bandwidth_bytes_per_s: float = 3.0 * MB
    #: online disk capacity the staged files share
    disk_capacity_bytes: int = 35 * 1024 * MB  # the Y-MP's 35.2 GB of disk

    def __post_init__(self) -> None:
        if self.n_drives < 1:
            raise ValueError("need at least one tape drive")
        if self.disk_capacity_bytes <= 0:
            raise ValueError("disk capacity must be positive")


@dataclass
class StageRequest:
    """One stage-in: a file moving up to disk."""

    file_id: int
    size_bytes: int
    submitted_at: float
    started_at: float | None = None
    finished_at: float | None = None
    on_done: Callable[[], None] | None = None

    @property
    def queue_wait_s(self) -> float:
        if self.started_at is None:
            return 0.0
        return self.started_at - self.submitted_at

    @property
    def latency_s(self) -> float:
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.submitted_at


@dataclass
class DriveStats:
    """Aggregate drive usage."""

    stages_completed: int = 0
    bytes_staged: int = 0
    busy_seconds: float = 0.0
    max_queue_depth: int = 0


@dataclass
class _FileState:
    level: Level
    size_bytes: int
    last_access: float = 0.0


class MassStorageSystem:
    """Residence tracking + drive-limited staging over an event engine."""

    def __init__(self, engine: Engine, config: MSSConfig | None = None):
        self.engine = engine
        self.config = config if config is not None else MSSConfig()
        self._files: dict[int, _FileState] = {}
        self._free_drives = self.config.n_drives
        self._queue: deque[StageRequest] = deque()
        self.stats = DriveStats()
        self.requests: list[StageRequest] = []
        self._disk_used = 0

    # -- catalogue ----------------------------------------------------------
    def register(self, file_id: int, size_bytes: int, level: Level) -> None:
        """Add a file to the catalogue at a residence level."""
        if size_bytes <= 0:
            raise SimulationError("file size must be positive")
        if file_id in self._files:
            raise SimulationError(f"file {file_id} already registered")
        self._files[file_id] = _FileState(level, size_bytes)
        if level is Level.DISK:
            self._reserve_disk(size_bytes)

    def level_of(self, file_id: int) -> Level:
        return self._state(file_id).level

    def size_of(self, file_id: int) -> int:
        return self._state(file_id).size_bytes

    def files_at(self, level: Level) -> list[int]:
        return [fid for fid, s in self._files.items() if s.level is level]

    def _state(self, file_id: int) -> _FileState:
        try:
            return self._files[file_id]
        except KeyError:
            raise SimulationError(f"unknown file {file_id}") from None

    @property
    def disk_used_bytes(self) -> int:
        return self._disk_used

    @property
    def disk_free_bytes(self) -> int:
        return self.config.disk_capacity_bytes - self._disk_used

    def _reserve_disk(self, size: int) -> None:
        if self._disk_used + size > self.config.disk_capacity_bytes:
            raise SimulationError(
                f"online disk full: need {size} bytes, "
                f"{self.disk_free_bytes} free (migrate something out)"
            )
        self._disk_used += size

    # -- access path ----------------------------------------------------------
    def open_file(self, file_id: int, on_ready: Callable[[], None]) -> StageRequest | None:
        """A job opens a file: ready now if on disk, staged in otherwise.

        Returns the stage request when staging was needed, None for a
        disk-resident file (``on_ready`` is then called synchronously).
        """
        state = self._state(file_id)
        state.last_access = self.engine.now
        if state.level is Level.DISK:
            on_ready()
            return None
        return self._stage_in(file_id, on_ready)

    def _stage_in(self, file_id: int, on_done: Callable[[], None]) -> StageRequest:
        state = self._state(file_id)
        self._reserve_disk(state.size_bytes)
        request = StageRequest(
            file_id=file_id,
            size_bytes=state.size_bytes,
            submitted_at=self.engine.now,
            on_done=on_done,
        )
        self.requests.append(request)
        self._queue.append(request)
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, len(self._queue)
        )
        self._dispatch()
        return request

    def _dispatch(self) -> None:
        while self._free_drives > 0 and self._queue:
            request = self._queue.popleft()
            self._free_drives -= 1
            state = self._state(request.file_id)
            request.started_at = self.engine.now
            service = self.config.mount_s + (
                request.size_bytes / self.config.tape_bandwidth_bytes_per_s
            )
            if state.level is Level.OFFLINE:
                service += self.config.operator_fetch_s
            self.stats.busy_seconds += service
            self.engine.schedule(
                service, lambda r=request: self._stage_done(r)
            )

    def _stage_done(self, request: StageRequest) -> None:
        request.finished_at = self.engine.now
        state = self._state(request.file_id)
        state.level = Level.DISK
        self.stats.stages_completed += 1
        self.stats.bytes_staged += request.size_bytes
        self._free_drives += 1
        if request.on_done is not None:
            request.on_done()
        self._dispatch()

    # -- migration hook --------------------------------------------------------
    def migrate_out(self, file_id: int, to: Level = Level.NEARLINE) -> None:
        """Demote a disk-resident file (frees online capacity).

        Writing the tape copy is assumed to happen lazily off the
        critical path, as real MSS migration daemons do.
        """
        if to is Level.DISK:
            raise SimulationError("migrate_out target must be tape")
        state = self._state(file_id)
        if state.level is not Level.DISK:
            raise SimulationError(f"file {file_id} is not on disk")
        state.level = to
        self._disk_used -= state.size_bytes

    def last_access(self, file_id: int) -> float:
        return self._state(file_id).last_access
