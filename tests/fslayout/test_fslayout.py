"""Block allocation and logical-to-physical trace translation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fslayout.allocator import BlockAllocator, Extent, FileLayout
from repro.fslayout.analysis import (
    amplification_factor,
    analyze_physical,
    seek_distances,
)
from repro.fslayout.translate import (
    DISK_FILE_ID,
    layout_for_trace,
    translate_trace,
)
from repro.trace import decode_lines, encode_records
from repro.trace import flags as F
from repro.trace.array import TraceArray
from repro.trace.record import TraceRecord
from repro.util.errors import SimulationError
from repro.util.rng import make_rng
from repro.util.units import TRACE_BLOCK_SIZE
from repro.workloads import generate_workload

BS = TRACE_BLOCK_SIZE


class TestExtentAndLayout:
    def test_extent_validation(self):
        with pytest.raises(ValueError):
            Extent(-1, 4)
        with pytest.raises(ValueError):
            Extent(0, 0)
        assert Extent(10, 5).end_block == 15

    def test_contiguous_runs(self):
        layout = FileLayout(1, [Extent(100, 10)])
        assert layout.physical_runs(0, 10 * BS) == [(100, 10)]
        assert layout.physical_runs(BS, BS) == [(101, 1)]

    def test_sub_block_access_rounds_out(self):
        layout = FileLayout(1, [Extent(100, 10)])
        # 100 bytes at offset 700 touches blocks 1 and 2
        assert layout.physical_runs(700, 100) == [(101, 1)]
        assert layout.physical_runs(500, 100) == [(100, 2)]

    def test_fragmented_runs_split(self):
        layout = FileLayout(1, [Extent(100, 4), Extent(500, 4)])
        runs = layout.physical_runs(0, 8 * BS)
        assert runs == [(100, 4), (500, 4)]
        # a range inside the second extent
        assert layout.physical_runs(5 * BS, 2 * BS) == [(501, 2)]

    def test_adjacent_extents_merge_in_runs(self):
        layout = FileLayout(1, [Extent(100, 4), Extent(104, 4)])
        assert layout.physical_runs(0, 8 * BS) == [(100, 8)]

    def test_access_beyond_layout_rejected(self):
        layout = FileLayout(1, [Extent(0, 2)])
        with pytest.raises(SimulationError):
            layout.physical_runs(0, 3 * BS)

    def test_run_args_validated(self):
        layout = FileLayout(1, [Extent(0, 4)])
        with pytest.raises(ValueError):
            layout.physical_runs(-1, 10)
        with pytest.raises(ValueError):
            layout.physical_runs(0, 0)


class TestAllocator:
    def test_contiguous_allocation(self):
        a = BlockAllocator(1000)
        layout = a.allocate(1, 10 * BS)
        assert layout.n_extents == 1
        assert layout.n_blocks == 10

    def test_growth_merges_adjacent(self):
        a = BlockAllocator(1000)
        a.allocate(1, 4 * BS)
        layout = a.allocate(1, 4 * BS)
        assert layout.n_extents == 1  # grew in place
        assert layout.n_blocks == 8

    def test_interleaving_fragments(self):
        a = BlockAllocator(10_000)
        for _ in range(5):
            a.allocate(1, 4 * BS)
            a.allocate(2, 4 * BS)
        assert a.layout(1).n_extents == 5
        assert a.layout(2).n_extents == 5

    def test_extent_cap(self):
        a = BlockAllocator(10_000, max_extent_blocks=4)
        layout = a.allocate(1, 16 * BS)
        assert layout.n_blocks == 16
        assert all(e.n_blocks <= 4 for e in layout.extents)

    def test_cap_with_rng_varies(self):
        a = BlockAllocator(10_000, max_extent_blocks=8, rng=make_rng(0))
        layout = a.allocate(1, 64 * BS)
        lengths = {e.n_blocks for e in layout.extents}
        assert len(lengths) > 1

    def test_disk_full(self):
        a = BlockAllocator(8)
        with pytest.raises(SimulationError):
            a.allocate(1, 9 * BS)

    def test_rounding_up(self):
        a = BlockAllocator(100)
        layout = a.allocate(1, 100)  # less than one block
        assert layout.n_blocks == 1

    def test_unknown_file(self):
        with pytest.raises(SimulationError):
            BlockAllocator(10).layout(42)

    @given(st.lists(st.integers(1, 10_000), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_allocation_covers_bytes(self, sizes):
        a = BlockAllocator(10_000_000)
        total = 0
        for n in sizes:
            a.allocate(7, n)
            total += n
        assert a.layout(7).size_bytes >= total
        # never over-allocates by more than a block per request
        assert a.layout(7).size_bytes < total + len(sizes) * BS


def logical_trace(entries):
    """entries: (fid, offset, length, t) tuples."""
    n = len(entries)
    return TraceArray.from_columns(
        record_type=np.full(n, F.TRACE_LOGICAL_RECORD),
        file_id=[e[0] for e in entries],
        process_id=np.ones(n),
        operation_id=np.arange(1, n + 1),
        offset=[e[1] for e in entries],
        length=[e[2] for e in entries],
        start_time=[e[3] for e in entries],
        duration=np.full(n, 5),
        process_clock=np.arange(1, n + 1),
    )


class TestTranslation:
    def test_contiguous_file_one_physical_per_logical(self):
        trace = logical_trace([(1, 0, 4 * BS, 10), (1, 4 * BS, 4 * BS, 20)])
        tr = translate_trace(trace)
        assert len(tr.physical) == 2
        assert list(tr.physical.operation_id) == [1, 2]
        assert set(tr.physical.file_id.tolist()) == {DISK_FILE_ID}
        assert not tr.physical.is_logical.any()

    def test_interleaved_files_fan_out(self):
        # Two files grown alternately: each 8-block read spans 2 extents.
        entries = []
        t = 0
        for i in range(4):
            for fid in (1, 2):
                entries.append((fid, i * 4 * BS, 4 * BS, t))
                t += 10
        trace = logical_trace(entries)
        tr = translate_trace(trace)
        report = analyze_physical(tr)
        assert report.max_extents >= 4
        # read both files fully in one request each
        big = logical_trace([(1, 0, 16 * BS, 1000), (2, 0, 16 * BS, 1010)])
        tr2 = translate_trace(big, layout_for_trace(trace))
        assert len(tr2.physical) > 2  # fragmentation fan-out

    def test_amplification_from_sub_block_requests(self):
        trace = logical_trace([(1, 0, 100, 10)])  # 100 B -> one 512 B block
        tr = translate_trace(trace)
        assert amplification_factor(tr) == pytest.approx(BS / 100)

    def test_operation_id_links_logical_and_physical(self):
        trace = logical_trace([(1, 0, 8 * BS, 10)])
        tr = translate_trace(trace, max_extent_blocks=2)
        assert len(tr.physical) >= 2
        assert set(tr.physical.operation_id.tolist()) == {1}

    def test_merged_stream_time_ordered_and_encodable(self):
        trace = logical_trace(
            [(1, 0, 4 * BS, 10), (2, 0, 4 * BS, 200), (1, 4 * BS, 4 * BS, 400)]
        )
        tr = translate_trace(trace)
        merged = tr.merged()
        assert len(merged) == 6
        assert np.all(np.diff(merged.start_time) >= 0)
        # the full logical+physical stream survives the ASCII format
        records = list(merged.to_records())
        lines = encode_records(records)
        decoded = [r for r in decode_lines(lines) if isinstance(r, TraceRecord)]
        assert decoded == records

    def test_write_flag_preserved(self):
        n = 2
        trace = TraceArray.from_columns(
            record_type=[F.TRACE_LOGICAL_RECORD, F.TRACE_LOGICAL_RECORD | F.TRACE_WRITE],
            file_id=[1, 1],
            process_id=np.ones(n),
            operation_id=[1, 2],
            offset=[0, 4 * BS],
            length=[4 * BS, 4 * BS],
            start_time=[10, 20],
            duration=[5, 5],
            process_clock=[1, 2],
        )
        tr = translate_trace(trace)
        assert not tr.physical.is_write[0]
        assert tr.physical.is_write[1]


class TestPhysicalAnalysis:
    def test_seek_distances_sequential(self):
        trace = logical_trace([(1, 0, 4 * BS, 10), (1, 4 * BS, 4 * BS, 20)])
        tr = translate_trace(trace)
        seeks = seek_distances(tr.physical)
        assert seeks.tolist() == [0]

    def test_empty_and_single(self):
        trace = logical_trace([(1, 0, BS, 10)])
        tr = translate_trace(trace)
        assert seek_distances(tr.physical).size == 0
        report = analyze_physical(tr)
        assert report.n_physical == 1
        assert report.fan_out == 1.0

    def test_fragmentation_increases_seeks(self):
        venus = generate_workload("venus", scale=0.1)
        contiguous = analyze_physical(translate_trace(venus.trace))
        fragmented = analyze_physical(
            translate_trace(venus.trace, max_extent_blocks=64)
        )
        assert fragmented.max_extents > contiguous.max_extents
        assert fragmented.fan_out > contiguous.fan_out
        assert (
            fragmented.sequential_fraction < contiguous.sequential_fraction + 1e-9
        )
        # block-aligned venus requests: no rounding amplification
        assert contiguous.amplification == pytest.approx(1.0)
