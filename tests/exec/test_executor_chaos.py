"""Chaos tests for the queue backend: workers die, sweeps survive.

Mirrors the fault-injection style of ``tests/sim/test_faults.py``: the
failure is injected deterministically (the ``REPRO_EXEC_KILL_FLAG``
hook -- a flag *file* kills exactly one worker, atomically consumed; a
flag *directory* kills every claiming worker, so retry exhaustion is
reachable) and the assertions are about the recovery contract:

* a killed worker is replaced (``exec.executor.worker_restarts`` goes
  nonzero) and its claimed point is re-queued and re-simulated to the
  bit-identical digest;
* no shared-memory segment outlives the sweep, however it ended;
* a point whose workers die repeatedly fails the sweep with a named
  error instead of retrying forever;
* cancellation and failing points tear the worker fleet down cleanly.
"""

import pytest

from repro.exec.executor import MAX_TASK_RETRIES
from repro.exec.runner import AppWorkloadSpec, SweepPointSpec, SweepRunner
from repro.obs.registry import MetricsRegistry, use_registry
from repro.sim.config import CacheConfig, SimConfig
from repro.util.errors import SweepCancelled, SweepError
from repro.util.units import MB

SCALE = 0.05


def venus_points(n_sizes=(8, 32)):
    workload = AppWorkloadSpec(app="venus", scale=SCALE, n_copies=2)
    return [
        SweepPointSpec(
            workload=workload,
            config=SimConfig(cache=CacheConfig(size_bytes=mb * MB)),
            label=f"venus {mb}MB",
        )
        for mb in n_sizes
    ]


def shm_leftovers():
    import pathlib

    dev = pathlib.Path("/dev/shm")
    if not dev.is_dir():
        return set()
    return {p.name for p in dev.glob("psm_*")}


class TestWorkerDeath:
    def test_killed_worker_is_replaced_and_sweep_completes(
        self, tmp_path, monkeypatch
    ):
        points = venus_points()
        baseline = [
            (r.key, r.result.digest())
            for r in SweepRunner(jobs=1, cache=None).run(points)
        ]
        flag = tmp_path / "kill-one-worker"
        flag.touch()
        monkeypatch.setenv("REPRO_EXEC_KILL_FLAG", str(flag))
        before = shm_leftovers()
        registry = MetricsRegistry()
        with use_registry(registry):
            runner = SweepRunner(jobs=2, executor="queue", cache=None)
            results = runner.run(points)
        assert [(r.key, r.result.digest()) for r in results] == baseline
        assert not flag.exists()  # exactly one worker consumed the flag
        counters = registry.counters()
        assert counters.get("exec.executor.worker_restarts", 0) >= 1
        assert shm_leftovers() <= before
        assert runner.simulated == len(points)

    def test_repeatedly_dying_point_fails_with_named_error(
        self, tmp_path, monkeypatch
    ):
        # A directory flag never gets consumed: every claiming worker
        # dies, so one point must exhaust MAX_TASK_RETRIES and fail the
        # sweep instead of looping forever.
        monkeypatch.setenv("REPRO_EXEC_KILL_FLAG", str(tmp_path))
        before = shm_leftovers()
        registry = MetricsRegistry()
        with use_registry(registry):
            with pytest.raises(SweepError, match="worker died"):
                SweepRunner(jobs=2, executor="queue", cache=None).run(
                    venus_points()
                )
        counters = registry.counters()
        assert counters.get(
            "exec.executor.worker_restarts", 0
        ) > MAX_TASK_RETRIES
        assert shm_leftovers() <= before


class TestQueueFailurePropagation:
    def test_failing_point_fails_fast_with_label(self):
        points = venus_points((8,)) + [
            SweepPointSpec(
                workload=AppWorkloadSpec(app="doom", scale=SCALE),
                config=SimConfig(),
                label="doom point",
            )
        ]
        before = shm_leftovers()
        with pytest.raises(SweepError, match="doom point"):
            SweepRunner(jobs=2, executor="queue", cache=None).run(points)
        assert shm_leftovers() <= before

    def test_worker_error_does_not_count_as_restart(self):
        # A point that *raises* is a failed point, not a dead worker --
        # it must not be retried.
        registry = MetricsRegistry()
        with use_registry(registry):
            with pytest.raises(SweepError, match="doom"):
                SweepRunner(jobs=1, executor="queue", cache=None).run(
                    [
                        SweepPointSpec(
                            workload=AppWorkloadSpec(app="doom", scale=SCALE),
                            config=SimConfig(),
                            label="doom point",
                        )
                    ]
                )
        assert registry.counters().get(
            "exec.executor.worker_restarts", 0
        ) == 0


class TestQueueCancellation:
    def test_cancel_mid_sweep_raises_and_cleans_up(self):
        points = venus_points((8, 16, 32, 64))
        seen = []

        def progress(event):
            if event["event"] == "point_done":
                seen.append(event["index"])

        def should_cancel():
            return len(seen) >= 1

        before = shm_leftovers()
        with pytest.raises(SweepCancelled, match="unfinished"):
            SweepRunner(
                jobs=2,
                executor="queue",
                cache=None,
                progress=progress,
                should_cancel=should_cancel,
            ).run(points)
        assert shm_leftovers() <= before

    def test_cancel_before_start_raises_before_any_work(self):
        runner = SweepRunner(
            jobs=2, executor="queue", cache=None,
            should_cancel=lambda: True,
        )
        with pytest.raises(SweepCancelled):
            runner.run(venus_points())
        assert runner.simulated == 0
