"""Tiered result cache: read-through, write-back, GC, compaction.

The arrangement under test is the DVC-remote shape from
docs/EXECUTORS.md: a local tier consulted first and always written,
backed by a shared tier that other hosts populate.  Correctness here is
about *placement and accounting* -- what lands in which tier, what the
counters say, what GC may and may not evict -- since bit identity of
the payloads is already locked down by the conformance matrix.
"""

import json
import os
import time

import pytest

from repro.exec.cache import ResultCache
from repro.exec.cache_tiers import (
    CacheTier,
    TieredResultCache,
    parse_size,
    parse_tier_entry,
    resolve_cache_tiers,
    tiered_cache_from_spec,
)
from repro.exec.runner import AppWorkloadSpec, SweepPointSpec, SweepRunner
from repro.obs.registry import MetricsRegistry, use_registry
from repro.sim.config import CacheConfig, SimConfig
from repro.util.units import MB


@pytest.fixture(scope="module")
def sim_result():
    """One real (tiny) SimulationResult to shuttle between tiers."""
    return SweepRunner(jobs=1).run_point(
        SweepPointSpec(
            workload=AppWorkloadSpec(app="venus", scale=0.05),
            config=SimConfig(cache=CacheConfig(size_bytes=8 * MB)),
        )
    ).result


def key_n(n: int) -> str:
    return f"{n:02x}" * 32


def stack(tmp_path, **budgets):
    return TieredResultCache(
        local=CacheTier(
            tmp_path / "local", name="local",
            budget_bytes=budgets.get("local"),
        ),
        shared=CacheTier(
            tmp_path / "shared", name="shared",
            budget_bytes=budgets.get("shared"),
        ),
    )


def backdate(path, *, by_s: float) -> None:
    """Age a unit's LRU stamp deterministically (no sleeping)."""
    stamp = time.time() - by_s
    os.utime(path, (stamp, stamp))


class TestReadThroughWriteBack:
    def test_put_lands_in_both_tiers(self, tmp_path, sim_result):
        tiers = stack(tmp_path)
        registry = MetricsRegistry()
        with use_registry(registry):
            tiers.put(key_n(1), sim_result)
        assert key_n(1) in tiers.local
        assert key_n(1) in tiers.shared
        counters = registry.counters()
        assert counters["exec.cache.local.stores"] == 1
        assert counters["exec.cache.shared.stores"] == 1
        assert counters["exec.cache.shared.writebacks"] == 1

    def test_shared_hit_promotes_to_local(self, tmp_path, sim_result):
        writer = stack(tmp_path)
        writer.shared.put(key_n(1), sim_result)  # shared tier only
        reader = stack(tmp_path)
        assert key_n(1) not in reader.local
        registry = MetricsRegistry()
        with use_registry(registry):
            hit = reader.get(key_n(1))
        assert hit is not None and hit.digest() == sim_result.digest()
        assert key_n(1) in reader.local  # promoted
        counters = registry.counters()
        assert counters["exec.cache.local.misses"] == 1
        assert counters["exec.cache.shared.hits"] == 1
        assert counters["exec.cache.local.promotions"] == 1
        # next read is local, no shared traffic
        registry2 = MetricsRegistry()
        with use_registry(registry2):
            assert reader.get(key_n(1)) is not None
        counters2 = registry2.counters()
        assert counters2["exec.cache.local.hits"] == 1
        assert "exec.cache.shared.hits" not in counters2

    def test_local_only_stack_works(self, tmp_path, sim_result):
        tiers = TieredResultCache(local=CacheTier(tmp_path, name="local"))
        tiers.put(key_n(1), sim_result)
        assert tiers.get(key_n(1)) is not None
        assert tiers.get(key_n(2)) is None
        assert tiers.root == tmp_path

    def test_miss_everywhere_is_none(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            assert stack(tmp_path).get(key_n(9)) is None
        counters = registry.counters()
        assert counters["exec.cache.local.misses"] == 1
        assert counters["exec.cache.shared.misses"] == 1


class TestGC:
    def entry_bytes(self, tier, sim_result) -> int:
        probe = tier.cache.put(key_n(0), sim_result).stat().st_size
        tier.cache.path_for(key_n(0)).unlink()
        return probe

    def test_lru_unit_evicted_first(self, tmp_path, sim_result):
        tier = CacheTier(tmp_path, name="local")
        size = self.entry_bytes(tier, sim_result)
        tier.budget_bytes = 2 * size + size // 2
        registry = MetricsRegistry()
        with use_registry(registry):
            for n in (1, 2):
                tier.put(key_n(n), sim_result)
            backdate(tier.cache.path_for(key_n(1)), by_s=600)
            backdate(tier.cache.path_for(key_n(2)), by_s=300)
            tier.put(key_n(3), sim_result)  # drives the tier over budget
        assert key_n(1) not in tier  # oldest stamp lost
        assert key_n(2) in tier and key_n(3) in tier
        assert registry.counters()["exec.cache.local.evictions"] == 1
        assert tier.total_bytes() <= tier.budget_bytes

    def test_recent_read_refreshes_the_lru_clock(self, tmp_path, sim_result):
        tier = CacheTier(tmp_path, name="local")
        size = self.entry_bytes(tier, sim_result)
        tier.budget_bytes = 2 * size + size // 2
        for n in (1, 2):
            tier.put(key_n(n), sim_result)
        for n in (1, 2):
            backdate(tier.cache.path_for(key_n(n)), by_s=600 // n)
        assert tier.get(key_n(1)) is not None  # utime makes 1 the MRU
        tier.put(key_n(3), sim_result)
        assert key_n(1) in tier  # survived despite the oldest mtime
        assert key_n(2) not in tier

    def test_mru_never_evicted_even_under_tiny_budget(
        self, tmp_path, sim_result
    ):
        tier = CacheTier(tmp_path, name="local", budget_bytes=1)
        tier.put(key_n(1), sim_result)
        # the write that blew the budget is itself the MRU: it survives
        assert key_n(1) in tier

    def test_no_budget_means_no_gc(self, tmp_path, sim_result):
        tier = CacheTier(tmp_path, name="local")
        for n in range(5):
            tier.put(key_n(n), sim_result)
        assert tier.gc() == 0
        assert all(key_n(n) in tier for n in range(5))

    def test_evicted_point_recomputes_to_same_digest(
        self, tmp_path, sim_result
    ):
        """End to end: eviction costs a re-run, never a different result."""
        workload = AppWorkloadSpec(app="venus", scale=0.05, n_copies=2)
        points = [
            SweepPointSpec(
                workload=workload,
                config=SimConfig(cache=CacheConfig(size_bytes=mb * MB)),
                label=f"venus {mb}MB",
            )
            for mb in (8, 32)
        ]
        baseline = [
            (r.key, r.result.digest())
            for r in SweepRunner(jobs=1, cache=None).run(points)
        ]
        size = self.entry_bytes(CacheTier(tmp_path / "probe"), sim_result)
        # budget fits roughly one entry: storing point B evicts point A
        tiers = TieredResultCache(
            local=CacheTier(
                tmp_path / "local", name="local",
                budget_bytes=size + size // 2,
            )
        )
        SweepRunner(jobs=1, cache=tiers).run(points)
        rerun_tiers = TieredResultCache(
            local=CacheTier(
                tmp_path / "local", name="local",
                budget_bytes=size + size // 2,
            )
        )
        runner = SweepRunner(jobs=1, cache=rerun_tiers)
        rerun = runner.run(points)
        assert [(r.key, r.result.digest()) for r in rerun] == baseline
        assert 1 <= runner.simulated <= len(points)  # evictee recomputed


class TestCompaction:
    def test_small_entries_packed_and_still_served(
        self, tmp_path, sim_result
    ):
        tier = CacheTier(tmp_path, name="local")
        keys = [key_n(n) for n in range(4)]
        for key in keys:
            tier.put(key, sim_result)
        registry = MetricsRegistry()
        with use_registry(registry):
            packed = tier.compact(max_entry_bytes=1 << 30)
        assert packed == len(keys)
        assert not list(tmp_path.glob("*/*.pkl"))  # loose files gone
        packs = list((tmp_path / "pack").glob("*.pack"))
        assert len(packs) == 1
        counters = registry.counters()
        assert counters["exec.cache.local.compactions"] == 1
        assert counters["exec.cache.local.packed_entries"] == len(keys)
        for key in keys:
            hit = tier.get(key)
            assert hit is not None and hit.digest() == sim_result.digest()

    def test_fresh_instance_reads_the_pack(self, tmp_path, sim_result):
        tier = CacheTier(tmp_path, name="local")
        tier.put(key_n(1), sim_result)
        tier.put(key_n(2), sim_result)
        assert tier.compact(max_entry_bytes=1 << 30) == 2
        fresh = CacheTier(tmp_path, name="local")
        assert key_n(1) in fresh
        assert fresh.get(key_n(2)).digest() == sim_result.digest()

    def test_restored_loose_entry_shadows_the_pack(
        self, tmp_path, sim_result
    ):
        tier = CacheTier(tmp_path, name="local")
        tier.put(key_n(1), sim_result)
        tier.put(key_n(2), sim_result)
        tier.compact(max_entry_bytes=1 << 30)
        tier.put(key_n(1), sim_result)  # re-stored after compaction
        assert tier.get(key_n(1)).digest() == sim_result.digest()

    def test_pack_is_one_eviction_unit(self, tmp_path, sim_result):
        tier = CacheTier(tmp_path, name="local")
        for n in range(3):
            tier.put(key_n(n), sim_result)
        tier.compact(max_entry_bytes=1 << 30)
        pack = next((tmp_path / "pack").glob("*.pack"))
        backdate(pack, by_s=600)
        tier.put(key_n(7), sim_result)
        tier.budget_bytes = tier.cache.path_for(key_n(7)).stat().st_size * 2
        registry = MetricsRegistry()
        with use_registry(registry):
            tier.gc()
        # evicting the pack drops all three packed entries, counted as such
        assert registry.counters()["exec.cache.local.evictions"] == 3
        assert not list((tmp_path / "pack").glob("*.pack"))
        for n in range(3):
            assert tier.get(key_n(n)) is None
        assert key_n(7) in tier

    def test_too_few_small_entries_is_a_noop(self, tmp_path, sim_result):
        tier = CacheTier(tmp_path, name="local")
        tier.put(key_n(1), sim_result)
        assert tier.compact(max_entry_bytes=1 << 30) == 0
        assert key_n(1) in tier

    def test_corrupt_pack_entry_is_a_miss_warned_once(
        self, tmp_path, sim_result
    ):
        import warnings as warnings_module

        tier = CacheTier(tmp_path, name="local")
        tier.put(key_n(1), sim_result)
        tier.put(key_n(2), sim_result)
        tier.compact(max_entry_bytes=1 << 30)
        pack = next((tmp_path / "pack").glob("*.pack"))
        index = json.loads(pack.with_suffix(".json").read_text())
        offset, length = index["entries"][key_n(1)]
        blob = bytearray(pack.read_bytes())
        blob[offset : offset + length] = b"\x00" * length
        pack.write_bytes(bytes(blob))
        registry = MetricsRegistry()
        with use_registry(registry):
            with pytest.warns(RuntimeWarning, match="unreadable"):
                assert tier.get(key_n(1)) is None
            with warnings_module.catch_warnings():
                warnings_module.simplefilter("error", RuntimeWarning)
                assert tier.get(key_n(1)) is None  # second lookup: silent
        assert registry.counters()["exec.cache.corrupt_entries"] == 2
        assert tier.get(key_n(2)).digest() == sim_result.digest()


class TestSpecParsing:
    def test_parse_size(self):
        assert parse_size("4096") == 4096
        assert parse_size("64k") == 64 * 1024
        assert parse_size("64M") == 64 * 1024**2
        assert parse_size("2G") == 2 * 1024**3
        assert parse_size("1.5m") == int(1.5 * 1024**2)
        for bad in ("", "lots", "-1", "0"):
            with pytest.raises(ValueError):
                parse_size(bad)

    def test_parse_tier_entry(self, tmp_path):
        assert parse_tier_entry(str(tmp_path)) == (str(tmp_path), None)
        path, budget = parse_tier_entry(f"{tmp_path}=64M")
        assert path == str(tmp_path) and budget == 64 * 1024**2
        with pytest.raises(ValueError):
            parse_tier_entry("=64M")

    def test_spec_builds_local_then_shared(self, tmp_path):
        tiers = tiered_cache_from_spec(
            f"{tmp_path}/a=1M,{tmp_path}/b"
        )
        assert tiers.local.root == tmp_path / "a"
        assert tiers.local.budget_bytes == 1024**2
        assert tiers.shared.root == tmp_path / "b"
        assert tiers.shared.budget_bytes is None

    def test_single_entry_has_no_shared_tier(self, tmp_path):
        tiers = tiered_cache_from_spec([str(tmp_path)])
        assert tiers.shared is None

    def test_three_tiers_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="at most two"):
            tiered_cache_from_spec(f"{tmp_path}/a,{tmp_path}/b,{tmp_path}/c")

    def test_resolution_cli_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_TIERS", f"{tmp_path}/env")
        cli = resolve_cache_tiers([f"{tmp_path}/cli"])
        assert cli.local.root == tmp_path / "cli"
        env = resolve_cache_tiers(None)
        assert env.local.root == tmp_path / "env"
        monkeypatch.delenv("REPRO_CACHE_TIERS")
        assert resolve_cache_tiers(None) is None


class TestRunnerIntegration:
    def test_sweep_runner_accepts_the_stack(self, tmp_path):
        workload = AppWorkloadSpec(app="venus", scale=0.05, n_copies=2)
        point = SweepPointSpec(
            workload=workload,
            config=SimConfig(cache=CacheConfig(size_bytes=8 * MB)),
            label="venus 8MB",
        )
        cold = SweepRunner(jobs=1, cache=stack(tmp_path)).run_point(point)
        warm_runner = SweepRunner(jobs=1, cache=stack(tmp_path))
        warm = warm_runner.run_point(point)
        assert not cold.cached and warm.cached
        assert warm.result.digest() == cold.result.digest()
        assert warm_runner.simulated == 0

    def test_flat_result_cache_still_accepted(self, tmp_path):
        # TieredResultCache is duck-compatible with ResultCache; the
        # runner accepts either.
        workload = AppWorkloadSpec(app="venus", scale=0.05)
        point = SweepPointSpec(
            workload=workload, config=SimConfig(), label="flat"
        )
        flat = ResultCache(tmp_path)
        SweepRunner(jobs=1, cache=flat).run_point(point)
        assert SweepRunner(jobs=1, cache=flat).run_point(point).cached
