"""SweepRunner: serial/parallel bit-identity, seeding, failure handling.

The scales here are tiny (a venus point is under a second) so the whole
module stays interactive even though it spins up real process pools.
"""

import pytest

from repro.exec.cache import ResultCache
from repro.exec.runner import (
    AppWorkloadSpec,
    SweepPointSpec,
    SweepRunner,
    TraceFileSpec,
    resolve_jobs,
)
from repro.sim.config import CacheConfig, SimConfig
from repro.util.errors import SweepError
from repro.util.units import MB

SCALE = 0.05


def two_venus_points():
    workload = AppWorkloadSpec(app="venus", scale=SCALE, n_copies=2)
    return [
        SweepPointSpec(
            workload=workload,
            config=SimConfig(cache=CacheConfig(size_bytes=mb * MB)),
            label=f"venus {mb}MB",
        )
        for mb in (8, 32)
    ]


class TestJobsResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_cpu_count_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) >= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(0)

    def test_effective_jobs_capped_by_points(self):
        assert SweepRunner(jobs=8).effective_jobs(2) == 2
        assert SweepRunner(jobs=2).effective_jobs(10) == 2


class TestDeterminism:
    def test_serial_and_parallel_bit_identical(self):
        points = two_venus_points()
        serial = SweepRunner(jobs=1).run(points)
        pooled = SweepRunner(jobs=2).run(points)
        for s, p in zip(serial, pooled):
            assert s.key == p.key
            assert s.sim_seed == p.sim_seed
            assert s.result.digest() == p.result.digest()

    def test_order_independent(self):
        points = two_venus_points()
        forward = SweepRunner(jobs=1).run(points)
        backward = SweepRunner(jobs=1).run(list(reversed(points)))
        by_key = {r.key: r.result.digest() for r in backward}
        for r in forward:
            assert by_key[r.key] == r.result.digest()

    def test_all_points_share_stream(self):
        # Sweeps are paired comparisons: every point sees the same
        # disk-latency draws (common random numbers), so differences
        # across the grid come from the configs, not the stream.
        points = two_venus_points()
        runner = SweepRunner()
        seeds = {runner.sim_seed(p) for p in points}
        assert seeds == {points[0].config.seed}

    def test_matches_direct_simulate(self):
        # The default runner must reproduce a plain simulate() call
        # bit-exactly -- sweeps change how points execute, never what
        # they compute.
        from repro.sim.system import simulate

        point = two_venus_points()[0]
        via_runner = SweepRunner(jobs=1).run_point(point).result
        direct = simulate(point.workload.materialize(), point.config)
        assert via_runner.digest() == direct.digest()

    def test_sweep_seed_changes_results(self):
        point = two_venus_points()[0]
        a = SweepRunner(jobs=1, seed=1).run_point(point)
        b = SweepRunner(jobs=1, seed=2).run_point(point)
        assert a.key != b.key
        assert a.sim_seed != b.sim_seed

    def test_label_not_in_key(self):
        a, _ = two_venus_points()
        relabeled = SweepPointSpec(
            workload=a.workload, config=a.config, label="something else"
        )
        assert a.key(0) == relabeled.key(0)


class TestFailurePropagation:
    def test_serial_failure_raises_sweep_error(self):
        point = SweepPointSpec(
            workload=AppWorkloadSpec(app="doom", scale=SCALE),
            config=SimConfig(),
            label="doom point",
        )
        with pytest.raises(SweepError, match="doom point"):
            SweepRunner(jobs=1).run([point])

    def test_pool_failure_raises_not_hangs(self):
        points = two_venus_points() + [
            SweepPointSpec(
                workload=AppWorkloadSpec(app="doom", scale=SCALE),
                config=SimConfig(),
                label="doom point",
            )
        ]
        with pytest.raises(SweepError, match="doom point"):
            SweepRunner(jobs=2).run(points)

    def test_cause_is_chained(self):
        point = SweepPointSpec(
            workload=AppWorkloadSpec(app="doom", scale=SCALE), config=SimConfig()
        )
        with pytest.raises(SweepError) as excinfo:
            SweepRunner(jobs=1).run_point(point)
        assert excinfo.value.__cause__ is not None


class TestCachedRuns:
    def test_run_point_round_trip(self, tmp_path):
        point = two_venus_points()[0]
        runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        first = runner.run_point(point)
        assert not first.cached
        assert runner.simulated == 1 and runner.cache_hits == 0
        second = runner.run_point(point)
        assert second.cached
        assert runner.simulated == 1 and runner.cache_hits == 1
        assert first.result.digest() == second.result.digest()

    def test_cache_shared_across_runners(self, tmp_path):
        points = two_venus_points()
        cache = ResultCache(tmp_path)
        baseline = SweepRunner(jobs=1, cache=cache).run(points)
        rerun = SweepRunner(jobs=2, cache=ResultCache(tmp_path)).run(points)
        assert all(r.cached for r in rerun)
        for a, b in zip(baseline, rerun):
            assert a.result.digest() == b.result.digest()

    def test_partial_hits_only_simulate_misses(self, tmp_path):
        points = two_venus_points()
        cache = ResultCache(tmp_path)
        SweepRunner(jobs=1, cache=cache).run(points[:1])
        runner = SweepRunner(jobs=1, cache=cache)
        results = runner.run(points)
        assert [r.cached for r in results] == [True, False]
        assert runner.simulated == 1 and runner.cache_hits == 1


class TestWorkloadMemo:
    """The per-process memo is a bounded LRU, not an unbounded dict."""

    @pytest.fixture(autouse=True)
    def _fresh_memo(self, monkeypatch):
        from repro.exec import runner

        # Isolate from the trace-store cache so every miss really
        # generates, and start from an empty memo.
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        monkeypatch.setenv("REPRO_WORKLOAD_MEMO", "2")
        runner.clear_workload_memo()
        yield
        runner.clear_workload_memo()

    def test_capacity_bound_evicts_oldest(self):
        from repro.exec import runner

        for seed in (1, 2, 3):
            runner.generated_workload("venus", SCALE, seed)
        assert len(runner._WORKLOADS) == 2
        assert ("venus", SCALE, 1) not in runner._WORKLOADS
        assert ("venus", SCALE, 3) in runner._WORKLOADS

    def test_lru_touch_protects_entry(self):
        from repro.exec import runner

        runner.generated_workload("venus", SCALE, 1)
        runner.generated_workload("venus", SCALE, 2)
        runner.generated_workload("venus", SCALE, 1)  # touch 1
        runner.generated_workload("venus", SCALE, 3)  # evicts 2
        assert ("venus", SCALE, 1) in runner._WORKLOADS
        assert ("venus", SCALE, 2) not in runner._WORKLOADS

    def test_hit_returns_same_object(self):
        from repro.exec import runner

        first = runner.generated_workload("venus", SCALE, 1)
        assert runner.generated_workload("venus", SCALE, 1) is first


class TestStoreKeyInvariance:
    """Compiled bundles and the store cache never change point keys."""

    def _single_process_trace_file(self, tmp_path):
        import numpy as np

        from repro.exec.runner import generated_workload
        from repro.trace.io import write_trace_array

        trace = generated_workload("venus", SCALE, 42).trace
        pid = int(np.asarray(trace.process_ids())[0])
        path = tmp_path / "p1.trace"
        write_trace_array(path, trace.for_process(pid))
        return path

    def test_compiled_trace_keys_like_its_ascii_source(self, tmp_path):
        from repro.trace.store import compile_trace

        ascii_path = self._single_process_trace_file(tmp_path)
        bundle = compile_trace(ascii_path)
        ascii_spec = TraceFileSpec(paths=(str(ascii_path),))
        store_spec = TraceFileSpec(paths=(str(bundle),))
        assert ascii_spec.key_material() == store_spec.key_material()

    def test_use_store_not_in_key_but_same_columns(self, tmp_path, monkeypatch):
        import numpy as np

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "tc"))
        ascii_path = self._single_process_trace_file(tmp_path)
        plain = TraceFileSpec(paths=(str(ascii_path),))
        routed = TraceFileSpec(paths=(str(ascii_path),), use_store=True)
        assert plain.key_material() == routed.key_material()
        for a, b in zip(plain.materialize(), routed.materialize()):
            for name, col in a.columns().items():
                assert np.array_equal(col, getattr(b, name)), name

    def test_generated_workload_store_round_trip(self, tmp_path, monkeypatch):
        import numpy as np

        from repro.exec import runner

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "tc"))
        runner.clear_workload_memo()
        generated = runner.generated_workload("venus", SCALE, 7)
        runner.clear_workload_memo()
        rehydrated = runner.generated_workload("venus", SCALE, 7)
        runner.clear_workload_memo()
        assert rehydrated is not generated
        assert rehydrated.name == generated.name
        assert rehydrated.data_size_bytes == generated.data_size_bytes
        assert rehydrated.cpu_seconds == generated.cpu_seconds
        assert [c.text for c in rehydrated.comments] == [
            c.text for c in generated.comments
        ]
        for name, col in generated.trace.columns().items():
            assert np.array_equal(col, getattr(rehydrated.trace, name)), name


class TestKeyInvariance:
    """Execution knobs must never leak into result-cache keys.

    ``engine_impl`` and ``cache_impl`` select bit-identical
    implementations, ``use_store`` only changes how trace bytes are
    loaded, and shared-memory fan-out is pure transport -- results for
    one (config, workload, seed) point are interchangeable across all of
    them, so none may appear in ``key_material``.
    """

    FORBIDDEN = ("engine_impl", "use_store", "shm", "cache_impl")

    @staticmethod
    def _flat_keys(material):
        keys = set()
        stack = [material]
        while stack:
            node = stack.pop()
            if isinstance(node, dict):
                keys.update(node)
                stack.extend(node.values())
            elif isinstance(node, (list, tuple)):
                stack.extend(node)
        return keys

    @pytest.mark.parametrize("knob", FORBIDDEN)
    def test_knob_absent_from_point_key_material(self, knob):
        from repro.exec.keys import point_key_material

        workload = AppWorkloadSpec(app="venus", scale=SCALE, n_copies=2)
        material = point_key_material(
            SimConfig(cache=CacheConfig(size_bytes=8 * MB)),
            workload.key_material(),
            sweep_seed=7,
        )
        assert knob not in self._flat_keys(material)

    @pytest.mark.parametrize("knob", FORBIDDEN)
    def test_knob_absent_from_workload_key_material(self, knob, tmp_path):
        app = AppWorkloadSpec(app="venus", scale=SCALE, n_copies=2)
        assert knob not in self._flat_keys(app.key_material())
        path = tmp_path / "t.trace"
        path.write_text("")
        files = TraceFileSpec(paths=(str(path),), use_store=True)
        assert knob not in self._flat_keys(files.key_material())

    def test_engine_impl_env_does_not_change_point_keys(self, monkeypatch):
        point = two_venus_points()[0]
        monkeypatch.setenv("REPRO_ENGINE_IMPL", "event")
        key_event = point.key(sweep_seed=7)
        monkeypatch.setenv("REPRO_ENGINE_IMPL", "batch")
        key_batch = point.key(sweep_seed=7)
        monkeypatch.delenv("REPRO_ENGINE_IMPL")
        assert key_event == key_batch == point.key(sweep_seed=7)


class TestProgressHook:
    def test_event_sequence_and_order(self):
        events = []
        runner = SweepRunner(jobs=1, progress=events.append)
        runner.run(two_venus_points())
        assert events[0] == {
            "event": "sweep_start", "points": 2, "todo": 2, "cached": 0,
        }
        done = [e for e in events[1:] if e["event"] == "point_done"]
        assert [e["index"] for e in done] == [0, 1]
        assert all(not e["cached"] for e in done)
        assert all(e["key"] for e in done)

    def test_cache_hits_reported_as_cached(self, tmp_path):
        points = two_venus_points()
        cache = ResultCache(root=tmp_path)
        SweepRunner(jobs=1, cache=cache).run(points)
        events = []
        SweepRunner(jobs=1, cache=cache, progress=events.append).run(points)
        assert events[0]["cached"] == 2 and events[0]["todo"] == 0
        assert all(
            e["cached"] for e in events[1:] if e["event"] == "point_done"
        )

    def test_hook_exceptions_propagate(self):
        def hook(event):
            raise ValueError("broken hook")

        with pytest.raises(ValueError, match="broken hook"):
            SweepRunner(jobs=1, progress=hook).run(two_venus_points())


class TestCancellation:
    def test_serial_cancel_between_points(self):
        from repro.util.errors import SweepCancelled

        done = []

        def progress(event):
            if event["event"] == "point_done":
                done.append(event)

        runner = SweepRunner(
            jobs=1, progress=progress, should_cancel=lambda: len(done) >= 1
        )
        with pytest.raises(SweepCancelled):
            runner.run(two_venus_points())
        assert len(done) == 1

    def test_pool_cancel_abandons_pending(self):
        from repro.util.errors import SweepCancelled

        calls = []

        def cancel_after_first_poll():
            calls.append(None)
            return len(calls) > 1  # pre-pool check passes, loop check fires

        runner = SweepRunner(jobs=2, should_cancel=cancel_after_first_poll)
        with pytest.raises(SweepCancelled, match="unfinished"):
            runner.run(two_venus_points())

    def test_pool_cancel_leaves_no_shm_segments(self):
        from tests.exec.test_shm import shm_leftovers
        from repro.util.errors import SweepCancelled

        calls = []

        def cancel_late():
            calls.append(None)
            return len(calls) > 1

        before = shm_leftovers()
        runner = SweepRunner(
            jobs=2, shared_memory=True, should_cancel=cancel_late
        )
        with pytest.raises(SweepCancelled):
            runner.run(two_venus_points())
        assert shm_leftovers() <= before

    def test_no_hooks_no_behavior_change(self):
        plain = SweepRunner(jobs=1).run(two_venus_points())
        hooked = SweepRunner(
            jobs=1, progress=lambda e: None, should_cancel=lambda: False
        ).run(two_venus_points())
        assert [p.result.digest() for p in plain] == [
            p.result.digest() for p in hooked
        ]
