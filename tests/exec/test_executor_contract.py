"""The executor x cache-tier conformance matrix, as pytest cases.

One test per cell of the matrix in ``tests/harness/executor_contract``:
every backend (serial / pool / queue) crossed with every cache
arrangement (none / single directory / tiered), each cell also warming
a re-run on a *different* backend to prove cache interop.  Plus the
selection-precedence contract for ``--executor`` / ``$REPRO_EXECUTOR``.
"""

import pytest

from repro.exec.executor import (
    EXECUTOR_NAMES,
    PoolExecutor,
    QueueExecutor,
    SerialExecutor,
    make_executor,
    resolve_executor_name,
)
from repro.exec.runner import SweepRunner
from tests.harness.executor_contract import (
    CACHE_MODES,
    contract_points,
    reference_outcomes,
    run_combo,
)


@pytest.fixture(autouse=True)
def isolated_env(monkeypatch, tmp_path):
    """Keep the matrix independent of the developer's environment."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default-cache"))
    monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
    monkeypatch.delenv("REPRO_CACHE_TIERS", raising=False)


class TestConformanceMatrix:
    @pytest.mark.parametrize("cache_mode", CACHE_MODES)
    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_cell(self, executor, cache_mode, tmp_path):
        report = run_combo(executor, cache_mode, tmp_path)
        assert not report["problems"], "\n".join(report["problems"])


class TestSelection:
    def test_explicit_name_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "queue")
        assert resolve_executor_name("serial") == "serial"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "queue")
        assert resolve_executor_name(None) == "queue"

    def test_unset_means_auto(self):
        assert resolve_executor_name(None) is None
        assert SweepRunner(jobs=1)._executor_name(1) == "serial"
        assert SweepRunner(jobs=4)._executor_name(4) == "pool"

    def test_unknown_name_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor_name("carrier-pigeon")
        monkeypatch.setenv("REPRO_EXECUTOR", "bogus")
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor_name(None)

    def test_make_executor_types(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("pool", jobs=3), PoolExecutor)
        assert isinstance(make_executor("queue", jobs=3), QueueExecutor)

    def test_env_selected_backend_stays_bit_identical(self, monkeypatch):
        points = contract_points()
        monkeypatch.setenv("REPRO_EXECUTOR", "queue")
        via_env = SweepRunner(jobs=2, cache=None).run(points)
        assert [
            (r.key, r.result.digest()) for r in via_env
        ] == reference_outcomes()


class TestKeyInvariance:
    def test_executor_never_enters_the_key(self):
        """The backend is an execution detail, like shm or engine_impl."""
        point = contract_points()[0]
        baseline = point.key(None)
        for name in EXECUTOR_NAMES:
            runner = SweepRunner(jobs=2, executor=name)
            assert point.key(runner.seed) == baseline
