"""Shared-memory workload fan-out: equivalence, cleanup, fallbacks.

The transport invariant under test: publishing workloads over shared
memory changes *how* bytes reach the workers, never *what* the sweep
computes -- and every exit path (success, failing point, disabled
platform) leaves no segment behind.
"""

import numpy as np
import pytest

from repro.exec.runner import (
    AppWorkloadSpec,
    SweepPointSpec,
    SweepRunner,
    _simulate_point_shared,
    generated_workload,
)
from repro.exec.shm import (
    SegmentPublisher,
    SharedWorkload,
    attach_workload,
    shm_available,
)
from repro.obs.registry import MetricsRegistry, use_registry
from repro.sim.config import CacheConfig, SimConfig
from repro.util.errors import SweepError
from repro.util.units import MB

SCALE = 0.05


def venus_points():
    workload = AppWorkloadSpec(app="venus", scale=SCALE, n_copies=2)
    return [
        SweepPointSpec(
            workload=workload,
            config=SimConfig(cache=CacheConfig(size_bytes=mb * MB)),
            label=f"venus {mb}MB",
        )
        for mb in (8, 32)
    ]


def shm_leftovers():
    import pathlib

    dev = pathlib.Path("/dev/shm")
    if not dev.is_dir():
        return set()
    return {p.name for p in dev.glob("psm_*")}


class TestPublisherAttach:
    def test_attach_views_match_source(self):
        traces = AppWorkloadSpec(app="venus", scale=SCALE, n_copies=2).materialize()
        publisher = SegmentPublisher()
        try:
            ref = publisher.publish(traces)
            assert ref is not None
            attached = attach_workload(ref)
            assert len(attached) == len(traces)
            for src, view in zip(traces, attached):
                for name, col in src.columns().items():
                    got = getattr(view, name)
                    assert got.dtype == col.dtype, name
                    assert np.array_equal(got, col), name
                    assert not got.flags.writeable
        finally:
            publisher.close()

    def test_close_is_idempotent_and_counted(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            publisher = SegmentPublisher()
            traces = [generated_workload("venus", SCALE, seed=2).trace]
            publisher.publish(traces)
            assert publisher.open_segments == 1
            publisher.close()
            publisher.close()
        counters = registry.counters()
        assert counters["exec.shm.segments_opened"] == 1
        assert counters["exec.shm.segments_closed"] == 1
        assert counters["exec.shm.bytes_published"] > 0

    def test_attach_unknown_segment_raises(self):
        ref = SharedWorkload(segment="psm_does_not_exist", traces=(), nbytes=1)
        with pytest.raises((OSError, ValueError)):
            attach_workload(ref)

    def test_simulate_point_falls_back_on_bad_ref(self):
        # A worker handed a dead segment must reproduce the per-worker
        # result, not fail.
        point = venus_points()[0]
        bogus = SharedWorkload(segment="psm_gone_segment", traces=(), nbytes=1)
        via_fallback = _simulate_point_shared(point, point.config.seed, bogus)
        direct = _simulate_point_shared(point, point.config.seed, None)
        assert via_fallback.digest() == direct.digest()

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "off")
        assert not shm_available()
        assert not SweepRunner(jobs=2)._shm_enabled()
        monkeypatch.setenv("REPRO_SHM", "1")
        assert shm_available()

    def test_forced_off_overrides_platform(self):
        assert not SweepRunner(jobs=2, shared_memory=False)._shm_enabled()


class TestSweepEquivalence:
    def test_shm_matches_per_worker_and_serial(self):
        points = venus_points()
        serial = SweepRunner(jobs=1).run(points)
        shm = SweepRunner(jobs=2, shared_memory=True).run(points)
        plain = SweepRunner(jobs=2, shared_memory=False).run(points)
        for s, a, b in zip(serial, shm, plain):
            assert s.key == a.key == b.key
            assert s.result.digest() == a.result.digest() == b.result.digest()

    def test_publishes_each_distinct_workload_once(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            SweepRunner(jobs=2, shared_memory=True).run(venus_points())
        counters = registry.counters()
        # two points, one distinct workload
        assert counters["exec.shm.workloads_published"] == 1
        assert counters["exec.shm.segments_opened"] == 1
        assert counters["exec.shm.segments_closed"] == 1

    def test_no_segments_leak_on_success(self):
        before = shm_leftovers()
        SweepRunner(jobs=2, shared_memory=True).run(venus_points())
        assert shm_leftovers() <= before

    def test_no_segments_leak_on_failure(self):
        points = venus_points() + [
            SweepPointSpec(
                workload=AppWorkloadSpec(app="doom", scale=SCALE),
                config=SimConfig(),
                label="doom point",
            )
        ]
        before = shm_leftovers()
        registry = MetricsRegistry()
        with use_registry(registry):
            with pytest.raises(SweepError, match="doom point"):
                SweepRunner(jobs=2, shared_memory=True).run(points)
        assert shm_leftovers() <= before
        counters = registry.counters()
        assert counters.get("exec.shm.segments_opened", 0) == counters.get(
            "exec.shm.segments_closed", 0
        )

    def test_sweep_runs_with_shm_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        points = venus_points()
        off = SweepRunner(jobs=2).run(points)
        monkeypatch.delenv("REPRO_SHM")
        on = SweepRunner(jobs=2).run(points)
        for a, b in zip(off, on):
            assert a.result.digest() == b.result.digest()


class TestAttachFailureVisibility:
    """Regression: a failed attach used to be swallowed silently.

    The fallback still runs (results stay correct), but every failure
    now bumps ``exec.shm.attach_failures`` and the *first* failure per
    segment emits one RuntimeWarning -- a degraded sweep is visible.
    """

    @pytest.fixture(autouse=True)
    def fresh_warn_state(self, monkeypatch):
        from repro.exec import runner

        monkeypatch.setattr(runner, "_ATTACH_WARNED", set())

    def test_failure_counted_and_warned_once_per_segment(self):
        point = venus_points()[0]
        bogus = SharedWorkload(segment="psm_vanished", traces=(), nbytes=1)
        registry = MetricsRegistry()
        with use_registry(registry):
            with pytest.warns(RuntimeWarning, match="psm_vanished"):
                _simulate_point_shared(point, point.config.seed, bogus)
            # second point, same dead segment: counted again, no new warning
            import warnings as warnings_module

            with warnings_module.catch_warnings():
                warnings_module.simplefilter("error", RuntimeWarning)
                _simulate_point_shared(point, point.config.seed, bogus)
        assert registry.counters()["exec.shm.attach_failures"] == 2

    def test_distinct_segments_warn_separately(self):
        point = venus_points()[0]
        with pytest.warns(RuntimeWarning, match="psm_first"):
            _simulate_point_shared(
                point,
                point.config.seed,
                SharedWorkload(segment="psm_first", traces=(), nbytes=1),
            )
        with pytest.warns(RuntimeWarning, match="psm_second"):
            _simulate_point_shared(
                point,
                point.config.seed,
                SharedWorkload(segment="psm_second", traces=(), nbytes=1),
            )


class TestPublishSkipVisibility:
    """Regression: a workload whose pre-materialization failed used to be
    dropped from sharing with no trace at all."""

    @pytest.mark.skipif(not shm_available(), reason="no shared memory here")
    def test_skip_counted_and_warned_with_exception_type(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class ExplodingSpec:
            def materialize(self):
                raise RuntimeError("no columns today")

            def key_material(self):
                return {"kind": "exploding"}

        point = SweepPointSpec(
            workload=ExplodingSpec(), config=SimConfig(), label="boom"
        )
        runner = SweepRunner(jobs=2, shared_memory=True)
        registry = MetricsRegistry()
        with use_registry(registry):
            with pytest.warns(RuntimeWarning, match="RuntimeError"):
                publisher, refs = runner._publish_workloads([point], [0])
        if publisher is not None:
            publisher.close()
        assert refs[point.workload] is None
        assert registry.counters()["exec.shm.publish_skipped"] == 1
