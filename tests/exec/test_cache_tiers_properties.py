"""Property tests for tier eviction/GC under arbitrary op sequences.

Hypothesis drives a :class:`CacheTier` with random interleavings of
``put`` and ``get`` over a small key space, under a budget of about
three entries, and checks the GC contract after every operation:

* the tier never holds more than its budget once GC has run;
* the entry an operation just touched (stored or read) is never the
  one that operation's GC evicts;
* an evicted key reads as a clean miss, and re-storing it round-trips
  to the identical digest -- eviction costs a re-run, never a result.

Timestamps are re-stamped with a logical clock after every op (the
production code's own ``os.utime`` granularity is real time; the
property needs deterministic ordering), so the sequences are exactly
reproducible.
"""

import os
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.cache_tiers import CacheTier
from repro.exec.runner import AppWorkloadSpec, SweepPointSpec, SweepRunner
from repro.sim.config import CacheConfig, SimConfig
from repro.util.units import MB

N_KEYS = 6

_RESULT = None


def canned_result():
    """One tiny real SimulationResult, computed once per process."""
    global _RESULT
    if _RESULT is None:
        _RESULT = SweepRunner(jobs=1).run_point(
            SweepPointSpec(
                workload=AppWorkloadSpec(app="venus", scale=0.05),
                config=SimConfig(cache=CacheConfig(size_bytes=8 * MB)),
            )
        ).result
    return _RESULT


def key_n(n: int) -> str:
    return f"{n:02x}" * 32


def entry_bytes(tmp: Path) -> int:
    tier = CacheTier(tmp / "probe", name="local")
    path = tier.cache.put(key_n(0), canned_result())
    return path.stat().st_size


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["put", "get"]),
        st.integers(min_value=0, max_value=N_KEYS - 1),
    ),
    min_size=1,
    max_size=24,
)


class TestEvictionProperties:
    @settings(max_examples=30, deadline=None)
    @given(ops=ops_strategy)
    def test_gc_contract_under_any_op_sequence(self, ops):
        result = canned_result()
        with tempfile.TemporaryDirectory(prefix="tier-prop-") as tmp:
            tmp = Path(tmp)
            size = entry_bytes(tmp)
            budget = 3 * size + size // 2
            tier = CacheTier(tmp / "tier", name="local", budget_bytes=budget)
            # Logical clock far in the past: a fresh put's wall-clock
            # stamp always reads as the MRU during its own GC, then gets
            # re-stamped into sequence order below.
            base = time.time() - 1_000_000
            live: set[str] = set()
            ever_put: set[str] = set()
            for step, (op, n) in enumerate(ops):
                key = key_n(n)
                if op == "put":
                    assert tier.put(key, result) is not None
                    ever_put.add(key)
                    live.add(key)
                else:
                    hit = tier.get(key)
                    if key in live:
                        assert hit is not None, (
                            f"step {step}: live key {n} vanished without GC"
                        )
                        assert hit.digest() == result.digest()
                    else:
                        assert hit is None, (
                            f"step {step}: key {n} served but never stored"
                        )
                        continue
                # The touched entry survived its own op's GC...
                path = tier.cache.path_for(key)
                assert path.exists(), (
                    f"step {step}: {op} of key {n} evicted its own entry"
                )
                # ...now fold it into the logical LRU order and record
                # what this op's GC actually evicted.
                stamp = base + step
                os.utime(path, (stamp, stamp))
                live = {k for k in live if k in tier}
                # Budget holds after every op (gets never grow the tier,
                # puts GC before returning).
                assert tier.total_bytes() <= budget
            # Every evicted key is a clean miss and recomputes (here:
            # re-stores) to the identical digest.
            for key in sorted(ever_put - live):
                assert tier.get(key) is None
                tier.put(key, result)
                assert tier.get(key).digest() == result.digest()

    @settings(max_examples=15, deadline=None)
    @given(
        reads=st.lists(
            st.integers(min_value=0, max_value=N_KEYS - 1),
            min_size=0,
            max_size=10,
        )
    )
    def test_eviction_counter_matches_disappearances(self, reads):
        """However reads shuffle the LRU order, the eviction counter
        equals the number of entries that actually disappeared."""
        from repro.obs.registry import MetricsRegistry, use_registry

        result = canned_result()
        with tempfile.TemporaryDirectory(prefix="tier-prop-") as tmp:
            tmp = Path(tmp)
            size = entry_bytes(tmp)
            tier = CacheTier(tmp / "tier", name="local")
            base = time.time() - 1_000_000
            for n in range(N_KEYS):
                tier.put(key_n(n), result)
                path = tier.cache.path_for(key_n(n))
                os.utime(path, (base + n, base + n))
            for i, n in enumerate(reads):
                assert tier.get(key_n(n)) is not None
                path = tier.cache.path_for(key_n(n))
                stamp = base + N_KEYS + i
                os.utime(path, (stamp, stamp))
            tier.budget_bytes = 3 * size + size // 2
            registry = MetricsRegistry()
            with use_registry(registry):
                evicted = tier.gc()
            survivors = sum(1 for n in range(N_KEYS) if key_n(n) in tier)
            assert evicted == N_KEYS - survivors
            assert registry.counters().get(
                "exec.cache.local.evictions", 0
            ) == evicted
            assert tier.total_bytes() <= tier.budget_bytes
            # and the freshest stamp always survives
            freshest = reads[-1] if reads else N_KEYS - 1
            assert key_n(freshest) in tier


@pytest.mark.parametrize("jobs", [1, 2])
def test_evicted_point_recomputes_identically_through_the_runner(
    tmp_path, jobs
):
    """The property the tier mechanics exist to uphold, end to end."""
    workload = AppWorkloadSpec(app="venus", scale=0.05, n_copies=2)
    points = [
        SweepPointSpec(
            workload=workload,
            config=SimConfig(cache=CacheConfig(size_bytes=mb * MB)),
            label=f"venus {mb}MB",
        )
        for mb in (8, 32)
    ]
    baseline = [
        (r.key, r.result.digest())
        for r in SweepRunner(jobs=1, cache=None).run(points)
    ]
    size = entry_bytes(tmp_path)
    tight = size + size // 2  # one entry fits, two do not

    def make_tier():
        return CacheTier(tmp_path / "tier", name="local", budget_bytes=tight)

    SweepRunner(jobs=jobs, cache=make_tier()).run(points)
    runner = SweepRunner(jobs=jobs, cache=make_tier())
    rerun = runner.run(points)
    assert [(r.key, r.result.digest()) for r in rerun] == baseline
    assert runner.simulated >= 1  # at least one point was evicted and re-run
