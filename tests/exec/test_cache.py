"""Cache keys and the on-disk result store.

Covers the serialization invariants the cache depends on (stable field
order, exact float text, label exclusion), hit/miss/invalidation
behaviour, and the corruption-tolerance contract: a bad entry costs a
re-run, never a wrong result.
"""

import pickle
import warnings

import pytest

from repro.exec import keys as keys_mod
from repro.exec.cache import ResultCache
from repro.exec.keys import canonical_json, canonical_value, point_key
from repro.exec.runner import AppWorkloadSpec, SweepPointSpec, SweepRunner
from repro.sim.config import CacheConfig, DiskConfig, SchedulerConfig, SimConfig
from repro.util.units import KB, MB

WORKLOAD = AppWorkloadSpec(app="venus", scale=0.05, n_copies=2)


def small_point(cache_mb=8):
    return SweepPointSpec(
        workload=WORKLOAD,
        config=SimConfig(cache=CacheConfig(size_bytes=cache_mb * MB)),
        label=f"venus {cache_mb}MB",
    )


class TestCanonicalJson:
    def test_dict_insertion_order_irrelevant(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_floats_exact_not_repr(self):
        # 0.1 and the nearest float to its 17-digit repr are the same
        # object; a float a few ulps away must hash differently even
        # where repr would round identically at low precision.
        a = canonical_json(0.1)
        b = canonical_json(0.1 + 2e-17)
        assert "0x" in a  # float.hex form
        assert a != b

    def test_tuple_and_list_agree(self):
        assert canonical_json((1, 2)) == canonical_json([1, 2])

    def test_bool_not_confused_with_int(self):
        assert canonical_json(True) != canonical_json(1)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="canonicalize"):
            canonical_value(object())

    def test_config_field_order_stable(self):
        d = SimConfig().to_dict()
        assert list(d["cache"]) == [f.name for f in CacheConfig.__dataclass_fields__.values()]


class TestConfigRoundTrip:
    def test_to_from_dict_identity(self):
        config = SimConfig(
            cache=CacheConfig(size_bytes=32 * MB, block_bytes=8 * KB),
            disk=DiskConfig(n_disks=4),
            scheduler=SchedulerConfig(n_cpus=2),
            seed=7,
        )
        rebuilt = SimConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert canonical_json(rebuilt) == canonical_json(config)

    def test_with_seed_only_changes_seed(self):
        config = SimConfig()
        reseeded = config.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.cache == config.cache


class TestPointKeys:
    def test_key_stable_across_calls(self):
        p = small_point()
        assert p.key(0) == p.key(0)

    def test_config_change_changes_key(self):
        assert small_point(8).key(0) != small_point(32).key(0)

    def test_workload_change_changes_key(self):
        a = small_point()
        b = SweepPointSpec(
            workload=AppWorkloadSpec(app="venus", scale=0.05, n_copies=1),
            config=a.config,
        )
        assert a.key(0) != b.key(0)

    def test_sweep_seed_changes_key(self):
        p = small_point()
        assert p.key(0) != p.key(1)

    def test_code_version_changes_key(self, monkeypatch):
        p = small_point()
        before = p.key(0)
        monkeypatch.setattr(keys_mod, "code_version_tag", lambda: "f" * 64)
        assert p.key(0) != before

    def test_point_key_is_sha256_hex(self):
        key = point_key(SimConfig(), WORKLOAD.key_material(), 0)
        assert len(key) == 64
        int(key, 16)


@pytest.fixture(scope="module")
def sim_result():
    """One real (tiny) SimulationResult to store and reload."""
    return SweepRunner(jobs=1).run_point(
        SweepPointSpec(
            workload=AppWorkloadSpec(app="venus", scale=0.05),
            config=SimConfig(cache=CacheConfig(size_bytes=8 * MB)),
        )
    ).result


class TestResultCache:
    KEY = "ab" + "0" * 62

    def test_miss_on_empty(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(self.KEY) is None
        assert cache.counters.misses == 1
        assert self.KEY not in cache
        assert len(cache) == 0

    def test_put_get_round_trip(self, tmp_path, sim_result):
        cache = ResultCache(tmp_path)
        path = cache.put(self.KEY, sim_result)
        assert path == tmp_path / "ab" / f"{self.KEY}.pkl"
        assert self.KEY in cache and len(cache) == 1
        loaded = cache.get(self.KEY)
        assert loaded is not None
        assert loaded.digest() == sim_result.digest()
        assert cache.counters.stores == 1 and cache.counters.hits == 1

    def test_corrupted_entry_is_a_miss(self, tmp_path, sim_result):
        cache = ResultCache(tmp_path)
        path = cache.put(self.KEY, sim_result)
        path.write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert cache.get(self.KEY) is None
        assert cache.counters.misses == 1

    def test_renamed_entry_cannot_alias(self, tmp_path, sim_result):
        # An entry copied under a different key must not be served: the
        # embedded key is checked on load.
        cache = ResultCache(tmp_path)
        src = cache.put(self.KEY, sim_result)
        other = "cd" + "0" * 62
        dst = cache.path_for(other)
        dst.parent.mkdir(parents=True, exist_ok=True)
        dst.write_bytes(src.read_bytes())
        with pytest.warns(RuntimeWarning, match="key mismatch"):
            assert cache.get(other) is None

    def test_non_result_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for(self.KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as fh:
            pickle.dump({"key": self.KEY, "result": "wrong type"}, fh)
        with pytest.warns(RuntimeWarning):
            assert cache.get(self.KEY) is None


class TestErrorSurfacing:
    """Regression tests: decode/store failures used to be swallowed by a
    bare ``except Exception: pass`` -- invisible cache rot.  Now they are
    narrowed, counted, and warned about."""

    KEY = "ab" + "0" * 62

    def test_corrupt_entry_counted_and_warned(self, tmp_path, sim_result):
        cache = ResultCache(tmp_path)
        path = cache.put(self.KEY, sim_result)
        path.write_bytes(b"garbage")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert cache.get(self.KEY) is None
        assert cache.counters.corrupt == 1
        assert cache.counters.misses == 1

    def test_truncated_pickle_is_corrupt_not_crash(self, tmp_path, sim_result):
        cache = ResultCache(tmp_path)
        path = cache.put(self.KEY, sim_result)
        path.write_bytes(path.read_bytes()[:20])  # EOFError territory
        with pytest.warns(RuntimeWarning):
            assert cache.get(self.KEY) is None
        assert cache.counters.corrupt == 1

    def test_corrupt_entry_warns_once_per_key(self, tmp_path, sim_result):
        """Regression: a hot key with a truncated entry used to warn on
        every lookup; now it warns once per key (mirroring the shm
        per-segment attach warning) while still counting every hit."""
        other = "cd" + "0" * 62
        cache = ResultCache(tmp_path)
        for key in (self.KEY, other):
            cache.put(key, sim_result).write_bytes(b"\x80\x04trunc")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert cache.get(self.KEY) is None
        with warnings.catch_warnings():  # same key again: silent
            warnings.simplefilter("error", RuntimeWarning)
            assert cache.get(self.KEY) is None
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert cache.get(other) is None  # distinct key: its own warning
        assert cache.counters.corrupt == 3
        # warn-once state is per cache instance, like _ATTACH_WARNED is
        # per process: a fresh instance over the same root warns anew
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert ResultCache(tmp_path).get(self.KEY) is None

    def test_plain_absence_is_a_clean_miss(self, tmp_path):
        # A missing entry is the common case, not corruption: no warning,
        # no corrupt count.
        cache = ResultCache(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.get(self.KEY) is None
        assert cache.counters.corrupt == 0
        assert cache.counters.misses == 1

    def test_failed_store_warns_and_returns_none(self, tmp_path, sim_result):
        # The fan-out directory is blocked by a plain file: mkdir raises
        # FileExistsError (an OSError).  The sweep must keep its result;
        # only the memo is lost.
        cache = ResultCache(tmp_path)
        (tmp_path / self.KEY[:2]).write_text("in the way")
        with pytest.warns(RuntimeWarning, match="store failed"):
            assert cache.put(self.KEY, sim_result) is None
        assert cache.counters.store_errors == 1
        assert cache.counters.stores == 0

    def test_unpicklable_result_degrades_to_warning(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.warns(RuntimeWarning, match="store failed"):
            assert cache.put(self.KEY, lambda: None) is None
        assert cache.counters.store_errors == 1
        # no temp litter left behind
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_corruption_surfaces_in_obs_registry(self, tmp_path, sim_result):
        from repro.obs import MetricsRegistry, use_registry

        cache = ResultCache(tmp_path)
        path = cache.put(self.KEY, sim_result)
        path.write_bytes(b"garbage")
        reg = MetricsRegistry()
        with use_registry(reg), pytest.warns(RuntimeWarning):
            cache.get(self.KEY)
        assert reg.snapshot()["exec.cache.corrupt_entries"] == 1


class TestInvalidation:
    def test_config_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(jobs=1, cache=cache)
        runner.run_point(small_point(8))
        other = runner.run_point(small_point(32))
        assert not other.cached
        assert runner.simulated == 2

    def test_code_change_misses(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(jobs=1, cache=cache)
        first = runner.run_point(small_point())
        monkeypatch.setattr(keys_mod, "code_version_tag", lambda: "e" * 64)
        second = SweepRunner(jobs=1, cache=cache).run_point(small_point())
        assert not second.cached
        assert second.key != first.key
