"""Two-process shared-tier interop: one host computes, another reads.

The DVC-remote scenario the shared tier exists for, played out with
real processes: a *writer* process with local tier A populates the
shared directory; a *reader* process with its own empty local tier B
must then serve the identical sweep entirely from the shared tier --
zero recomputations, 100% shared-tier hits, digests unchanged -- with
every claim asserted via the obs counters, not just the summary flags.
CI runs the same scenario in its ``executors`` job.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src"

#: Runs the canonical two-point sweep under $REPRO_CACHE_TIERS and
#: reports digests plus the tier counters as JSON on stdout.
SWEEP_SCRIPT = """
import json

from repro.exec.cache_tiers import resolve_cache_tiers
from repro.exec.runner import AppWorkloadSpec, SweepPointSpec, SweepRunner
from repro.obs.registry import MetricsRegistry, use_registry
from repro.sim.config import CacheConfig, SimConfig
from repro.util.units import MB

workload = AppWorkloadSpec(app="venus", scale=0.05, n_copies=2)
points = [
    SweepPointSpec(
        workload=workload,
        config=SimConfig(cache=CacheConfig(size_bytes=mb * MB)),
        label=f"venus {mb}MB",
    )
    for mb in (8, 32)
]
registry = MetricsRegistry()
runner = SweepRunner(jobs=1, cache=resolve_cache_tiers(None))
with use_registry(registry):
    results = runner.run(points)
print(json.dumps({
    "digests": [r.result.digest() for r in results],
    "keys": [r.key for r in results],
    "cached": [r.cached for r in results],
    "simulated": runner.simulated,
    "counters": registry.counters(),
}))
"""

N_POINTS = 2


def run_sweep_process(tiers_spec: str, tmp_path: Path) -> dict:
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_TIERS"] = tiers_spec
    # isolate from the developer's caches and any executor override
    env["REPRO_CACHE_DIR"] = str(tmp_path / "unused-flat-cache")
    env["REPRO_TRACE_CACHE"] = str(tmp_path / "trace-store")
    env.pop("REPRO_EXECUTOR", None)
    proc = subprocess.run(
        [sys.executable, "-c", SWEEP_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout.splitlines()[-1])


def test_reader_process_served_entirely_from_shared_tier(tmp_path):
    shared = tmp_path / "shared"

    writer = run_sweep_process(
        f"{tmp_path / 'local-a'},{shared}", tmp_path
    )
    assert writer["simulated"] == N_POINTS
    assert writer["counters"]["exec.cache.shared.writebacks"] == N_POINTS
    assert list(shared.glob("*/*.pkl")), "writer left the shared tier empty"

    reader = run_sweep_process(
        f"{tmp_path / 'local-b'},{shared}", tmp_path
    )
    # the whole warm run came out of the shared tier: nothing simulated,
    # every point flagged cached, identical digests
    assert reader["simulated"] == 0
    assert reader["cached"] == [True] * N_POINTS
    assert reader["keys"] == writer["keys"]
    assert reader["digests"] == writer["digests"]
    counters = reader["counters"]
    assert counters["exec.cache.local.misses"] == N_POINTS
    assert counters["exec.cache.shared.hits"] == N_POINTS
    assert counters["exec.cache.local.promotions"] == N_POINTS
    assert counters.get("exec.runner.points_simulated", 0) == 0

    # promotion made local-b self-sufficient: a third run on the same
    # local tier never touches the shared tier again
    rerun = run_sweep_process(
        f"{tmp_path / 'local-b'},{shared}", tmp_path
    )
    assert rerun["simulated"] == 0
    assert rerun["counters"]["exec.cache.local.hits"] == N_POINTS
    assert "exec.cache.shared.hits" not in rerun["counters"]
