"""Golden regression tests: Table 1/2 numbers and the Fig-8 curve.

Each test renders the paper artifact at a fixed seed/scale, rounds every
float to 9 significant digits (well above any legitimate modelling
signal, well below repr noise) and compares against a committed JSON
fixture.  A diff here means the *reproduction's numbers changed* -- a
much sharper signal than the shape assertions elsewhere.

To regenerate after an intentional model change::

    PYTHONPATH=src python -m pytest tests/integration/test_golden_tables.py \\
        --update-golden
"""

import dataclasses
import json
from pathlib import Path

from repro.analysis.summary import summarize_table1, summarize_table2
from repro.sim.experiments import cache_size_sweep
from repro.util.rng import DEFAULT_SEED
from repro.workloads import APP_NAMES, generate_workload

GOLDEN_DIR = Path(__file__).parent / "golden"
SCALE = 0.1
SEED = DEFAULT_SEED


def rounded(value):
    """Round all floats to 9 significant digits, recursively."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return float(f"{value:.9g}")
    if isinstance(value, dict):
        return {k: rounded(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [rounded(v) for v in value]
    return value


def check_golden(name: str, payload: dict, update: bool) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    payload = rounded(payload)
    if update:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"golden fixture {path} missing; run with --update-golden to create it"
    )
    golden = json.loads(path.read_text())
    assert payload == golden, (
        f"{name} diverged from the golden fixture; if the change is "
        f"intentional, regenerate with --update-golden and commit the diff"
    )


def test_table1_golden(update_golden):
    rows = {}
    for name in APP_NAMES:
        w = generate_workload(name, scale=SCALE, seed=SEED)
        rows[name] = dataclasses.asdict(summarize_table1(w))
    check_golden(
        "table1", {"seed": SEED, "scale": SCALE, "rows": rows}, update_golden
    )


def test_table2_golden(update_golden):
    rows = {}
    for name in APP_NAMES:
        w = generate_workload(name, scale=SCALE, seed=SEED)
        rows[name] = dataclasses.asdict(summarize_table2(w))
    check_golden(
        "table2", {"seed": SEED, "scale": SCALE, "rows": rows}, update_golden
    )


def test_fig8_curve_golden(update_golden):
    # A three-point slice of the Figure 8 grid: small enough to simulate
    # in seconds, enough to pin the utilization curve's level and shape.
    points = cache_size_sweep(
        cache_sizes_mb=(8, 32, 128),
        block_sizes_kb=(4,),
        scale=0.05,
        seed=SEED,
        jobs=1,
    )
    curve = [dataclasses.asdict(p) for p in points]
    check_golden(
        "fig8_curve",
        {"seed": SEED, "scale": 0.05, "points": curve},
        update_golden,
    )
