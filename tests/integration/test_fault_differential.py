"""Differential guard: the recovery-wrapped device changes NOTHING when off.

The fault layer rewired every disk access in the simulator -- bypass
reads/writes, demand-miss reads, write-behind flushes, delayed flushes --
through :class:`repro.sim.recovery.RecoveringDevice`.  These tests pin
the happy path: for fault-free configurations the wrapped device must
produce digests identical to a direct simulation, across every cache
policy combination, and the golden Fig-8 curve must hold bit-for-bit
(``test_golden_tables.py`` enforces the committed fixture; here we also
sweep the policy space the fixtures do not cover).
"""

import pytest

from repro.sim.config import CacheConfig, SimConfig, ssd_cache
from repro.sim.faults import FaultPlan
from repro.sim.system import simulate
from repro.util.rng import DEFAULT_SEED
from repro.util.units import MB
from repro.workloads import generate_workload

CONFIGS = {
    "memory": SimConfig(cache=CacheConfig(size_bytes=16 * MB)),
    "ssd": SimConfig(cache=ssd_cache(16 * MB)),
    "no-readahead": SimConfig(
        cache=CacheConfig(size_bytes=16 * MB, read_ahead=False)
    ),
    "write-through": SimConfig(
        cache=CacheConfig(size_bytes=16 * MB, write_behind=False)
    ),
    "delayed-flush": SimConfig(
        cache=CacheConfig(size_bytes=16 * MB, flush_delay_s=2.0)
    ),
    "tiny-cache-bypass": SimConfig(cache=CacheConfig(size_bytes=256 * 1024)),
    "two-cpus": SimConfig(cache=CacheConfig(size_bytes=16 * MB)).with_scheduler(
        n_cpus=2
    ),
}


@pytest.fixture(scope="module")
def traces():
    return [generate_workload("venus", scale=0.05, seed=DEFAULT_SEED).trace]


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_default_fault_fields_do_not_change_digests(traces, name):
    # A config that never mentions faults carries disabled FaultConfig /
    # RecoveryConfig defaults; its digest must match what the same
    # simulation produced before the fault layer existed.  The committed
    # golden fixtures pin the absolute values; this cross-checks that an
    # explicit zero-rate plan is indistinguishable from the defaults.
    config = CONFIGS[name]
    plain = simulate(traces, config)
    planned = simulate(traces, FaultPlan().apply(config))
    assert not plain.faults.any_faults
    assert not planned.faults.any_faults
    assert plain.digest() == planned.digest()


def test_recovery_knobs_alone_do_not_perturb(traces):
    # Tuning the recovery policy without any injection must be free: the
    # retry machinery only engages on failure, and no failures happen.
    config = CONFIGS["memory"]
    tuned = config.with_recovery(
        max_retries=7, backoff_base_s=0.5, backoff_cap_s=5.0, max_reflushes=9
    )
    assert simulate(traces, tuned).digest() == simulate(traces, config).digest()


def test_timeout_config_is_not_free(traces):
    # timeout_s forces the per-request path (every request must be
    # policed), so it is the one recovery knob allowed to change
    # scheduling -- but with a generous deadline the *results* must
    # still match, because no request ever times out.
    config = CONFIGS["memory"]
    timed = config.with_recovery(timeout_s=1e9)
    r = simulate(traces, timed)
    assert r.faults.timeouts == 0
    assert r.digest() == simulate(traces, config).digest()
